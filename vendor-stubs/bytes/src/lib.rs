//! Offline shim for `bytes`: cheap-clone immutable buffers plus a
//! big-endian append-only builder.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static slice (copied; the shim has no zero-copy path).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes(Arc::from(b.0))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}
