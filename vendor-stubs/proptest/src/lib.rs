//! Offline shim for `proptest`: deterministic random generation without
//! shrinking. Each `proptest!` test runs `ProptestConfig::cases` cases from
//! a seed derived from the test name, so failures reproduce exactly.

/// Deterministic generator handed to strategies (xoshiro256++).
pub struct Gen {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Gen {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Gen {
            s: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// The next 64 uniformly distributed random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (Lemire's method).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the per-test seed from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// draws one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |g: &mut Gen| self.generate(g)))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, g: &mut Gen) -> O {
        (self.f)(self.inner.generate(g))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut Gen) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        (self.0)(g)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        let idx = g.below(self.0.len() as u64) as usize;
        self.0[idx].generate(g)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return g.next_u64() as $t;
                }
                (lo as i128 + g.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * g.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, g: &mut Gen) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * g.unit_f64() as f32
    }
}

/// A string literal is a regex strategy (subset; see [`string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(g)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$n.generate(g),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive (the [`any`] implementation).
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arb_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let f: fn(&mut Gen) -> $t = $gen;
                f(g)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

arb_prim!(
    u8 => |g| g.next_u64() as u8,
    u16 => |g| g.next_u64() as u16,
    u32 => |g| g.next_u64() as u32,
    u64 => |g| g.next_u64(),
    usize => |g| g.next_u64() as usize,
    i8 => |g| g.next_u64() as i8,
    i16 => |g| g.next_u64() as i16,
    i32 => |g| g.next_u64() as i32,
    i64 => |g| g.next_u64() as i64,
    isize => |g| g.next_u64() as isize,
    bool => |g| g.next_u64() & 1 == 1,
);

impl<T: Arbitrary, const N: usize> Strategy for AnyPrim<[T; N]> {
    type Value = [T; N];
    fn generate(&self, g: &mut Gen) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary().generate(g))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = AnyPrim<[T; N]>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};

    /// Strategy for a `Vec` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vec of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + g.below(span) as usize;
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }
}

/// Regex-like string strategies (subset: char classes, literals, escapes,
/// `{m}` / `{m,n}` quantifiers).
pub mod string {
    use super::{Gen, Strategy};

    /// Error for unsupported or malformed patterns.
    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled pattern.
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, g: &mut Gen) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + g.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    let idx = g.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[idx]);
                }
            }
            out
        }
    }

    /// Compiles a pattern from the supported regex subset.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let mut atoms = Vec::new();
        while pos < chars.len() {
            let set = match chars[pos] {
                '[' => {
                    let (set, next) = parse_class(&chars, pos + 1)?;
                    pos = next;
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(pos + 1)
                        .ok_or_else(|| Error("dangling backslash".into()))?;
                    pos += 2;
                    vec![c]
                }
                '.' => {
                    pos += 1;
                    (' '..='~').collect()
                }
                c if "(){}*+?|^$".contains(c) => {
                    return Err(Error(format!("unsupported metachar '{c}'")));
                }
                c => {
                    pos += 1;
                    vec![c]
                }
            };
            if set.is_empty() {
                return Err(Error("empty character class".into()));
            }
            let (min, max) = if chars.get(pos) == Some(&'{') {
                let (lo, hi, next) = parse_quantifier(&chars, pos + 1)?;
                pos = next;
                (lo, hi)
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error(format!("bad quantifier {{{min},{max}}}")));
            }
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexStrategy { atoms })
    }

    fn parse_class(chars: &[char], mut pos: usize) -> Result<(Vec<char>, usize), Error> {
        let mut set = Vec::new();
        while pos < chars.len() && chars[pos] != ']' {
            let c = if chars[pos] == '\\' {
                pos += 1;
                *chars
                    .get(pos)
                    .ok_or_else(|| Error("dangling backslash in class".into()))?
            } else {
                chars[pos]
            };
            // `a-z` range iff '-' sits between two members.
            if chars.get(pos + 1) == Some(&'-')
                && pos + 2 < chars.len()
                && chars[pos + 2] != ']'
            {
                let hi = chars[pos + 2];
                if c > hi {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                set.extend(c..=hi);
                pos += 3;
            } else {
                set.push(c);
                pos += 1;
            }
        }
        if pos >= chars.len() {
            return Err(Error("unterminated character class".into()));
        }
        Ok((set, pos + 1)) // consume ']'
    }

    fn parse_quantifier(chars: &[char], mut pos: usize) -> Result<(usize, usize, usize), Error> {
        let mut lo = String::new();
        while pos < chars.len() && chars[pos].is_ascii_digit() {
            lo.push(chars[pos]);
            pos += 1;
        }
        let lo: usize = lo.parse().map_err(|_| Error("bad quantifier".into()))?;
        let hi = if chars.get(pos) == Some(&',') {
            pos += 1;
            let mut hi = String::new();
            while pos < chars.len() && chars[pos].is_ascii_digit() {
                hi.push(chars[pos]);
                pos += 1;
            }
            hi.parse().map_err(|_| Error("bad quantifier".into()))?
        } else {
            lo
        };
        if chars.get(pos) != Some(&'}') {
            return Err(Error("unterminated quantifier".into()));
        }
        Ok((lo, hi, pos + 1))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$m:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$m])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut gen = $crate::Gen::from_seed($crate::seed_for(stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut gen);)+
                    // Closure so prop_assume! can skip the case via return.
                    #[allow(clippy::redundant_closure_call)]
                    (|| { $body })();
                }
            }
        )*
    };
}

/// Asserts a property (panics on failure, aborting the test).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality (panics on failure, aborting the test).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality (panics on failure, aborting the test).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::{collection, string};
    }
}
