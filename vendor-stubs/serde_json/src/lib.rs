//! Offline shim for `serde_json`: renders the `serde` shim's content tree
//! to JSON text and parses JSON text into a [`Value`] tree.

use serde::{Content, Serialize};
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (entry order preserved).
    Object(Vec<(String, Value)>),
}

/// Error type for serialization and parsing.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text. In this shim only [`Value`] implements [`FromJson`].
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    T::from_json_str(s)
}

/// Types reconstructible from JSON text (shim-only trait; upstream uses
/// `Deserialize`).
pub trait FromJson: Sized {
    /// Parses the value from JSON text.
    fn from_json_str(s: &str) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json_str(s: &str) -> Result<Self> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The bool if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// An object field by key (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn to_content_tree(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::I64(x) => Content::I64(*x),
            Value::U64(x) => Content::U64(*x),
            Value::F64(x) => Content::F64(*x),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => {
                Content::Seq(items.iter().map(Value::to_content_tree).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content_tree()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_tree()
    }
}

impl serde::Deserialize for Value {}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(&self.to_content_tree(), None, 0, &mut out);
        f.write_str(&out)
    }
}

fn render(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(x) => out.push_str(&x.to_string()),
        Content::U64(x) => out.push_str(&x.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats render with ".0".
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected '{lit}' at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let ch = rest.chars().next().expect("non-empty by peek");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        }
    }
}
