//! Offline shim for `crossbeam`: an MPMC channel with timeouts and a
//! scoped-thread API over `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; cloneable (MPMC — receivers steal from one queue).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error from [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake receivers so they observe the disconnect.
                let _guard = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // senders + receivers share the Arc; receivers present iff the
            // strong count exceeds the sender count.
            if Arc::strong_count(&self.0) <= self.0.senders.load(Ordering::Relaxed) {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value or until `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) = self
                    .0
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if wait.timed_out() {
                    return match q.pop_front() {
                        Some(v) => Ok(v),
                        None if self.0.senders.load(Ordering::Acquire) == 0 => {
                            Err(RecvTimeoutError::Disconnected)
                        }
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// The spawn handle passed to [`scope`] closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }

        /// Whether the thread has finished running (non-blocking).
        pub fn is_finished(&self) -> bool {
            self.0.is_finished()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again (for
        /// nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning. Unlike crossbeam, a child
    /// panic propagates out of `scope` (via `std::thread::scope`) instead of
    /// surfacing in the returned `Result`, which only the panic path of
    /// callers can observe.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
