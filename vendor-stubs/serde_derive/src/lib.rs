//! Offline shim for `serde_derive`: hand-rolled (no syn/quote) derives for
//! the simplified `serde` shim. Supports named-field structs and enums with
//! unit or tuple variants. `#[serde(...)]` attributes are not supported and
//! generics fall back to a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<(String, usize)>),
}

/// A generic parameter on the derived item.
enum Param {
    Lifetime(String),
    Type(String),
}

fn generics_for(params: &[Param], bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_parts: Vec<String> = params
        .iter()
        .map(|p| match p {
            Param::Lifetime(l) => l.clone(),
            Param::Type(t) => format!("{t}: {bound}"),
        })
        .collect();
    let ty_parts: Vec<String> = params
        .iter()
        .map(|p| match p {
            Param::Lifetime(l) => l.clone(),
            Param::Type(t) => t.clone(),
        })
        .collect();
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, params, shape) = match parse(input) {
        Ok(x) => x,
        Err(msg) => return format!("compile_error!(\"{msg}\");").parse().unwrap(),
    };
    if !serialize {
        let (ig, tg) = generics_for(&params, "::serde::Deserialize");
        return format!("impl{ig} ::serde::Deserialize for {name}{tg} {{}}")
            .parse()
            .unwrap();
    }
    let (impl_generics, ty_generics) = generics_for(&params, "::serde::Serialize");
    let body = match shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Content::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    ),
                    1 => format!(
                        "{name}::{v}(v0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_content(v0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(v{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Parses `(pub)? (struct|enum) Name<...>? (where ...)? { ... }`.
fn parse(input: TokenStream) -> Result<(String, Vec<Param>, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    // Skip attributes and visibility, find `struct`/`enum`.
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, possibly followed by `(crate)` handled below.
            }
            TokenTree::Group(_) => {} // pub(crate) restriction group
            _ => return Err("serde shim derive: unexpected token before item".into()),
        }
    }
    let kind = kind.ok_or("serde shim derive: no struct/enum keyword")?;
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing item name".into()),
    };
    // Optional generics list immediately after the name.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            params = parse_generics(&mut iter, &name)?;
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple struct {name} unsupported"
                ));
            }
            Some(_) => continue, // where-clause tokens
            None => return Err(format!("serde shim derive: no body on {name}")),
        }
    };
    if kind == "struct" {
        Ok((name, params, Shape::Struct(struct_fields(body.stream())?)))
    } else {
        Ok((name, params, Shape::Enum(enum_variants(body.stream())?)))
    }
}

/// Parses generic params after the opening `<` up to the matching `>`.
/// Bounds and defaults inside the list are skipped; const params error.
fn parse_generics(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    name: &str,
) -> Result<Vec<Param>, String> {
    let mut params = Vec::new();
    let mut depth = 1i32; // we are inside the first '<'
    let mut at_param_start = true;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(params);
                    }
                }
                ',' if depth == 1 => at_param_start = true,
                '\'' if depth == 1 && at_param_start => {
                    // Lifetime param: tick + ident.
                    if let Some(TokenTree::Ident(id)) = iter.next() {
                        params.push(Param::Lifetime(format!("'{id}")));
                    }
                    at_param_start = false;
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && at_param_start => {
                if id.to_string() == "const" {
                    return Err(format!(
                        "serde shim derive: const generics on {name} unsupported"
                    ));
                }
                params.push(Param::Type(id.to_string()));
                at_param_start = false;
            }
            _ => {}
        }
    }
    Err(format!("serde shim derive: unclosed generics on {name}"))
}

/// Field names of a named-field struct body.
fn struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility; the next plain ident is the field.
        let name = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(_) => return Err("serde shim derive: bad struct body".into()),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("serde shim derive: field {name} missing type")),
        }
        fields.push(name);
        // Consume the type up to the next field-separating comma, tracking
        // angle-bracket depth (generic args contain commas).
        let mut angle: i32 = 0;
        loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// `(variant name, tuple arity)` pairs of an enum body (arity 0 = unit).
fn enum_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(_) => return Err("serde shim derive: bad enum body".into()),
            }
        };
        let mut arity = 0usize;
        // Optional payload, then the separating comma.
        loop {
            match iter.next() {
                None => {
                    variants.push((name, arity));
                    return Ok(variants);
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "serde shim derive: struct variant {name} unsupported"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {} // discriminant `= N` etc.
            }
        }
        variants.push((name, arity));
    }
}

/// Number of comma-separated types at angle depth 0.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut arity = 1usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => arity += 1,
                _ => {}
            }
        }
    }
    if any {
        arity
    } else {
        0
    }
}
