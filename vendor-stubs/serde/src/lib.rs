//! Offline shim for `serde`: a simplified content-tree data model.
//!
//! [`Serialize`] lowers a value to a [`Content`] tree; `serde_json` renders
//! that tree. [`Deserialize`] is a marker trait so `#[derive(Deserialize)]`
//! compiles; only `serde_json::Value` round-trips from text.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the shim's whole data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map (field order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Lowers `self` into a [`Content`] tree.
pub trait Serialize {
    /// Produces the content tree for this value.
    fn to_content(&self) -> Content;
}

/// Marker for derivable deserialization (only `serde_json::Value`
/// implements actual decoding in this shim).
pub trait Deserialize: Sized {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for std::net::Ipv4Addr {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for std::net::Ipv4Addr {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )+};
}

ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Map keys must render as strings in JSON.
pub trait KeyToString {
    /// The key's string form.
    fn key_string(&self) -> String;
}

macro_rules! key_display {
    ($($t:ty),*) => {$(
        impl KeyToString for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}

key_display!(String, &str, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char);

impl<K: KeyToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.key_string(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K, V: Deserialize, S> Deserialize for std::collections::HashMap<K, V, S> {}

impl<K: KeyToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.key_string(), v.to_content()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
