//! Offline shim for `parking_lot`: `std::sync` wrappers without poisoning.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock (panics if the std lock was poisoned).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (panics if the std lock was poisoned).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
