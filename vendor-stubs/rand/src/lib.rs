//! Offline shim for `rand` 0.10: a seeded xoshiro256++ generator behind the
//! `StdRng` / `SeedableRng` / `RngExt` names the workspace uses.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`);
//! in-repo code only relies on determinism per seed, never on specific
//! stream values.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire's unbiased bounded sampling on 64-bit values.
fn bounded_u64<G: RngCore>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound; // (2^64 - bound) mod bound
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
