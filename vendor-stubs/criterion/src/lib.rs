//! Offline shim for `criterion`: a minimal timing harness with the same
//! surface (`criterion_group!` / `criterion_main!` / benchmark groups).
//! Reports median per-iteration time to stderr; no HTML reports, no
//! statistical regression analysis.

use std::time::{Duration, Instant};

/// Re-export for parity with criterion's `black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`group/name` on output).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warmup call outside timing.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("bench {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        eprintln!("bench {group}/{id}: median {median:?} over {} samples", sorted.len());
    }
}

/// Declares a benchmark group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
