//! Anycast prefix membership (the bgp.tools anycast-prefixes stand-in).

use crate::trie::PrefixTable;
use std::net::Ipv4Addr;
use webdep_netsim::Prefix;

/// A set of prefixes announced via anycast.
#[derive(Debug, Clone, Default)]
pub struct AnycastSet {
    table: PrefixTable<()>,
}

impl AnycastSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a prefix as anycast.
    pub fn add(&mut self, prefix: Prefix) {
        self.table.insert(prefix, ());
    }

    /// Whether `ip` falls in any anycast prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.table.lookup(ip).is_some()
    }

    /// Number of anycast prefixes.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut s = AnycastSet::new();
        s.add("1.1.1.0/24".parse().unwrap());
        assert!(s.contains("1.1.1.1".parse().unwrap()));
        assert!(!s.contains("1.1.2.1".parse().unwrap()));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_set() {
        let s = AnycastSet::new();
        assert!(!s.contains("8.8.8.8".parse().unwrap()));
        assert!(s.is_empty());
    }
}
