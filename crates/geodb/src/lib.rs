//! # webdep-geodb
//!
//! Enrichment databases for the measurement pipeline — the stand-ins for
//! the third-party datasets the paper joins against (§3.4):
//!
//! * [`trie`] / [`PrefixTable`] — longest-prefix-match IP→ASN mapping
//!   (CAIDA Routeviews pfx2as).
//! * [`AsOrgDb`] — ASN → organization and home country (CAIDA AS-to-Org).
//! * [`GeoDb`] — IP → country geolocation with a configurable error rate
//!   modelling NetAcuity's ~89.4% country-level accuracy.
//! * [`AnycastSet`] — anycast prefix membership (bgp.tools).
//! * [`CaOwnerDb`] — certificate issuer → CA owner (CCADB per Ma et al.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anycast;
pub mod asorg;
pub mod caown;
pub mod geo;
pub mod trie;

pub use anycast::AnycastSet;
pub use asorg::{AsOrgDb, OrgRecord};
pub use caown::{CaOwner, CaOwnerDb};
pub use geo::{GeoDb, GeoDbBuilder};
pub use trie::PrefixTable;
