//! Certificate issuer → CA owner (the CCADB join per Ma et al.).
//!
//! The paper labels each leaf certificate with the *owner* of its issuing
//! CA: many issuing intermediates (e.g. Let's Encrypt's `R10`/`R11`) roll
//! up to one owner, which is the unit of the CA-layer analysis.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A CA owner organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaOwner {
    /// Stable owner id.
    pub owner_id: u32,
    /// Display name, e.g. `Let's Encrypt`.
    pub name: String,
    /// ISO 3166-1 alpha-2 home country.
    pub country: String,
}

/// Issuer-id → owner database.
#[derive(Debug, Clone, Default)]
pub struct CaOwnerDb {
    owners: HashMap<u32, CaOwner>,
    by_issuer: HashMap<u32, u32>,
}

impl CaOwnerDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an owner.
    pub fn add_owner(&mut self, owner: CaOwner) {
        self.owners.insert(owner.owner_id, owner);
    }

    /// Maps an issuing certificate id to an owner.
    pub fn map_issuer(&mut self, issuer_id: u32, owner_id: u32) {
        self.by_issuer.insert(issuer_id, owner_id);
    }

    /// Owner of a leaf certificate's issuer.
    pub fn owner_of_issuer(&self, issuer_id: u32) -> Option<&CaOwner> {
        self.owners.get(self.by_issuer.get(&issuer_id)?)
    }

    /// Owner by id.
    pub fn owner(&self, owner_id: u32) -> Option<&CaOwner> {
        self.owners.get(&owner_id)
    }

    /// Number of registered owners.
    pub fn num_owners(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intermediates_roll_up() {
        let mut db = CaOwnerDb::new();
        db.add_owner(CaOwner {
            owner_id: 1,
            name: "Let's Encrypt".into(),
            country: "US".into(),
        });
        db.map_issuer(10, 1); // R10
        db.map_issuer(11, 1); // R11
        assert_eq!(db.owner_of_issuer(10).unwrap().name, "Let's Encrypt");
        assert_eq!(db.owner_of_issuer(11).unwrap().name, "Let's Encrypt");
        assert_eq!(db.num_owners(), 1);
    }

    #[test]
    fn unknown_issuer() {
        let db = CaOwnerDb::new();
        assert!(db.owner_of_issuer(404).is_none());
        assert!(db.owner(404).is_none());
    }
}
