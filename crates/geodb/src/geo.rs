//! IP geolocation (the NetAcuity stand-in).
//!
//! Range-based lookup from IP to country, with an optional error process:
//! the paper notes NetAcuity is about 89.4% accurate at country level, so
//! the builder can be configured to deterministically mislabel a fraction
//! of ranges — letting experiments quantify how much geolocation noise
//! moves the aggregate results.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::net::Ipv4Addr;
use webdep_netsim::Prefix;

/// Builder for [`GeoDb`].
#[derive(Debug)]
pub struct GeoDbBuilder {
    ranges: Vec<(u32, u32, String)>,
    error_rate: f64,
    seed: u64,
    all_countries: Vec<String>,
}

impl Default for GeoDbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDbBuilder {
    /// Creates an empty builder with no error process.
    pub fn new() -> Self {
        GeoDbBuilder {
            ranges: Vec::new(),
            error_rate: 0.0,
            seed: 0,
            all_countries: Vec::new(),
        }
    }

    /// Adds a prefix located in `country`.
    pub fn add_prefix(&mut self, prefix: Prefix, country: &str) -> &mut Self {
        let start = u32::from(prefix.base());
        let end = start + (prefix.num_addresses() - 1) as u32;
        self.ranges.push((start, end, country.to_string()));
        if !self.all_countries.iter().any(|c| c == country) {
            self.all_countries.push(country.to_string());
        }
        self
    }

    /// Configures the mislabeling process: each range independently gets a
    /// wrong country with probability `1 - accuracy`.
    pub fn with_accuracy(&mut self, accuracy: f64, seed: u64) -> &mut Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy in [0,1]");
        self.error_rate = 1.0 - accuracy;
        self.seed = seed;
        self
    }

    /// Builds the database. Overlapping ranges are allowed; the narrower
    /// (later-starting) range wins, matching how commercial feeds refine
    /// allocations.
    pub fn build(&self) -> GeoDb {
        let mut ranges = self.ranges.clone();
        if self.error_rate > 0.0 && self.all_countries.len() > 1 {
            let mut rng = StdRng::seed_from_u64(self.seed);
            for r in &mut ranges {
                if rng.random_range(0.0..1.0) < self.error_rate {
                    // Pick a different country deterministically.
                    loop {
                        let alt =
                            &self.all_countries[rng.random_range(0..self.all_countries.len())];
                        if alt != &r.2 {
                            r.2 = alt.clone();
                            break;
                        }
                    }
                }
            }
        }
        ranges.sort_by_key(|r| (r.0, r.1));
        GeoDb { ranges }
    }
}

/// The built IP → country database.
#[derive(Debug, Clone)]
pub struct GeoDb {
    /// Sorted, possibly overlapping `(start, end, country)` ranges.
    ranges: Vec<(u32, u32, String)>,
}

impl GeoDb {
    /// Country of `ip`, if covered by any range. With overlaps, the
    /// latest-starting (most specific) covering range wins.
    pub fn country_of(&self, ip: Ipv4Addr) -> Option<&str> {
        let raw = u32::from(ip);
        // Binary search for the last range starting at or before `raw`,
        // then walk left while ranges could still cover it.
        let idx = self.ranges.partition_point(|r| r.0 <= raw);
        self.ranges[..idx]
            .iter()
            .rev()
            .take(64) // bounded back-scan; ranges are prefix-shaped in practice
            .find(|r| r.1 >= raw)
            .map(|r| r.2.as_str())
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn basic_lookup() {
        let mut b = GeoDbBuilder::new();
        b.add_prefix(p("81.0.0.0/8"), "DE");
        b.add_prefix(p("41.0.0.0/8"), "ZA");
        let db = b.build();
        assert_eq!(db.country_of(ip("81.1.2.3")), Some("DE"));
        assert_eq!(db.country_of(ip("41.255.0.1")), Some("ZA"));
        assert_eq!(db.country_of(ip("8.8.8.8")), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn specific_overrides_broad() {
        let mut b = GeoDbBuilder::new();
        b.add_prefix(p("81.0.0.0/8"), "DE");
        b.add_prefix(p("81.2.0.0/16"), "AT");
        let db = b.build();
        assert_eq!(db.country_of(ip("81.2.3.4")), Some("AT"));
        assert_eq!(db.country_of(ip("81.3.0.0")), Some("DE"));
    }

    #[test]
    fn perfect_accuracy_never_mislabels() {
        let mut b = GeoDbBuilder::new();
        for i in 0..50u8 {
            b.add_prefix(Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16).unwrap(), "US");
            b.add_prefix(Prefix::new(Ipv4Addr::new(11, i, 0, 0), 16).unwrap(), "FR");
        }
        b.with_accuracy(1.0, 42);
        let db = b.build();
        for i in 0..50u8 {
            assert_eq!(db.country_of(Ipv4Addr::new(10, i, 1, 1)), Some("US"));
        }
    }

    #[test]
    fn error_rate_mislabels_roughly_right_fraction() {
        let mut b = GeoDbBuilder::new();
        for i in 0..=255u8 {
            let cc = if i % 2 == 0 { "US" } else { "FR" };
            b.add_prefix(Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16).unwrap(), cc);
        }
        b.with_accuracy(0.894, 7);
        let db = b.build();
        let mut wrong = 0;
        for i in 0..=255u8 {
            let expect = if i % 2 == 0 { "US" } else { "FR" };
            if db.country_of(Ipv4Addr::new(10, i, 1, 1)) != Some(expect) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 256.0;
        assert!((0.02..0.25).contains(&rate), "mislabel rate {rate}");
    }

    #[test]
    fn deterministic_for_seed() {
        let build = || {
            let mut b = GeoDbBuilder::new();
            for i in 0..100u8 {
                let cc = ["US", "DE", "JP"][i as usize % 3];
                b.add_prefix(Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16).unwrap(), cc);
            }
            b.with_accuracy(0.9, 99);
            b.build()
        };
        let (a, b) = (build(), build());
        for i in 0..100u8 {
            let addr = Ipv4Addr::new(10, i, 1, 1);
            assert_eq!(a.country_of(addr), b.country_of(addr));
        }
    }
}
