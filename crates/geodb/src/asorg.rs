//! AS → organization database (the CAIDA AS-to-Org stand-in).
//!
//! The paper attributes each serving IP to an *organization*, not an AS:
//! several ASNs can belong to one provider (e.g. Amazon's many ASNs), and
//! the org record carries the provider's home country used by insularity.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An owning organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgRecord {
    /// Stable organization id.
    pub org_id: u32,
    /// Display name, e.g. `Cloudflare, Inc.`.
    pub name: String,
    /// ISO 3166-1 alpha-2 home country, e.g. `US`.
    pub country: String,
}

/// ASN → organization mapping.
#[derive(Debug, Clone, Default)]
pub struct AsOrgDb {
    by_asn: HashMap<u32, u32>,
    orgs: HashMap<u32, OrgRecord>,
}

impl AsOrgDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization; replaces any previous record with the
    /// same id.
    pub fn add_org(&mut self, org: OrgRecord) {
        self.orgs.insert(org.org_id, org);
    }

    /// Maps an ASN to an organization id. The org need not be registered
    /// yet, mirroring how the real datasets are joined after the fact.
    pub fn map_asn(&mut self, asn: u32, org_id: u32) {
        self.by_asn.insert(asn, org_id);
    }

    /// The organization owning `asn`, if known and registered.
    pub fn org_of_asn(&self, asn: u32) -> Option<&OrgRecord> {
        self.orgs.get(self.by_asn.get(&asn)?)
    }

    /// Organization record by id.
    pub fn org(&self, org_id: u32) -> Option<&OrgRecord> {
        self.orgs.get(&org_id)
    }

    /// Number of registered organizations.
    pub fn num_orgs(&self) -> usize {
        self.orgs.len()
    }

    /// Number of mapped ASNs.
    pub fn num_asns(&self) -> usize {
        self.by_asn.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(id: u32, name: &str, cc: &str) -> OrgRecord {
        OrgRecord {
            org_id: id,
            name: name.into(),
            country: cc.into(),
        }
    }

    #[test]
    fn multiple_asns_one_org() {
        let mut db = AsOrgDb::new();
        db.add_org(org(1, "Amazon.com, Inc.", "US"));
        db.map_asn(16509, 1);
        db.map_asn(14618, 1);
        assert_eq!(db.org_of_asn(16509).unwrap().name, "Amazon.com, Inc.");
        assert_eq!(db.org_of_asn(14618).unwrap().country, "US");
        assert_eq!(db.num_orgs(), 1);
        assert_eq!(db.num_asns(), 2);
    }

    #[test]
    fn unknown_asn() {
        let db = AsOrgDb::new();
        assert!(db.org_of_asn(64512).is_none());
    }

    #[test]
    fn asn_mapped_before_org_registered() {
        let mut db = AsOrgDb::new();
        db.map_asn(100, 9);
        assert!(db.org_of_asn(100).is_none());
        db.add_org(org(9, "Late Org", "DE"));
        assert_eq!(db.org_of_asn(100).unwrap().name, "Late Org");
    }

    #[test]
    fn org_replacement() {
        let mut db = AsOrgDb::new();
        db.add_org(org(1, "Old", "US"));
        db.add_org(org(1, "New", "FR"));
        assert_eq!(db.org(1).unwrap().name, "New");
    }
}
