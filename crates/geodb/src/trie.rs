//! Binary trie with longest-prefix matching — the pfx2as data structure.

use std::net::Ipv4Addr;
use webdep_netsim::Prefix;

/// A generic longest-prefix-match table over IPv4 prefixes.
///
/// Inserting a more specific prefix shadows the covering one, exactly like
/// routing-table semantics: `lookup` returns the value of the longest
/// matching prefix.
#[derive(Debug, Clone)]
pub struct PrefixTable<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<V> Default for PrefixTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrefixTable {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts (or replaces) the value for `prefix`. Returns the previous
    /// value when replacing.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for bit in prefix.bits() {
            let idx = bit as usize;
            node = node.children[idx].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match for `ip`; returns the value and the matched
    /// prefix length.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(&V, u8)> {
        let raw = u32::from(ip);
        let mut node = &self.root;
        let mut best: Option<(&V, u8)> = node.value.as_ref().map(|v| (v, 0));
        for depth in 0..32u8 {
            let bit = (raw >> (31 - depth)) & 1;
            match &node.children[bit as usize] {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some((v, depth + 1));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match retrieval of the value stored for `prefix`.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = &self.root;
        for bit in prefix.bits() {
            node = node.children[bit as usize].as_ref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn basic_lookup() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 100u32);
        t.insert(p("10.1.0.0/16"), 200);
        assert_eq!(t.lookup(ip("10.2.3.4")), Some((&100, 8)));
        assert_eq!(t.lookup(ip("10.1.3.4")), Some((&200, 16)));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn most_specific_wins_regardless_of_insert_order() {
        let mut t = PrefixTable::new();
        t.insert(p("10.1.0.0/16"), "specific");
        t.insert(p("10.0.0.0/8"), "broad");
        assert_eq!(t.lookup(ip("10.1.0.1")).unwrap().0, &"specific");
        assert_eq!(t.lookup(ip("10.200.0.1")).unwrap().0, &"broad");
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PrefixTable::new();
        assert_eq!(t.insert(p("192.0.2.0/24"), 1), None);
        assert_eq!(t.insert(p("192.0.2.0/24"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("192.0.2.0/24")), Some(&2));
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTable::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("198.51.100.0/24"), "doc");
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap(), (&"default", 0));
        assert_eq!(t.lookup(ip("198.51.100.9")).unwrap(), (&"doc", 24));
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTable::new();
        t.insert(p("203.0.113.7/32"), 7);
        assert_eq!(t.lookup(ip("203.0.113.7")), Some((&7, 32)));
        assert_eq!(t.lookup(ip("203.0.113.8")), None);
    }

    #[test]
    fn get_requires_exact() {
        let mut t = PrefixTable::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.get(&p("10.0.0.0/7")), None);
    }
}
