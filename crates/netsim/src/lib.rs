//! # webdep-netsim
//!
//! A simulated internet fabric for the `webdep` measurement pipeline.
//!
//! The paper's measurements (ZDNS resolution, ZGrab2 TLS scans) run against
//! the real internet; this crate provides the stand-in: an in-process
//! datagram network with IPv4 addressing, unicast and anycast delivery,
//! a continent-pair latency model, and optional packet loss. Servers bind
//! [`Endpoint`]s and serve from threads; clients send datagrams and wait
//! with timeouts, exactly as a UDP scanner would.
//!
//! Design goals follow the session guides: event-driven and synchronous
//! (no async runtime — each server is a plain thread draining a channel),
//! simple and robust over clever.
//!
//! ```
//! use webdep_netsim::{Network, Region};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let net = Network::new(Default::default());
//! let server = net.bind("10.0.0.1".parse().unwrap(), 53, Region::EUROPE).unwrap();
//! let client = net.bind("10.9.9.9".parse().unwrap(), 4000, Region::ASIA).unwrap();
//!
//! client.send(server.addr(), Bytes::from_static(b"ping")).unwrap();
//! let dgram = server.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(&dgram.payload[..], b"ping");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod fault;
pub mod latency;
pub mod network;
pub mod packet;
pub mod shared;

pub use addr::{Prefix, SockAddr};
pub use error::NetError;
pub use fault::{FaultKind, FaultPlan, FaultedReply};
pub use latency::LatencyModel;
pub use network::{Endpoint, NetConfig, NetStats, Network, Region, ResponderFn};
pub use packet::Datagram;
pub use shared::{ResponderSet, SharedEndpoint};
