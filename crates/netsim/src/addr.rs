//! IPv4 addressing: socket addresses and CIDR prefixes.

use crate::error::NetError;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An (IPv4 address, port) pair — the network's endpoint identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Port number.
    pub port: u16,
}

impl SockAddr {
    /// Constructs a socket address.
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        SockAddr { ip, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// An IPv4 CIDR prefix, e.g. `203.0.113.0/24`.
///
/// The base address is canonicalized (host bits zeroed) at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// Builds a prefix from a base address and length (0..=32).
    pub fn new(base: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::InvalidPrefix(format!("length {len} > 32")));
        }
        let raw = u32::from(base);
        Ok(Prefix {
            base: raw & Self::mask(len),
            len,
        })
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// The canonical base address.
    pub fn base(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// Number of addresses covered (as u64 to hold /0's 2^32).
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `ip` falls inside the prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.base
    }

    /// The `n`-th address in the prefix (0 = base). `None` when out of range.
    pub fn nth(&self, n: u64) -> Option<Ipv4Addr> {
        if n >= self.num_addresses() {
            return None;
        }
        Some(Ipv4Addr::from(self.base + n as u32))
    }

    /// The most significant `bits` of the prefix as a bit iterator,
    /// MSB-first — the key for longest-prefix-match tries.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.base >> (31 - i)) & 1 == 1)
    }

    /// Splits into the two child prefixes one bit longer; `None` at /32.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let left = Prefix {
            base: self.base,
            len: child_len,
        };
        let right = Prefix {
            base: self.base | (1u32 << (31 - self.len)),
            len: child_len,
        };
        Some((left, right))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::InvalidPrefix(format!("missing '/' in {s:?}")))?;
        let base: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::InvalidPrefix(format!("bad address in {s:?}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::InvalidPrefix(format!("bad length in {s:?}")))?;
        Prefix::new(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_base() {
        let p = Prefix::new("203.0.113.77".parse().unwrap(), 24).unwrap();
        assert_eq!(p.base(), "203.0.113.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.to_string(), "203.0.113.0/24");
    }

    #[test]
    fn containment() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains("10.1.255.255".parse().unwrap()));
        assert!(!p.contains("10.2.0.0".parse().unwrap()));
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains("255.255.255.255".parse().unwrap()));
    }

    #[test]
    fn nth_addresses() {
        let p: Prefix = "192.0.2.0/30".parse().unwrap();
        assert_eq!(p.num_addresses(), 4);
        assert_eq!(p.nth(0).unwrap().to_string(), "192.0.2.0");
        assert_eq!(p.nth(3).unwrap().to_string(), "192.0.2.3");
        assert!(p.nth(4).is_none());
    }

    #[test]
    fn split_children() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (l, r) = p.split().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        let host: Prefix = "10.0.0.1/32".parse().unwrap();
        assert!(host.split().is_none());
    }

    #[test]
    fn bit_iterator() {
        let p: Prefix = "128.0.0.0/2".parse().unwrap();
        let bits: Vec<bool> = p.bits().collect();
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn sockaddr_display() {
        let a = SockAddr::new("1.2.3.4".parse().unwrap(), 53);
        assert_eq!(a.to_string(), "1.2.3.4:53");
    }
}
