//! Datagrams: the unit of delivery on the simulated network.

use crate::addr::SockAddr;
use bytes::Bytes;

/// A delivered datagram: source, destination, and opaque payload.
///
/// `Bytes` keeps payloads reference-counted so fan-out delivery (anycast
/// diagnostics, stats capture) never copies packet bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender's socket address (for replies).
    pub src: SockAddr,
    /// Destination socket address as addressed by the sender.
    pub dst: SockAddr,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Datagram {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let d = Datagram {
            src: SockAddr::new("1.1.1.1".parse().unwrap(), 1),
            dst: SockAddr::new("2.2.2.2".parse().unwrap(), 2),
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }
}
