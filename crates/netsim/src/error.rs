//! Error type for the simulated network.

use crate::addr::SockAddr;
use std::fmt;

/// Errors from binding, sending, or receiving on the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The socket address is already bound.
    AddrInUse(SockAddr),
    /// Nothing is bound at the destination (host unreachable).
    Unreachable(SockAddr),
    /// A receive timed out.
    Timeout,
    /// The network was shut down while waiting.
    Disconnected,
    /// A malformed CIDR prefix.
    InvalidPrefix(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrInUse(a) => write!(f, "address in use: {a}"),
            NetError::Unreachable(a) => write!(f, "destination unreachable: {a}"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Disconnected => write!(f, "network disconnected"),
            NetError::InvalidPrefix(s) => write!(f, "invalid prefix: {s}"),
        }
    }
}

impl std::error::Error for NetError {}
