//! Shared endpoints: many addresses, one receive queue — and responder
//! sets: many addresses, one inline service function.
//!
//! Deploying a synthetic internet with tens of thousands of provider IPs
//! cannot afford a thread per address. A [`SharedEndpoint`] attaches many
//! `ip:port` bindings (unicast or anycast) to a single channel, so one
//! "rack" thread can serve a whole shelf of providers — the simulation
//! analogue of shared hosting. Replies are sent *from* the address the
//! query was addressed to, so clients still see a well-behaved peer.
//!
//! A [`ResponderSet`] goes one step further for *stateless* services: the
//! service function runs inline on the sender's thread, so a round trip is
//! a function call rather than two cross-thread channel hops. On a machine
//! with few cores this is the difference between a query costing two
//! context switches and costing none.

use crate::addr::SockAddr;
use crate::error::NetError;
use crate::network::{Network, Region, ResponderFn};
use crate::packet::Datagram;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// Lock stripes for the attached-address table. The reply path only reads,
/// so with `RwLock` stripes concurrent repliers never contend at all.
const NUM_STRIPES: usize = 8;

fn stripe_index(addr: &SockAddr) -> usize {
    let mut h = DefaultHasher::new();
    addr.hash(&mut h);
    (h.finish() as usize) % NUM_STRIPES
}

/// A receive queue shared by many bound addresses.
pub struct SharedEndpoint {
    net: Network,
    tx: Sender<Datagram>,
    rx: Receiver<Datagram>,
    /// Attached addresses and their regions (anycast flag kept for unbind),
    /// striped by address hash.
    attached: [RwLock<HashMap<SockAddr, (Region, bool)>>; NUM_STRIPES],
}

impl std::fmt::Debug for SharedEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEndpoint")
            .field("attached", &self.num_attached())
            .finish_non_exhaustive()
    }
}

impl SharedEndpoint {
    /// Creates an empty shared endpoint on `net`.
    pub fn new(net: &Network) -> Self {
        let (tx, rx) = unbounded();
        SharedEndpoint {
            net: net.clone(),
            tx,
            rx,
            attached: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn stripe(&self, addr: &SockAddr) -> &RwLock<HashMap<SockAddr, (Region, bool)>> {
        &self.attached[stripe_index(addr)]
    }

    /// Attaches a unicast address; datagrams to it arrive on this queue.
    pub fn attach(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net.bind_tx(addr, region, self.tx.clone(), false)?;
        self.stripe(&addr).write().insert(addr, (region, false));
        Ok(())
    }

    /// Attaches one anycast site of an address.
    pub fn attach_anycast(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net.bind_tx(addr, region, self.tx.clone(), true)?;
        self.stripe(&addr).write().insert(addr, (region, true));
        Ok(())
    }

    /// Number of attached addresses.
    pub fn num_attached(&self) -> usize {
        self.attached.iter().map(|s| s.read().len()).sum()
    }

    /// Blocks for the next datagram addressed to any attached address.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Sends a reply from `src` (which must be attached) to `dst`.
    pub fn send_from(&self, src: SockAddr, dst: SockAddr, payload: Bytes) -> Result<(), NetError> {
        let region = {
            let attached = self.stripe(&src).read();
            let Some(&(region, _)) = attached.get(&src) else {
                return Err(NetError::Unreachable(src));
            };
            region
        };
        self.net.send_from_raw(src, region, dst, payload)
    }
}

impl Drop for SharedEndpoint {
    fn drop(&mut self) {
        for stripe in &self.attached {
            for (addr, (region, anycast)) in stripe.write().drain() {
                self.net.unbind_raw(addr, anycast, region);
            }
        }
    }
}

/// Many addresses served by one inline function, zero threads.
///
/// The function must be stateless (or internally synchronized): it is
/// called concurrently from every sending thread. Replies it returns are
/// sent from the queried address through the normal network path, so loss,
/// latency accounting and anycast behave exactly as with a threaded rack.
pub struct ResponderSet {
    net: Network,
    f: Arc<ResponderFn>,
    /// Attached addresses and their regions (anycast flag kept for unbind),
    /// striped by address hash.
    attached: [RwLock<HashMap<SockAddr, (Region, bool)>>; NUM_STRIPES],
}

impl std::fmt::Debug for ResponderSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponderSet")
            .field("attached", &self.num_attached())
            .finish_non_exhaustive()
    }
}

impl ResponderSet {
    /// Creates a responder set on `net` serving with `f`.
    pub fn new(
        net: &Network,
        f: impl Fn(&Datagram) -> Option<Bytes> + Send + Sync + 'static,
    ) -> Self {
        ResponderSet {
            net: net.clone(),
            f: Arc::new(f),
            attached: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn stripe(&self, addr: &SockAddr) -> &RwLock<HashMap<SockAddr, (Region, bool)>> {
        &self.attached[stripe_index(addr)]
    }

    /// Attaches a unicast address; datagrams to it are answered inline.
    pub fn attach(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net
            .bind_responder(addr, region, Arc::clone(&self.f), false)?;
        self.stripe(&addr).write().insert(addr, (region, false));
        Ok(())
    }

    /// Attaches one anycast site of an address.
    pub fn attach_anycast(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net
            .bind_responder(addr, region, Arc::clone(&self.f), true)?;
        self.stripe(&addr).write().insert(addr, (region, true));
        Ok(())
    }

    /// Number of attached addresses.
    pub fn num_attached(&self) -> usize {
        self.attached.iter().map(|s| s.read().len()).sum()
    }
}

impl Drop for ResponderSet {
    fn drop(&mut self) {
        for stripe in &self.attached {
            for (addr, (region, anycast)) in stripe.write().drain() {
                self.net.unbind_raw(addr, anycast, region);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn many_addresses_one_queue() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        for i in 1..=5u8 {
            rack.attach(Ipv4Addr::new(10, 0, 0, i), 53, Region::EUROPE)
                .unwrap();
        }
        assert_eq!(rack.num_attached(), 5);

        let client = net.bind(ip("10.9.9.9"), 1, Region::EUROPE).unwrap();
        for i in 1..=5u8 {
            client
                .send(
                    SockAddr::new(Ipv4Addr::new(10, 0, 0, i), 53),
                    Bytes::copy_from_slice(&[i]),
                )
                .unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..5 {
            let d = rack.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(d.dst.ip.octets()[3], d.payload[0]);
            seen.push(d.dst.ip);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn replies_come_from_queried_address() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        let dst = SockAddr::new(ip("10.0.0.7"), 53);
        client.send(dst, Bytes::from_static(b"q")).unwrap();
        let q = rack.recv_timeout(Duration::from_secs(1)).unwrap();
        rack.send_from(q.dst, q.src, Bytes::from_static(b"a"))
            .unwrap();
        let reply = client.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(reply.src, dst);
    }

    #[test]
    fn send_from_unattached_rejected() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        let err = rack
            .send_from(
                SockAddr::new(ip("10.0.0.1"), 53),
                SockAddr::new(ip("10.9.9.9"), 1),
                Bytes::new(),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)));
    }

    #[test]
    fn anycast_attachment_routes_regionally() {
        let net = Network::new(NetConfig::default());
        let rack_eu = SharedEndpoint::new(&net);
        let rack_as = SharedEndpoint::new(&net);
        rack_eu
            .attach_anycast(ip("1.1.1.1"), 53, Region::EUROPE)
            .unwrap();
        rack_as
            .attach_anycast(ip("1.1.1.1"), 53, Region::ASIA)
            .unwrap();

        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"x"))
            .unwrap();
        assert!(rack_as.recv_timeout(Duration::from_millis(200)).is_ok());
        assert!(rack_eu.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn drop_detaches_everything() {
        let net = Network::new(NetConfig::default());
        {
            let rack = SharedEndpoint::new(&net);
            rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        }
        // Address is free again.
        let rack2 = SharedEndpoint::new(&net);
        assert!(rack2.attach(ip("10.0.0.7"), 53, Region::ASIA).is_ok());
    }

    #[test]
    fn conflicts_detected() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        assert!(rack.attach(ip("10.0.0.7"), 53, Region::ASIA).is_err());
    }

    #[test]
    fn responder_answers_inline() {
        let net = Network::new(NetConfig::default());
        let echo = ResponderSet::new(&net, |d: &Datagram| Some(d.payload.clone()));
        echo.attach(ip("10.0.0.7"), 7, Region::ASIA).unwrap();
        echo.attach(ip("10.0.0.8"), 7, Region::ASIA).unwrap();
        assert_eq!(echo.num_attached(), 2);

        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        for last in [7u8, 8u8] {
            let dst = SockAddr::new(Ipv4Addr::new(10, 0, 0, last), 7);
            client.send(dst, Bytes::copy_from_slice(&[last])).unwrap();
            // The reply is already queued when send returns: no thread hop.
            let d = client.try_recv().expect("inline reply is synchronous");
            assert_eq!(d.src, dst);
            assert_eq!(&d.payload[..], &[last]);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 4); // two queries + two replies
        assert_eq!(stats.delivered, 4);
    }

    #[test]
    fn responder_anycast_routes_regionally() {
        let net = Network::new(NetConfig::default());
        let tagged = |tag: &'static [u8]| move |_: &Datagram| Some(Bytes::from_static(tag));
        let eu = ResponderSet::new(&net, tagged(b"eu"));
        let asia = ResponderSet::new(&net, tagged(b"as"));
        eu.attach_anycast(ip("1.1.1.1"), 53, Region::EUROPE)
            .unwrap();
        asia.attach_anycast(ip("1.1.1.1"), 53, Region::ASIA)
            .unwrap();

        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"q"))
            .unwrap();
        let d = client.try_recv().expect("inline reply is synchronous");
        assert_eq!(&d.payload[..], b"as");
    }

    #[test]
    fn responder_reply_passes_through_loss() {
        let net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..Default::default()
        });
        let echo = ResponderSet::new(&net, |d: &Datagram| Some(d.payload.clone()));
        echo.attach(ip("10.0.0.7"), 7, Region::ASIA).unwrap();
        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        client
            .send(SockAddr::new(ip("10.0.0.7"), 7), Bytes::from_static(b"x"))
            .unwrap();
        // The query itself is eaten by the loss process before the
        // responder ever runs; nothing comes back.
        assert!(client.try_recv().is_none());
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn responder_detaches_on_drop() {
        let net = Network::new(NetConfig::default());
        {
            let set = ResponderSet::new(&net, |_: &Datagram| None);
            set.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        }
        assert!(net.bind(ip("10.0.0.7"), 53, Region::ASIA).is_ok());
    }
}
