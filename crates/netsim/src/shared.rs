//! Shared endpoints: many addresses, one receive queue.
//!
//! Deploying a synthetic internet with tens of thousands of provider IPs
//! cannot afford a thread per address. A [`SharedEndpoint`] attaches many
//! `ip:port` bindings (unicast or anycast) to a single channel, so one
//! "rack" thread can serve a whole shelf of providers — the simulation
//! analogue of shared hosting. Replies are sent *from* the address the
//! query was addressed to, so clients still see a well-behaved peer.

use crate::addr::SockAddr;
use crate::error::NetError;
use crate::network::{Network, Region};
use crate::packet::Datagram;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// A receive queue shared by many bound addresses.
pub struct SharedEndpoint {
    net: Network,
    tx: Sender<Datagram>,
    rx: Receiver<Datagram>,
    /// Attached addresses and their regions (anycast flag kept for unbind).
    attached: Mutex<HashMap<SockAddr, (Region, bool)>>,
}

impl std::fmt::Debug for SharedEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEndpoint")
            .field("attached", &self.attached.lock().len())
            .finish_non_exhaustive()
    }
}

impl SharedEndpoint {
    /// Creates an empty shared endpoint on `net`.
    pub fn new(net: &Network) -> Self {
        let (tx, rx) = unbounded();
        SharedEndpoint {
            net: net.clone(),
            tx,
            rx,
            attached: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a unicast address; datagrams to it arrive on this queue.
    pub fn attach(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net.bind_tx(addr, region, self.tx.clone(), false)?;
        self.attached.lock().insert(addr, (region, false));
        Ok(())
    }

    /// Attaches one anycast site of an address.
    pub fn attach_anycast(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<(), NetError> {
        let addr = SockAddr::new(ip, port);
        self.net.bind_tx(addr, region, self.tx.clone(), true)?;
        self.attached.lock().insert(addr, (region, true));
        Ok(())
    }

    /// Number of attached addresses.
    pub fn num_attached(&self) -> usize {
        self.attached.lock().len()
    }

    /// Blocks for the next datagram addressed to any attached address.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Sends a reply from `src` (which must be attached) to `dst`.
    pub fn send_from(&self, src: SockAddr, dst: SockAddr, payload: Bytes) -> Result<(), NetError> {
        let region = {
            let attached = self.attached.lock();
            let Some(&(region, _)) = attached.get(&src) else {
                return Err(NetError::Unreachable(src));
            };
            region
        };
        self.net.send_from_raw(src, region, dst, payload)
    }
}

impl Drop for SharedEndpoint {
    fn drop(&mut self) {
        for (addr, (region, anycast)) in self.attached.lock().drain() {
            self.net.unbind_raw(addr, anycast, region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn many_addresses_one_queue() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        for i in 1..=5u8 {
            rack.attach(Ipv4Addr::new(10, 0, 0, i), 53, Region::EUROPE).unwrap();
        }
        assert_eq!(rack.num_attached(), 5);

        let client = net.bind(ip("10.9.9.9"), 1, Region::EUROPE).unwrap();
        for i in 1..=5u8 {
            client
                .send(
                    SockAddr::new(Ipv4Addr::new(10, 0, 0, i), 53),
                    Bytes::copy_from_slice(&[i]),
                )
                .unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..5 {
            let d = rack.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(d.dst.ip.octets()[3], d.payload[0]);
            seen.push(d.dst.ip);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn replies_come_from_queried_address() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        let dst = SockAddr::new(ip("10.0.0.7"), 53);
        client.send(dst, Bytes::from_static(b"q")).unwrap();
        let q = rack.recv_timeout(Duration::from_secs(1)).unwrap();
        rack.send_from(q.dst, q.src, Bytes::from_static(b"a")).unwrap();
        let reply = client.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(reply.src, dst);
    }

    #[test]
    fn send_from_unattached_rejected() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        let err = rack
            .send_from(
                SockAddr::new(ip("10.0.0.1"), 53),
                SockAddr::new(ip("10.9.9.9"), 1),
                Bytes::new(),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)));
    }

    #[test]
    fn anycast_attachment_routes_regionally() {
        let net = Network::new(NetConfig::default());
        let rack_eu = SharedEndpoint::new(&net);
        let rack_as = SharedEndpoint::new(&net);
        rack_eu.attach_anycast(ip("1.1.1.1"), 53, Region::EUROPE).unwrap();
        rack_as.attach_anycast(ip("1.1.1.1"), 53, Region::ASIA).unwrap();

        let client = net.bind(ip("10.9.9.9"), 1, Region::ASIA).unwrap();
        client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"x"))
            .unwrap();
        assert!(rack_as.recv_timeout(Duration::from_millis(200)).is_ok());
        assert!(rack_eu.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn drop_detaches_everything() {
        let net = Network::new(NetConfig::default());
        {
            let rack = SharedEndpoint::new(&net);
            rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        }
        // Address is free again.
        let rack2 = SharedEndpoint::new(&net);
        assert!(rack2.attach(ip("10.0.0.7"), 53, Region::ASIA).is_ok());
    }

    #[test]
    fn conflicts_detected() {
        let net = Network::new(NetConfig::default());
        let rack = SharedEndpoint::new(&net);
        rack.attach(ip("10.0.0.7"), 53, Region::ASIA).unwrap();
        assert!(rack.attach(ip("10.0.0.7"), 53, Region::ASIA).is_err());
    }
}
