//! The datagram network: binding, unicast and anycast delivery, loss.
//!
//! The fabric is built for many concurrent senders: the endpoint tables are
//! lock-striped across [`NUM_SHARDS`] independent `RwLock`ed maps (the send
//! path only ever takes read locks), delivery counters are atomics, and the
//! loss process derives each drop decision from a per-*sender* counter
//! stream rather than one global RNG behind a mutex — so loss decisions are
//! deterministic per sender regardless of how threads interleave.

use crate::addr::SockAddr;
use crate::error::NetError;
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::packet::Datagram;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A coarse geographic region (continent) used for anycast routing and the
/// latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(u8);

impl Region {
    /// North America.
    pub const NORTH_AMERICA: Region = Region(0);
    /// South America.
    pub const SOUTH_AMERICA: Region = Region(1);
    /// Europe.
    pub const EUROPE: Region = Region(2);
    /// Africa.
    pub const AFRICA: Region = Region(3);
    /// Asia.
    pub const ASIA: Region = Region(4);
    /// Oceania.
    pub const OCEANIA: Region = Region(5);
    /// Number of regions.
    pub const COUNT: usize = 6;
    /// All regions, in index order.
    pub const ALL: [Region; Region::COUNT] = [
        Region::NORTH_AMERICA,
        Region::SOUTH_AMERICA,
        Region::EUROPE,
        Region::AFRICA,
        Region::ASIA,
        Region::OCEANIA,
    ];

    /// Index into region-sized arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Probability in `[0, 1)` that a datagram is silently dropped.
    pub loss_rate: f64,
    /// Seed for the loss process (deterministic runs).
    pub seed: u64,
    /// Latency model used for anycast site selection and latency accounting.
    pub latency: LatencyModel,
    /// Optional fault-injection plan. Servers the plan declares out become
    /// transport-level black holes: every datagram addressed to one of
    /// their *service ports* is silently eaten (counted in
    /// [`NetStats::faulted`]), whatever the protocol on top. Replies to
    /// clients on ephemeral ports always get through — see
    /// [`FaultPlan::black_holes`].
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            loss_rate: 0.0,
            seed: 0,
            latency: LatencyModel::default(),
            faults: None,
        }
    }
}

/// Delivery counters, readable at any time via [`Network::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams handed to the network.
    pub sent: u64,
    /// Datagrams delivered to an endpoint.
    pub delivered: u64,
    /// Datagrams dropped by the loss process.
    pub dropped: u64,
    /// Sends that failed because nothing was bound at the destination.
    pub unreachable: u64,
    /// Datagrams black-holed because the fault plan has the destination
    /// server out.
    pub faulted: u64,
    /// Sum of simulated one-way latency over delivered datagrams (ms).
    pub total_latency_ms: u64,
}

/// A synchronous service function bound at an address. It is invoked
/// *inline on the sender's thread* with each delivered datagram; returning
/// `Some(payload)` sends that payload back to the datagram's source through
/// the normal send path (loss, latency accounting and all).
pub type ResponderFn = dyn Fn(&Datagram) -> Option<Bytes> + Send + Sync;

/// Where a delivered datagram goes.
#[derive(Clone)]
enum Sink {
    /// Into a channel drained by some receiving thread.
    Queue(Sender<Datagram>),
    /// Into a stateless service function run on the sender's thread.
    Inline(Arc<ResponderFn>),
}

struct Bound {
    sink: Sink,
    region: Region,
}

/// Replies from inline responders re-enter the send path. Responders
/// answering responders is not a pattern the simulation uses, so chains
/// deeper than this count as unreachable rather than recursing away.
const MAX_INLINE_DEPTH: u8 = 4;

/// Number of lock stripes for the endpoint tables.
pub const NUM_SHARDS: usize = 16;

fn shard_index(addr: &SockAddr) -> usize {
    (addr_hash(addr) as usize) % NUM_SHARDS
}

fn addr_hash(addr: &SockAddr) -> u64 {
    let mut h = DefaultHasher::new();
    addr.hash(&mut h);
    h.finish()
}

/// One lock stripe of the endpoint tables (plus the loss-stream counters of
/// senders hashing into it).
#[derive(Default)]
struct Shard {
    unicast: RwLock<HashMap<SockAddr, Bound>>,
    anycast: RwLock<HashMap<SockAddr, Vec<Bound>>>,
    loss_seq: Mutex<HashMap<SockAddr, u64>>,
}

/// Delivery counters as atomics so the hot send path never locks for stats.
#[derive(Default)]
struct AtomicStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    unreachable: AtomicU64,
    faulted: AtomicU64,
    total_latency_ms: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> NetStats {
        NetStats {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            unreachable: self.unreachable.load(Ordering::Relaxed),
            faulted: self.faulted.load(Ordering::Relaxed),
            total_latency_ms: self.total_latency_ms.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64: the drop decision for (sender, sequence number) is a pure
/// function of the seed, so loss is reproducible per sender no matter how
/// concurrent sends interleave.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct NetworkInner {
    shards: [Shard; NUM_SHARDS],
    config: NetConfig,
    stats: AtomicStats,
}

/// Handle to a simulated network. Cloning shares the same fabric.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Network {
    /// Creates a fresh, empty network.
    pub fn new(config: NetConfig) -> Self {
        Network {
            inner: Arc::new(NetworkInner {
                shards: std::array::from_fn(|_| Shard::default()),
                config,
                stats: AtomicStats::default(),
            }),
        }
    }

    fn shard(&self, addr: &SockAddr) -> &Shard {
        &self.inner.shards[shard_index(addr)]
    }

    /// Binds a unicast endpoint at `ip:port` located in `region`.
    pub fn bind(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<Endpoint, NetError> {
        let addr = SockAddr::new(ip, port);
        let mut map = self.shard(&addr).unicast.write();
        if map.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = unbounded();
        map.insert(
            addr,
            Bound {
                sink: Sink::Queue(tx),
                region,
            },
        );
        Ok(Endpoint {
            addr,
            region,
            rx,
            net: self.clone(),
            anycast: false,
        })
    }

    /// Binds one *site* of an anycast address. Multiple sites may share the
    /// same `ip:port`; delivery picks the site with the lowest modelled
    /// latency from the sender's region (ties by bind order).
    pub fn bind_anycast(
        &self,
        ip: Ipv4Addr,
        port: u16,
        region: Region,
    ) -> Result<Endpoint, NetError> {
        let addr = SockAddr::new(ip, port);
        let shard = self.shard(&addr);
        if shard.unicast.read().contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = unbounded();
        shard.anycast.write().entry(addr).or_default().push(Bound {
            sink: Sink::Queue(tx),
            region,
        });
        Ok(Endpoint {
            addr,
            region,
            rx,
            net: self.clone(),
            anycast: true,
        })
    }

    /// Binds an address onto an existing channel (shared-endpoint support).
    ///
    /// Unicast bindings conflict with any existing binding at the address;
    /// anycast bindings stack per region like [`Network::bind_anycast`].
    pub(crate) fn bind_tx(
        &self,
        addr: SockAddr,
        region: Region,
        tx: Sender<Datagram>,
        anycast: bool,
    ) -> Result<(), NetError> {
        self.bind_sink(addr, region, Sink::Queue(tx), anycast)
    }

    /// Binds an address onto an inline service function (responder-set
    /// support): datagrams to it are answered on the sender's thread.
    pub(crate) fn bind_responder(
        &self,
        addr: SockAddr,
        region: Region,
        f: Arc<ResponderFn>,
        anycast: bool,
    ) -> Result<(), NetError> {
        self.bind_sink(addr, region, Sink::Inline(f), anycast)
    }

    fn bind_sink(
        &self,
        addr: SockAddr,
        region: Region,
        sink: Sink,
        anycast: bool,
    ) -> Result<(), NetError> {
        let shard = self.shard(&addr);
        if anycast {
            if shard.unicast.read().contains_key(&addr) {
                return Err(NetError::AddrInUse(addr));
            }
            shard
                .anycast
                .write()
                .entry(addr)
                .or_default()
                .push(Bound { sink, region });
            Ok(())
        } else {
            // Lock order within a shard is always unicast before anycast.
            let mut map = shard.unicast.write();
            if map.contains_key(&addr) || shard.anycast.read().contains_key(&addr) {
                return Err(NetError::AddrInUse(addr));
            }
            map.insert(addr, Bound { sink, region });
            Ok(())
        }
    }

    /// Raw send for shared endpoints.
    pub(crate) fn send_from_raw(
        &self,
        src: SockAddr,
        src_region: Region,
        dst: SockAddr,
        payload: Bytes,
    ) -> Result<(), NetError> {
        self.send_from(src, src_region, dst, payload)
    }

    /// Raw unbind for shared endpoints.
    pub(crate) fn unbind_raw(&self, addr: SockAddr, anycast: bool, region: Region) {
        self.unbind(addr, anycast, region);
    }

    /// Whether an address is announced via anycast.
    pub fn is_anycast(&self, ip: Ipv4Addr, port: u16) -> bool {
        let addr = SockAddr::new(ip, port);
        self.shard(&addr).anycast.read().contains_key(&addr)
    }

    /// Snapshot of delivery counters.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.snapshot()
    }

    /// Whether the next datagram from `src` is eaten by the loss process.
    ///
    /// Each sender gets its own counter-indexed SplitMix64 stream, so the
    /// decisions a sender sees depend only on the seed and its own send
    /// count — never on other senders or thread scheduling.
    fn loss_roll(&self, src: SockAddr) -> bool {
        let seq = {
            let mut seqs = self.shard(&src).loss_seq.lock();
            let seq = seqs.entry(src).or_insert(0);
            let n = *seq;
            *seq += 1;
            n
        };
        let stream = splitmix64(self.inner.config.seed ^ addr_hash(&src));
        let roll = unit_f64(splitmix64(stream.wrapping_add(seq)));
        roll < self.inner.config.loss_rate
    }

    fn send_from(
        &self,
        src: SockAddr,
        src_region: Region,
        dst: SockAddr,
        payload: Bytes,
    ) -> Result<(), NetError> {
        self.send_from_depth(src, src_region, dst, payload, 0)
    }

    fn send_from_depth(
        &self,
        src: SockAddr,
        src_region: Region,
        dst: SockAddr,
        payload: Bytes,
        depth: u8,
    ) -> Result<(), NetError> {
        let inner = &self.inner;
        inner.stats.sent.fetch_add(1, Ordering::Relaxed);

        if inner.config.loss_rate > 0.0 && self.loss_roll(src) {
            inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // silent loss, like the real thing
        }

        // An out server is a black hole, not an unbound address: the sender
        // cannot tell the difference between outage and loss, exactly like a
        // dead host behind a live route. Only datagrams addressed to the
        // server's service ports are eaten — a reply to a client's
        // ephemeral port is not traffic *to* the dead server.
        if let Some(plan) = &inner.config.faults {
            if plan.black_holes(dst.ip, dst.port) {
                inner.stats.faulted.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }

        // Prefer a unicast binding; otherwise route to the best anycast
        // site. The sink is cloned out so no shard lock is held while
        // delivering (an inline responder's reply re-enters this path).
        let shard = self.shard(&dst);
        let (sink, dst_region) = {
            let unicast = shard.unicast.read();
            if let Some(b) = unicast.get(&dst) {
                (b.sink.clone(), b.region)
            } else {
                drop(unicast);
                let anycast = shard.anycast.read();
                let Some(sites) = anycast.get(&dst) else {
                    inner.stats.unreachable.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::Unreachable(dst));
                };
                let best = sites
                    .iter()
                    .min_by_key(|b| inner.config.latency.one_way(src_region, b.region))
                    .expect("anycast entries are never empty");
                (best.sink.clone(), best.region)
            }
        };

        let latency = inner.config.latency.one_way(src_region, dst_region);
        match sink {
            Sink::Queue(tx) => {
                let delivered = tx.send(Datagram { src, dst, payload }).is_ok();
                if delivered {
                    inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    inner
                        .stats
                        .total_latency_ms
                        .fetch_add(latency.as_millis() as u64, Ordering::Relaxed);
                } else {
                    inner.stats.unreachable.fetch_add(1, Ordering::Relaxed);
                }
            }
            Sink::Inline(f) => {
                if depth >= MAX_INLINE_DEPTH {
                    inner.stats.unreachable.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::Unreachable(dst));
                }
                inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
                inner
                    .stats
                    .total_latency_ms
                    .fetch_add(latency.as_millis() as u64, Ordering::Relaxed);
                let dgram = Datagram { src, dst, payload };
                if let Some(reply) = f(&dgram) {
                    // The responder answers from the address it was queried
                    // at, in the region anycast routing selected.
                    let _ =
                        self.send_from_depth(dgram.dst, dst_region, dgram.src, reply, depth + 1);
                }
            }
        }
        Ok(())
    }

    fn unbind(&self, addr: SockAddr, anycast: bool, region: Region) {
        let shard = self.shard(&addr);
        if anycast {
            let mut map = shard.anycast.write();
            if let Some(sites) = map.get_mut(&addr) {
                // Remove one site in this region (the endpoint's own).
                if let Some(pos) = sites.iter().position(|b| b.region == region) {
                    sites.remove(pos);
                }
                if sites.is_empty() {
                    map.remove(&addr);
                }
            }
        } else {
            shard.unicast.write().remove(&addr);
        }
    }
}

/// A bound endpoint: receives datagrams addressed to it and can send.
///
/// Dropping the endpoint unbinds the address.
pub struct Endpoint {
    addr: SockAddr,
    region: Region,
    rx: Receiver<Datagram>,
    net: Network,
    anycast: bool,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .field("region", &self.region)
            .field("anycast", &self.anycast)
            .finish_non_exhaustive()
    }
}

impl Endpoint {
    /// The bound socket address.
    pub fn addr(&self) -> SockAddr {
        self.addr
    }

    /// The endpoint's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Sends a datagram to `dst`.
    ///
    /// Returns [`NetError::Unreachable`] when nothing is bound there.
    /// A datagram consumed by the loss process still returns `Ok` — the
    /// sender cannot tell, exactly like UDP.
    pub fn send(&self, dst: SockAddr, payload: Bytes) -> Result<(), NetError> {
        self.net.send_from(self.addr, self.region, dst, payload)
    }

    /// Blocks until a datagram arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking receive; `None` when the queue is empty.
    pub fn try_recv(&self) -> Option<Datagram> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.net.unbind(self.addr, self.anycast, self.region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn unicast_roundtrip() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::EUROPE).unwrap();
        let b = net.bind(ip("10.0.0.2"), 4000, Region::EUROPE).unwrap();
        b.send(a.addr(), Bytes::from_static(b"hello")).unwrap();
        let d = a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d.payload[..], b"hello");
        assert_eq!(d.src, b.addr());
        // Reply path.
        a.send(d.src, Bytes::from_static(b"world")).unwrap();
        let r = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&r.payload[..], b"world");
    }

    #[test]
    fn double_bind_rejected() {
        let net = Network::new(NetConfig::default());
        let _a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap_err();
        assert!(matches!(err, NetError::AddrInUse(_)));
        // Different port is fine.
        assert!(net.bind(ip("10.0.0.1"), 54, Region::ASIA).is_ok());
    }

    #[test]
    fn unreachable_destination() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = a
            .send(SockAddr::new(ip("10.9.9.9"), 1), Bytes::new())
            .unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)));
        assert_eq!(net.stats().unreachable, 1);
    }

    #[test]
    fn drop_unbinds() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let addr = a.addr();
        drop(a);
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        assert!(matches!(
            b.send(addr, Bytes::new()),
            Err(NetError::Unreachable(_))
        ));
        // Rebinding works.
        assert!(net.bind(ip("10.0.0.1"), 53, Region::EUROPE).is_ok());
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn anycast_routes_to_nearest_site() {
        let net = Network::new(NetConfig::default());
        let eu_site = net.bind_anycast(ip("1.1.1.1"), 53, Region::EUROPE).unwrap();
        let as_site = net.bind_anycast(ip("1.1.1.1"), 53, Region::ASIA).unwrap();
        assert!(net.is_anycast(ip("1.1.1.1"), 53));

        let eu_client = net.bind(ip("10.0.0.1"), 1, Region::EUROPE).unwrap();
        let as_client = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        eu_client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"eu"))
            .unwrap();
        as_client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"as"))
            .unwrap();

        let d_eu = eu_site.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d_eu.payload[..], b"eu");
        let d_as = as_site.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d_as.payload[..], b"as");
    }

    #[test]
    fn anycast_and_unicast_do_not_mix() {
        let net = Network::new(NetConfig::default());
        let _u = net.bind(ip("2.2.2.2"), 53, Region::EUROPE).unwrap();
        assert!(net.bind_anycast(ip("2.2.2.2"), 53, Region::ASIA).is_err());
    }

    #[test]
    fn loss_drops_packets_deterministically() {
        let net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..Default::default()
        });
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        // Loss is silent: send succeeds, nothing arrives.
        b.send(a.addr(), Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
        let stats = net.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn loss_is_deterministic_per_sender() {
        // The drop pattern a sender sees must depend only on (seed, sender),
        // not on what other senders do in between.
        let pattern = |interleave: bool| -> Vec<bool> {
            let net = Network::new(NetConfig {
                loss_rate: 0.5,
                seed: 42,
                ..Default::default()
            });
            let sink = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
            let a = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
            let b = net.bind(ip("10.0.0.3"), 1, Region::ASIA).unwrap();
            let mut got = Vec::new();
            for i in 0..32u8 {
                a.send(sink.addr(), Bytes::copy_from_slice(&[i])).unwrap();
                if interleave {
                    // Noise from another sender must not perturb a's stream.
                    b.send(sink.addr(), Bytes::from_static(b"noise")).unwrap();
                }
                let mut arrived = false;
                while let Some(d) = sink.try_recv() {
                    if d.src == a.addr() {
                        arrived = true;
                    }
                }
                got.push(arrived);
            }
            got
        };
        let clean = pattern(false);
        assert!(clean.iter().any(|&x| x), "some datagrams should survive");
        assert!(!clean.iter().all(|&x| x), "some datagrams should drop");
        assert_eq!(clean, pattern(true));
    }

    #[test]
    fn fault_plan_black_holes_out_servers() {
        let net = Network::new(NetConfig {
            faults: Some(Arc::new(FaultPlan::outages(1, 1.0))),
            ..Default::default()
        });
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        // Like loss, the outage is silent: send succeeds, nothing arrives.
        b.send(a.addr(), Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
        let stats = net.stats();
        assert_eq!(stats.faulted, 1);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn outage_never_eats_replies_to_ephemeral_ports() {
        // Every address is "out", yet a reply to a client bound on an
        // ephemeral port must still arrive: outages kill servers (service
        // ports), not the clients that queried them.
        let net = Network::new(NetConfig {
            faults: Some(Arc::new(FaultPlan::outages(1, 1.0))),
            ..Default::default()
        });
        let server = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let client = net.bind(ip("10.0.0.2"), 33000, Region::ASIA).unwrap();
        server
            .send(client.addr(), Bytes::from_static(b"reply"))
            .unwrap();
        let d = client.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d.payload[..], b"reply");
        // The forward direction (to the server's service port) stays eaten.
        client
            .send(server.addr(), Bytes::from_static(b"q"))
            .unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
        assert_eq!(net.stats().faulted, 1);
    }

    #[test]
    fn stats_accumulate_latency() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::EUROPE).unwrap();
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        b.send(a.addr(), Bytes::from_static(b"x")).unwrap();
        let stats = net.stats();
        assert_eq!(stats.delivered, 1);
        assert!(stats.total_latency_ms >= 15);
    }

    #[test]
    fn threaded_echo_server() {
        let net = Network::new(NetConfig::default());
        let server = net.bind(ip("10.0.0.1"), 7, Region::NORTH_AMERICA).unwrap();
        let handle = std::thread::spawn(move || {
            // Echo until the first message saying "quit".
            while let Ok(d) = server.recv_timeout(Duration::from_secs(5)) {
                if &d.payload[..] == b"quit" {
                    break;
                }
                server.send(d.src, d.payload).unwrap();
            }
        });
        let client = net.bind(ip("10.0.0.9"), 9, Region::EUROPE).unwrap();
        let dst = SockAddr::new(ip("10.0.0.1"), 7);
        for i in 0..10u8 {
            client.send(dst, Bytes::copy_from_slice(&[i])).unwrap();
            let d = client.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(&d.payload[..], &[i]);
        }
        client.send(dst, Bytes::from_static(b"quit")).unwrap();
        handle.join().unwrap();
    }
}
