//! The datagram network: binding, unicast and anycast delivery, loss.

use crate::addr::SockAddr;
use crate::error::NetError;
use crate::latency::LatencyModel;
use crate::packet::Datagram;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// A coarse geographic region (continent) used for anycast routing and the
/// latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(u8);

impl Region {
    /// North America.
    pub const NORTH_AMERICA: Region = Region(0);
    /// South America.
    pub const SOUTH_AMERICA: Region = Region(1);
    /// Europe.
    pub const EUROPE: Region = Region(2);
    /// Africa.
    pub const AFRICA: Region = Region(3);
    /// Asia.
    pub const ASIA: Region = Region(4);
    /// Oceania.
    pub const OCEANIA: Region = Region(5);
    /// Number of regions.
    pub const COUNT: usize = 6;
    /// All regions, in index order.
    pub const ALL: [Region; Region::COUNT] = [
        Region::NORTH_AMERICA,
        Region::SOUTH_AMERICA,
        Region::EUROPE,
        Region::AFRICA,
        Region::ASIA,
        Region::OCEANIA,
    ];

    /// Index into region-sized arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Probability in `[0, 1)` that a datagram is silently dropped.
    pub loss_rate: f64,
    /// Seed for the loss process (deterministic runs).
    pub seed: u64,
    /// Latency model used for anycast site selection and latency accounting.
    pub latency: LatencyModel,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            loss_rate: 0.0,
            seed: 0,
            latency: LatencyModel::default(),
        }
    }
}

/// Delivery counters, readable at any time via [`Network::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams handed to the network.
    pub sent: u64,
    /// Datagrams delivered to an endpoint.
    pub delivered: u64,
    /// Datagrams dropped by the loss process.
    pub dropped: u64,
    /// Sends that failed because nothing was bound at the destination.
    pub unreachable: u64,
    /// Sum of simulated one-way latency over delivered datagrams (ms).
    pub total_latency_ms: u64,
}

struct Bound {
    tx: Sender<Datagram>,
    region: Region,
}

struct NetworkInner {
    unicast: RwLock<HashMap<SockAddr, Bound>>,
    anycast: RwLock<HashMap<SockAddr, Vec<Bound>>>,
    loss: Mutex<StdRng>,
    config: NetConfig,
    stats: Mutex<NetStats>,
}

/// Handle to a simulated network. Cloning shares the same fabric.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Network {
    /// Creates a fresh, empty network.
    pub fn new(config: NetConfig) -> Self {
        Network {
            inner: Arc::new(NetworkInner {
                unicast: RwLock::new(HashMap::new()),
                anycast: RwLock::new(HashMap::new()),
                loss: Mutex::new(StdRng::seed_from_u64(config.seed)),
                config,
                stats: Mutex::new(NetStats::default()),
            }),
        }
    }

    /// Binds a unicast endpoint at `ip:port` located in `region`.
    pub fn bind(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<Endpoint, NetError> {
        let addr = SockAddr::new(ip, port);
        let mut map = self.inner.unicast.write();
        if map.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = unbounded();
        map.insert(addr, Bound { tx, region });
        Ok(Endpoint {
            addr,
            region,
            rx,
            net: self.clone(),
            anycast: false,
        })
    }

    /// Binds one *site* of an anycast address. Multiple sites may share the
    /// same `ip:port`; delivery picks the site with the lowest modelled
    /// latency from the sender's region (ties by bind order).
    pub fn bind_anycast(&self, ip: Ipv4Addr, port: u16, region: Region) -> Result<Endpoint, NetError> {
        let addr = SockAddr::new(ip, port);
        if self.inner.unicast.read().contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (tx, rx) = unbounded();
        self.inner
            .anycast
            .write()
            .entry(addr)
            .or_default()
            .push(Bound { tx, region });
        Ok(Endpoint {
            addr,
            region,
            rx,
            net: self.clone(),
            anycast: true,
        })
    }

    /// Binds an address onto an existing channel (shared-endpoint support).
    ///
    /// Unicast bindings conflict with any existing binding at the address;
    /// anycast bindings stack per region like [`Network::bind_anycast`].
    pub(crate) fn bind_tx(
        &self,
        addr: SockAddr,
        region: Region,
        tx: Sender<Datagram>,
        anycast: bool,
    ) -> Result<(), NetError> {
        if anycast {
            if self.inner.unicast.read().contains_key(&addr) {
                return Err(NetError::AddrInUse(addr));
            }
            self.inner
                .anycast
                .write()
                .entry(addr)
                .or_default()
                .push(Bound { tx, region });
            Ok(())
        } else {
            let mut map = self.inner.unicast.write();
            if map.contains_key(&addr) || self.inner.anycast.read().contains_key(&addr) {
                return Err(NetError::AddrInUse(addr));
            }
            map.insert(addr, Bound { tx, region });
            Ok(())
        }
    }

    /// Raw send for shared endpoints.
    pub(crate) fn send_from_raw(
        &self,
        src: SockAddr,
        src_region: Region,
        dst: SockAddr,
        payload: Bytes,
    ) -> Result<(), NetError> {
        self.send_from(src, src_region, dst, payload)
    }

    /// Raw unbind for shared endpoints.
    pub(crate) fn unbind_raw(&self, addr: SockAddr, anycast: bool, region: Region) {
        self.unbind(addr, anycast, region);
    }

    /// Whether an address is announced via anycast.
    pub fn is_anycast(&self, ip: Ipv4Addr, port: u16) -> bool {
        self.inner
            .anycast
            .read()
            .contains_key(&SockAddr::new(ip, port))
    }

    /// Snapshot of delivery counters.
    pub fn stats(&self) -> NetStats {
        *self.inner.stats.lock()
    }

    fn send_from(
        &self,
        src: SockAddr,
        src_region: Region,
        dst: SockAddr,
        payload: Bytes,
    ) -> Result<(), NetError> {
        let inner = &self.inner;
        inner.stats.lock().sent += 1;

        if inner.config.loss_rate > 0.0 {
            let roll: f64 = inner.loss.lock().random_range(0.0..1.0);
            if roll < inner.config.loss_rate {
                inner.stats.lock().dropped += 1;
                return Ok(()); // silent loss, like the real thing
            }
        }

        // Prefer a unicast binding; otherwise route to the best anycast site.
        let (tx, dst_region) = {
            let unicast = inner.unicast.read();
            if let Some(b) = unicast.get(&dst) {
                (b.tx.clone(), b.region)
            } else {
                let anycast = inner.anycast.read();
                let Some(sites) = anycast.get(&dst) else {
                    inner.stats.lock().unreachable += 1;
                    return Err(NetError::Unreachable(dst));
                };
                let best = sites
                    .iter()
                    .min_by_key(|b| inner.config.latency.one_way(src_region, b.region))
                    .expect("anycast entries are never empty");
                (best.tx.clone(), best.region)
            }
        };

        let latency = inner.config.latency.one_way(src_region, dst_region);
        let delivered = tx
            .send(Datagram { src, dst, payload })
            .is_ok();
        let mut stats = inner.stats.lock();
        if delivered {
            stats.delivered += 1;
            stats.total_latency_ms += latency.as_millis() as u64;
        } else {
            stats.unreachable += 1;
        }
        Ok(())
    }

    fn unbind(&self, addr: SockAddr, anycast: bool, region: Region) {
        if anycast {
            let mut map = self.inner.anycast.write();
            if let Some(sites) = map.get_mut(&addr) {
                // Remove one site in this region (the endpoint's own).
                if let Some(pos) = sites.iter().position(|b| b.region == region) {
                    sites.remove(pos);
                }
                if sites.is_empty() {
                    map.remove(&addr);
                }
            }
        } else {
            self.inner.unicast.write().remove(&addr);
        }
    }
}

/// A bound endpoint: receives datagrams addressed to it and can send.
///
/// Dropping the endpoint unbinds the address.
pub struct Endpoint {
    addr: SockAddr,
    region: Region,
    rx: Receiver<Datagram>,
    net: Network,
    anycast: bool,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .field("region", &self.region)
            .field("anycast", &self.anycast)
            .finish_non_exhaustive()
    }
}

impl Endpoint {
    /// The bound socket address.
    pub fn addr(&self) -> SockAddr {
        self.addr
    }

    /// The endpoint's region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Sends a datagram to `dst`.
    ///
    /// Returns [`NetError::Unreachable`] when nothing is bound there.
    /// A datagram consumed by the loss process still returns `Ok` — the
    /// sender cannot tell, exactly like UDP.
    pub fn send(&self, dst: SockAddr, payload: Bytes) -> Result<(), NetError> {
        self.net.send_from(self.addr, self.region, dst, payload)
    }

    /// Blocks until a datagram arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Datagram, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking receive; `None` when the queue is empty.
    pub fn try_recv(&self) -> Option<Datagram> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.net.unbind(self.addr, self.anycast, self.region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn unicast_roundtrip() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::EUROPE).unwrap();
        let b = net.bind(ip("10.0.0.2"), 4000, Region::EUROPE).unwrap();
        b.send(a.addr(), Bytes::from_static(b"hello")).unwrap();
        let d = a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d.payload[..], b"hello");
        assert_eq!(d.src, b.addr());
        // Reply path.
        a.send(d.src, Bytes::from_static(b"world")).unwrap();
        let r = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&r.payload[..], b"world");
    }

    #[test]
    fn double_bind_rejected() {
        let net = Network::new(NetConfig::default());
        let _a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap_err();
        assert!(matches!(err, NetError::AddrInUse(_)));
        // Different port is fine.
        assert!(net.bind(ip("10.0.0.1"), 54, Region::ASIA).is_ok());
    }

    #[test]
    fn unreachable_destination() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = a
            .send(SockAddr::new(ip("10.9.9.9"), 1), Bytes::new())
            .unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)));
        assert_eq!(net.stats().unreachable, 1);
    }

    #[test]
    fn drop_unbinds() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let addr = a.addr();
        drop(a);
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        assert!(matches!(
            b.send(addr, Bytes::new()),
            Err(NetError::Unreachable(_))
        ));
        // Rebinding works.
        assert!(net.bind(ip("10.0.0.1"), 53, Region::EUROPE).is_ok());
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn anycast_routes_to_nearest_site() {
        let net = Network::new(NetConfig::default());
        let eu_site = net.bind_anycast(ip("1.1.1.1"), 53, Region::EUROPE).unwrap();
        let as_site = net.bind_anycast(ip("1.1.1.1"), 53, Region::ASIA).unwrap();
        assert!(net.is_anycast(ip("1.1.1.1"), 53));

        let eu_client = net.bind(ip("10.0.0.1"), 1, Region::EUROPE).unwrap();
        let as_client = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        eu_client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"eu"))
            .unwrap();
        as_client
            .send(SockAddr::new(ip("1.1.1.1"), 53), Bytes::from_static(b"as"))
            .unwrap();

        let d_eu = eu_site.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d_eu.payload[..], b"eu");
        let d_as = as_site.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&d_as.payload[..], b"as");
    }

    #[test]
    fn anycast_and_unicast_do_not_mix() {
        let net = Network::new(NetConfig::default());
        let _u = net.bind(ip("2.2.2.2"), 53, Region::EUROPE).unwrap();
        assert!(net.bind_anycast(ip("2.2.2.2"), 53, Region::ASIA).is_err());
    }

    #[test]
    fn loss_drops_packets_deterministically() {
        let net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..Default::default()
        });
        let a = net.bind(ip("10.0.0.1"), 53, Region::ASIA).unwrap();
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        // Loss is silent: send succeeds, nothing arrives.
        b.send(a.addr(), Bytes::from_static(b"x")).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_millis(10)), Err(NetError::Timeout));
        let stats = net.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn stats_accumulate_latency() {
        let net = Network::new(NetConfig::default());
        let a = net.bind(ip("10.0.0.1"), 53, Region::EUROPE).unwrap();
        let b = net.bind(ip("10.0.0.2"), 1, Region::ASIA).unwrap();
        b.send(a.addr(), Bytes::from_static(b"x")).unwrap();
        let stats = net.stats();
        assert_eq!(stats.delivered, 1);
        assert!(stats.total_latency_ms >= 15);
    }

    #[test]
    fn threaded_echo_server() {
        let net = Network::new(NetConfig::default());
        let server = net.bind(ip("10.0.0.1"), 7, Region::NORTH_AMERICA).unwrap();
        let handle = std::thread::spawn(move || {
            // Echo until the first message saying "quit".
            loop {
                let Ok(d) = server.recv_timeout(Duration::from_secs(5)) else {
                    break;
                };
                if &d.payload[..] == b"quit" {
                    break;
                }
                server.send(d.src, d.payload).unwrap();
            }
        });
        let client = net.bind(ip("10.0.0.9"), 9, Region::EUROPE).unwrap();
        let dst = SockAddr::new(ip("10.0.0.1"), 7);
        for i in 0..10u8 {
            client.send(dst, Bytes::copy_from_slice(&[i])).unwrap();
            let d = client.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(&d.payload[..], &[i]);
        }
        client.send(dst, Bytes::from_static(b"quit")).unwrap();
        handle.join().unwrap();
    }
}
