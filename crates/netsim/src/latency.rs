//! Continent-pair latency model.
//!
//! The simulation is synchronous (no sleeping), but every delivery is
//! charged a simulated one-way latency so experiments can reason about
//! where traffic would physically travel — e.g. the paper's observation
//! that African websites are largely served from North America and Europe
//! has a latency cost this model makes visible.

use crate::network::Region;
use std::time::Duration;

/// One-way latency model between regions, in milliseconds.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// `ms[from][to]` one-way latency.
    ms: [[u32; Region::COUNT]; Region::COUNT],
}

impl Default for LatencyModel {
    /// Rough public-internet one-way latencies between continents, derived
    /// from typical RTT/2 figures (intra-continent ~15 ms, transatlantic
    /// ~40 ms, transpacific ~60 ms, to/from Africa and Oceania higher).
    fn default() -> Self {
        use crate::network::Region as R;
        let mut ms = [[60u32; R::COUNT]; R::COUNT];
        let regions = [
            R::NORTH_AMERICA,
            R::SOUTH_AMERICA,
            R::EUROPE,
            R::AFRICA,
            R::ASIA,
            R::OCEANIA,
        ];
        for r in regions {
            ms[r.index()][r.index()] = 15;
        }
        let mut set = |a: R, b: R, v: u32| {
            ms[a.index()][b.index()] = v;
            ms[b.index()][a.index()] = v;
        };
        set(R::NORTH_AMERICA, R::EUROPE, 40);
        set(R::NORTH_AMERICA, R::SOUTH_AMERICA, 55);
        set(R::NORTH_AMERICA, R::ASIA, 60);
        set(R::NORTH_AMERICA, R::OCEANIA, 70);
        set(R::NORTH_AMERICA, R::AFRICA, 75);
        set(R::EUROPE, R::AFRICA, 45);
        set(R::EUROPE, R::ASIA, 55);
        set(R::EUROPE, R::SOUTH_AMERICA, 90);
        set(R::EUROPE, R::OCEANIA, 120);
        set(R::ASIA, R::OCEANIA, 55);
        set(R::ASIA, R::AFRICA, 90);
        set(R::SOUTH_AMERICA, R::AFRICA, 110);
        set(R::SOUTH_AMERICA, R::ASIA, 120);
        set(R::SOUTH_AMERICA, R::OCEANIA, 100);
        set(R::AFRICA, R::OCEANIA, 140);
        LatencyModel { ms }
    }
}

impl LatencyModel {
    /// A uniform model (useful for tests).
    pub fn uniform(ms: u32) -> Self {
        LatencyModel {
            ms: [[ms; Region::COUNT]; Region::COUNT],
        }
    }

    /// One-way latency between two regions.
    pub fn one_way(&self, from: Region, to: Region) -> Duration {
        Duration::from_millis(self.ms[from.index()][to.index()] as u64)
    }

    /// Round-trip latency between two regions.
    pub fn rtt(&self, from: Region, to: Region) -> Duration {
        2 * self.one_way(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Region;

    #[test]
    fn default_is_symmetric() {
        let m = LatencyModel::default();
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(m.one_way(a, b), m.one_way(b, a));
            }
        }
    }

    #[test]
    fn intra_is_cheapest_from_each_region() {
        let m = LatencyModel::default();
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(m.one_way(a, a) <= m.one_way(a, b));
                }
            }
        }
    }

    #[test]
    fn rtt_doubles() {
        let m = LatencyModel::uniform(25);
        assert_eq!(
            m.rtt(Region::EUROPE, Region::ASIA),
            Duration::from_millis(50)
        );
    }
}
