//! Deterministic fault injection: server outages and flaky-server schedules.
//!
//! Real measurement campaigns run over an unreliable substrate — ZDNS sees
//! timeouts and SERVFAILs, ZGrab2 sees dead listeners and garbage flights.
//! A [`FaultPlan`] reproduces that weather deterministically: every decision
//! is a pure function of `(plan seed, server IP, query key)`, never of the
//! sender's address, transaction id, or attempt number. Two consequences:
//!
//! * **Byte-reproducibility.** Re-asking the same question of the same
//!   server always yields the same outcome, so the measured dataset does not
//!   depend on worker count, scheduling, or cache warm-up order (retrying a
//!   faulty `(server, name)` pair never "gets lucky" — recovery happens by
//!   rotating to a *different* server, which is itself deterministic).
//! * **Tier discipline.** Per-query flaky faults are only applied at the
//!   authoritative (rack) tier by the deployment layer; shared referral
//!   caches would otherwise make *whether* a root/registry query happens —
//!   and thus whether its fault fires — scheduling-dependent. Infrastructure
//!   above the racks degrades via whole-server [outages](FaultPlan::server_out),
//!   which hold for the entire run and are visible to every client equally.
//!
//! The plan is enforced in two places: the network's send path black-holes
//! every datagram addressed to a *service port* of an out server (covering
//! DNS, TLS and registry traffic uniformly — see [`FaultPlan::black_holes`]
//! for why replies to clients are exempt), and protocol servers consult
//! [`FaultPlan::query_fault`] to corrupt, refuse, delay, or drop individual
//! answers on flaky servers.

use bytes::Bytes;
use std::net::Ipv4Addr;
use std::time::Duration;

/// What a flaky server does to one unlucky query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the query; the client sees a timeout.
    Drop,
    /// Answer with a protocol-level refusal (DNS SERVFAIL / TLS fatal alert).
    ServFail,
    /// Send only a prefix of the real answer (fails to decode).
    Truncate,
    /// Flip bytes in the answer header (decodes, but mismatched id).
    Garble,
    /// Answer correctly, but only after [`FaultPlan::delay`].
    Delay,
}

impl FaultKind {
    /// All kinds, for "throw everything at it" plans.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::ServFail,
        FaultKind::Truncate,
        FaultKind::Garble,
        FaultKind::Delay,
    ];

    /// Stable lowercase name (used in snapshots and taxonomy keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::ServFail => "servfail",
            FaultKind::Truncate => "truncate",
            FaultKind::Garble => "garble",
            FaultKind::Delay => "delay",
        }
    }
}

/// A reply after fault application: the payload to send (`None` when the
/// fault swallowed it) plus an optional delivery delay
/// ([`FaultKind::Delay`]).
///
/// The delay is *returned*, not slept, so the serving context can charge
/// it to the right party: threaded servers schedule the reply for later
/// delivery (one slow answer must not head-of-line-block the server's
/// other clients), while inline responders — already running on the
/// querier's own thread — may simply sleep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultedReply {
    /// The payload to send, or `None` when the fault swallowed the reply.
    pub payload: Option<Bytes>,
    /// How long delivery must wait ([`FaultKind::Delay`] only).
    pub delay: Option<Duration>,
}

impl FaultedReply {
    /// A clean, undelayed reply.
    pub fn clean(payload: Bytes) -> Self {
        FaultedReply {
            payload: Some(payload),
            delay: None,
        }
    }

    /// A swallowed reply: nothing is ever sent.
    pub fn swallowed() -> Self {
        FaultedReply::default()
    }
}

/// A seeded, deterministic schedule of server outages and flaky behaviour.
///
/// An inactive plan (all fractions zero — see [`FaultPlan::none`]) injects
/// nothing; a pipeline run under it is byte-identical to a run with no plan
/// at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision. Independent of the network loss seed.
    pub seed: u64,
    /// Fraction of servers that are down for the whole run (transport-level
    /// black hole; applies to any tier).
    pub outage_fraction: f64,
    /// Fraction of the remaining servers that are flaky (per-query faults).
    pub flaky_fraction: f64,
    /// Probability that a flaky server faults any given query key.
    pub fail_rate: f64,
    /// The fault repertoire flaky servers draw from. Must be non-empty for
    /// `flaky_fraction > 0` to have any effect.
    pub kinds: Vec<FaultKind>,
    /// Latency spike applied by [`FaultKind::Delay`].
    pub delay: Duration,
    /// Addresses exempt from all faults (e.g. the root nameserver, standing
    /// in for the real root's redundancy).
    pub protected: Vec<Ipv4Addr>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

const OUTAGE_SALT: u64 = 0x5143_9af2_27b0_cd11;
const FLAKY_SALT: u64 = 0x9d3c_41e7_66aa_0b57;
const QUERY_SALT: u64 = 0x2f8e_d1b4_0c5a_7393;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over the query key, finalized through SplitMix64.
fn key_hash(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            outage_fraction: 0.0,
            flaky_fraction: 0.0,
            fail_rate: 0.0,
            kinds: Vec::new(),
            delay: Duration::from_millis(20),
            protected: Vec::new(),
        }
    }

    /// Outage-only plan: `fraction` of unprotected servers are down.
    pub fn outages(seed: u64, fraction: f64) -> Self {
        FaultPlan {
            seed,
            outage_fraction: fraction,
            ..FaultPlan::none()
        }
    }

    /// Flaky-only plan: `fraction` of servers fault `fail_rate` of their
    /// queries, drawing from `kinds`.
    pub fn flaky(seed: u64, fraction: f64, fail_rate: f64, kinds: Vec<FaultKind>) -> Self {
        FaultPlan {
            seed,
            flaky_fraction: fraction,
            fail_rate,
            kinds,
            ..FaultPlan::none()
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.outage_fraction > 0.0
            || (self.flaky_fraction > 0.0 && self.fail_rate > 0.0 && !self.kinds.is_empty())
    }

    fn ip_stream(&self, salt: u64, ip: Ipv4Addr) -> u64 {
        splitmix64(self.seed ^ salt ^ u64::from(u32::from(ip)))
    }

    /// First ephemeral port. Outages black-hole only datagrams addressed
    /// to service ports below this bound; clients (vantage points, stub
    /// sockets) bind at or above it.
    pub const EPHEMERAL_PORT_FLOOR: u16 = 1024;

    /// Whether `ip` is down for the whole run. Pure in `(seed, ip)`.
    pub fn server_out(&self, ip: Ipv4Addr) -> bool {
        self.outage_fraction > 0.0
            && !self.protected.contains(&ip)
            && unit_f64(self.ip_stream(OUTAGE_SALT, ip)) < self.outage_fraction
    }

    /// Whether an outage eats a datagram addressed to `ip:port`.
    ///
    /// An outage kills a *server*, identified by its well-known service
    /// port (53, 443, …; anything below
    /// [`FaultPlan::EPHEMERAL_PORT_FLOOR`]). Replies to clients on
    /// ephemeral ports are never black-holed: a dead server cannot be
    /// reached, but a live client that happens to share an "out" address
    /// always can. The port gate also keeps outage plans deterministic —
    /// which traffic is eaten depends only on the plan and the
    /// deployment's fixed serving addresses, never on which worker bound
    /// which vantage address in what order.
    pub fn black_holes(&self, ip: Ipv4Addr, port: u16) -> bool {
        port < Self::EPHEMERAL_PORT_FLOOR && self.server_out(ip)
    }

    /// Whether `ip` is flaky (faults a fraction of its queries). Out servers
    /// are not additionally flaky.
    pub fn server_flaky(&self, ip: Ipv4Addr) -> bool {
        self.flaky_fraction > 0.0
            && !self.kinds.is_empty()
            && !self.protected.contains(&ip)
            && !self.server_out(ip)
            && unit_f64(self.ip_stream(FLAKY_SALT, ip)) < self.flaky_fraction
    }

    /// The fault (if any) server `ip` applies to the query identified by
    /// `key` — the qname for DNS, the SNI for TLS. Pure in
    /// `(seed, ip, key)`: every retry of the same question meets the same
    /// fate, so recovery must come from a different server.
    pub fn query_fault(&self, ip: Ipv4Addr, key: &[u8]) -> Option<FaultKind> {
        if self.server_out(ip) {
            return Some(FaultKind::Drop);
        }
        if !self.server_flaky(ip) {
            return None;
        }
        let h = key_hash(self.ip_stream(QUERY_SALT, ip), key);
        if unit_f64(h) >= self.fail_rate {
            return None;
        }
        Some(self.kinds[(splitmix64(h) % self.kinds.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Addr {
        Ipv4Addr::from(0x0a00_0000 | n)
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for i in 0..256 {
            assert!(!plan.server_out(ip(i)));
            assert!(!plan.server_flaky(ip(i)));
            assert_eq!(plan.query_fault(ip(i), b"example.com"), None);
        }
    }

    #[test]
    fn outage_fraction_is_respected_and_deterministic() {
        let plan = FaultPlan::outages(7, 0.3);
        let out: Vec<bool> = (0..2000).map(|i| plan.server_out(ip(i))).collect();
        let frac = out.iter().filter(|&&x| x).count() as f64 / out.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "outage fraction {frac}");
        // Same seed, same verdicts.
        let again: Vec<bool> = (0..2000).map(|i| plan.server_out(ip(i))).collect();
        assert_eq!(out, again);
        // Different seed, different draw.
        let other = FaultPlan::outages(8, 0.3);
        assert_ne!(
            out,
            (0..2000)
                .map(|i| other.server_out(ip(i)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn protected_addresses_never_fault() {
        let mut plan = FaultPlan::outages(1, 1.0);
        plan.flaky_fraction = 1.0;
        plan.fail_rate = 1.0;
        plan.kinds = FaultKind::ALL.to_vec();
        plan.protected = vec![ip(5)];
        assert!(!plan.server_out(ip(5)));
        assert_eq!(plan.query_fault(ip(5), b"q"), None);
        assert!(plan.server_out(ip(6)));
    }

    #[test]
    fn query_faults_are_pure_in_ip_and_key() {
        let plan = FaultPlan::flaky(3, 1.0, 0.5, FaultKind::ALL.to_vec());
        let mut hit = 0;
        for i in 0..500 {
            let key = format!("site{i}.example");
            let a = plan.query_fault(ip(1), key.as_bytes());
            // The verdict never changes across retries.
            for _ in 0..3 {
                assert_eq!(a, plan.query_fault(ip(1), key.as_bytes()));
            }
            if a.is_some() {
                hit += 1;
            }
            // A different server rolls independently.
            let _ = plan.query_fault(ip(2), key.as_bytes());
        }
        let rate = hit as f64 / 500.0;
        assert!((rate - 0.5).abs() < 0.08, "fail rate {rate}");
    }

    #[test]
    fn outages_black_hole_service_ports_only() {
        let plan = FaultPlan::outages(1, 1.0);
        for i in 0..64 {
            assert!(plan.server_out(ip(i)));
            // Service ports (DNS, TLS) are eaten …
            assert!(plan.black_holes(ip(i), 53));
            assert!(plan.black_holes(ip(i), 443));
            // … replies to ephemeral client ports never are.
            assert!(!plan.black_holes(ip(i), FaultPlan::EPHEMERAL_PORT_FLOOR));
            assert!(!plan.black_holes(ip(i), 33000));
        }
    }

    #[test]
    fn out_servers_drop_every_query() {
        let plan = FaultPlan::outages(1, 1.0);
        for i in 0..64 {
            assert_eq!(plan.query_fault(ip(i), b"any"), Some(FaultKind::Drop));
        }
    }
}
