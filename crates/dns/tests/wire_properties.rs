//! Property tests for the DNS wire codec: roundtrip over arbitrary valid
//! messages and no-panic over arbitrary bytes (a network-facing decoder
//! must never trust its input).

use proptest::prelude::*;
use webdep_dns::name::DomainName;
use webdep_dns::wire::{decode, encode, Message, Rcode, Record, RecordData, RecordType};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_-]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DomainName::parse(&labels.join(".")).expect("labels are valid"))
}

fn arb_rdata() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(o.into())),
        arb_name().prop_map(RecordData::Ns),
        arb_name().prop_map(RecordData::Cname),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, data)| Record { name, ttl, data })
}

fn arb_qtype() -> impl Strategy<Value = RecordType> {
    prop_oneof![
        Just(RecordType::A),
        Just(RecordType::Ns),
        Just(RecordType::Cname),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        arb_name(),
        arb_qtype(),
        prop::collection::vec(arb_record(), 0..6),
        prop::collection::vec(arb_record(), 0..4),
        prop::collection::vec(arb_record(), 0..4),
        0u16..4,
    )
        .prop_map(
            |(id, is_response, authoritative, rd, qname, qtype, answers, auth, add, rcode)| {
                let mut m = Message::query(id, qname, qtype);
                m.is_response = is_response;
                m.authoritative = authoritative;
                m.recursion_desired = rd;
                m.rcode = Rcode::from_code(rcode);
                m.answers = answers;
                m.authorities = auth;
                m.additionals = add;
                m
            },
        )
}

proptest! {
    /// encode → decode is the identity on arbitrary valid messages,
    /// including heavy name repetition (compression pointers).
    #[test]
    fn roundtrip(msg in arb_message()) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back, msg);
    }

    /// Arbitrary bytes never panic the decoder (Err or Ok, never abort).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(&bytes);
    }

    /// Truncating a valid message at any point yields an error or a valid
    /// (shorter) parse — never a panic.
    #[test]
    fn truncation_is_safe(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&msg);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = decode(&bytes[..cut]);
    }

    /// Bit flips never panic and, if they decode, yield a well-formed
    /// message (exercises the pointer-loop and bounds guards).
    #[test]
    fn bitflips_are_safe(msg in arb_message(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let bytes = encode(&msg).to_vec();
        let mut mutated = bytes.clone();
        if !mutated.is_empty() {
            let pos = (pos_seed as usize) % mutated.len();
            mutated[pos] ^= 1 << bit;
            let _ = decode(&mutated);
        }
    }
}
