//! Stub and iterative resolvers over the simulated network.
//!
//! The measurement pipeline resolves every website's A records and its
//! nameservers' A records, as the paper does with ZDNS. The
//! [`IterativeResolver`] starts at root hints, chases referrals (using glue
//! when present, resolving nameserver names otherwise), follows CNAMEs, and
//! caches delegations so bulk resolution does not hammer the root.

use crate::name::DomainName;
use crate::shared_cache::SharedDnsCache;
use crate::wire::{decode, encode, Message, Rcode, RecordData, RecordType};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;
use webdep_netsim::{Endpoint, NetError, SockAddr};

/// Resolver tuning knobs.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Per-query receive timeout.
    pub timeout: Duration,
    /// Retries per server before giving up on it.
    pub retries: u32,
    /// Maximum referral depth per resolution.
    pub max_depth: u32,
    /// Maximum CNAME chain length per resolution.
    pub max_cnames: u32,
    /// Cache a referral's authority NS set and glue A records as answers,
    /// so later `NS`/`A` queries for them skip the wire entirely. Real
    /// resolvers keep this delegation data too; disabling it reproduces
    /// the strictly query-driven behaviour (one wire round trip per
    /// record set ever returned).
    pub cache_referrals: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            timeout: Duration::from_millis(250),
            retries: 2,
            max_depth: 16,
            max_cnames: 8,
            cache_referrals: true,
        }
    }
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// All servers timed out.
    Timeout,
    /// The network rejected a send (destination unbound).
    Network(NetError),
    /// The authoritative server says the name does not exist.
    NxDomain(DomainName),
    /// The name exists but carries no records of the queried type.
    NoData(DomainName),
    /// Referral depth or CNAME chain limit exceeded.
    DepthExceeded,
    /// The server answered with a failure rcode.
    ServFail,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Timeout => write!(f, "query timed out"),
            ResolveError::Network(e) => write!(f, "network error: {e}"),
            ResolveError::NxDomain(n) => write!(f, "no such domain: {n}"),
            ResolveError::NoData(n) => write!(f, "no data for {n}"),
            ResolveError::DepthExceeded => write!(f, "referral/CNAME depth exceeded"),
            ResolveError::ServFail => write!(f, "server failure"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A stub resolver: sends single queries to a given server and matches
/// responses by transaction id, with retries.
pub struct StubResolver {
    endpoint: Endpoint,
    config: ResolverConfig,
    next_id: u16,
    /// Queries sent (including retries); exposed for measurement accounting.
    pub queries_sent: u64,
}

impl StubResolver {
    /// Wraps a bound endpoint.
    pub fn new(endpoint: Endpoint, config: ResolverConfig) -> Self {
        StubResolver {
            endpoint,
            config,
            next_id: 1,
            queries_sent: 0,
        }
    }

    /// Sends `name`/`qtype` to `server` and waits for the matching response.
    pub fn query(
        &mut self,
        server: SockAddr,
        name: &DomainName,
        qtype: RecordType,
    ) -> Result<Message, ResolveError> {
        for _attempt in 0..=self.config.retries {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            let msg = Message::query(id, name.clone(), qtype);
            self.queries_sent += 1;
            match self.endpoint.send(server, encode(&msg)) {
                Ok(()) => {}
                Err(NetError::Unreachable(a)) => {
                    return Err(ResolveError::Network(NetError::Unreachable(a)))
                }
                Err(e) => return Err(ResolveError::Network(e)),
            }
            let deadline = std::time::Instant::now() + self.config.timeout;
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break; // retry
                }
                match self.endpoint.recv_timeout(remaining) {
                    Ok(dgram) => match decode(&dgram.payload) {
                        Ok(resp)
                            if resp.is_response
                                && resp.id == id
                                && resp.questions == msg.questions =>
                        {
                            return Ok(resp);
                        }
                        _ => continue, // stale or foreign datagram; keep waiting
                    },
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(ResolveError::Network(e)),
                }
            }
        }
        Err(ResolveError::Timeout)
    }
}

/// Cached knowledge: nameserver addresses for a zone.
#[derive(Debug, Clone, Default)]
struct ZoneServers {
    addrs: Vec<Ipv4Addr>,
}

/// Lookup accounting: where answers came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries sent on the wire (including retries).
    pub wire_queries: u64,
    /// Answers served from this resolver's private cache.
    pub local_cache_hits: u64,
    /// Answers or delegations served from the shared cache tier.
    pub shared_cache_hits: u64,
}

/// An iterative resolver with a per-instance delegation cache, optionally
/// layered over a process-wide [`SharedDnsCache`].
pub struct IterativeResolver {
    stub: StubResolver,
    roots: Vec<Ipv4Addr>,
    /// zone apex -> authoritative server addresses.
    zone_cache: HashMap<DomainName, ZoneServers>,
    /// Completed answers by owner name, then record type. Nesting by name
    /// lets the hot lookup path borrow `name` instead of cloning it into a
    /// `(DomainName, RecordType)` probe key.
    answer_cache: HashMap<DomainName, Vec<(RecordType, Vec<RecordData>)>>,
    /// Shared cache tier consulted between the private cache and the wire.
    shared: Option<Arc<SharedDnsCache>>,
    local_cache_hits: u64,
    shared_cache_hits: u64,
}

impl IterativeResolver {
    /// Creates a resolver bound to `endpoint` with the given root hints.
    pub fn new(endpoint: Endpoint, roots: Vec<Ipv4Addr>, config: ResolverConfig) -> Self {
        assert!(!roots.is_empty(), "need at least one root hint");
        IterativeResolver {
            stub: StubResolver::new(endpoint, config),
            roots,
            zone_cache: HashMap::new(),
            answer_cache: HashMap::new(),
            shared: None,
            local_cache_hits: 0,
            shared_cache_hits: 0,
        }
    }

    /// Like [`IterativeResolver::new`], but consults (and feeds) `shared`
    /// between the private cache and the wire.
    pub fn with_shared_cache(
        endpoint: Endpoint,
        roots: Vec<Ipv4Addr>,
        config: ResolverConfig,
        shared: Arc<SharedDnsCache>,
    ) -> Self {
        let mut r = Self::new(endpoint, roots, config);
        r.shared = Some(shared);
        r
    }

    /// Total queries sent on the wire (cache hits cost nothing).
    pub fn queries_sent(&self) -> u64 {
        self.stub.queries_sent
    }

    /// Wire/cache accounting for this resolver.
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            wire_queries: self.stub.queries_sent,
            local_cache_hits: self.local_cache_hits,
            shared_cache_hits: self.shared_cache_hits,
        }
    }

    /// Resolves A records for `name`.
    pub fn resolve_a(&mut self, name: &DomainName) -> Result<Vec<Ipv4Addr>, ResolveError> {
        let data = self.resolve(name, RecordType::A, 0)?;
        Ok(data
            .into_iter()
            .filter_map(|d| match d {
                RecordData::A(ip) => Some(ip),
                _ => None,
            })
            .collect())
    }

    /// Resolves the NS set of `name` (the nameserver *names*).
    pub fn resolve_ns(&mut self, name: &DomainName) -> Result<Vec<DomainName>, ResolveError> {
        let data = self.resolve(name, RecordType::Ns, 0)?;
        Ok(data
            .into_iter()
            .filter_map(|d| match d {
                RecordData::Ns(n) => Some(n),
                _ => None,
            })
            .collect())
    }

    /// Full resolution with caching; returns the terminal record set.
    pub fn resolve(
        &mut self,
        name: &DomainName,
        qtype: RecordType,
        cname_depth: u32,
    ) -> Result<Vec<RecordData>, ResolveError> {
        if cname_depth > self.stub.config.max_cnames {
            return Err(ResolveError::DepthExceeded);
        }
        // Private cache first: borrowed-key lookup, no allocation on hits.
        if let Some(hit) = self.lookup_local(name, qtype) {
            self.local_cache_hits += 1;
            return Ok(hit);
        }
        // Then the shared tier, promoting hits into the private cache.
        if let Some(shared) = &self.shared {
            if let Some(hit) = shared.get_answer(name, qtype) {
                self.shared_cache_hits += 1;
                self.insert_local(name.clone(), qtype, hit.clone());
                return Ok(hit);
            }
        }

        // Start from the deepest cached zone enclosing `name`.
        let mut servers = self.starting_servers(name);
        let mut depth = 0;
        loop {
            depth += 1;
            if depth > self.stub.config.max_depth {
                return Err(ResolveError::DepthExceeded);
            }
            let resp = self.query_any(&servers, name, qtype)?;
            match resp.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => return Err(ResolveError::NxDomain(name.clone())),
                _ => return Err(ResolveError::ServFail),
            }
            if !resp.answers.is_empty() {
                // Split CNAMEs from terminal data.
                let mut terminal: Vec<RecordData> = Vec::new();
                let mut last_cname: Option<DomainName> = None;
                for r in &resp.answers {
                    match &r.data {
                        RecordData::Cname(t) => last_cname = Some(t.clone()),
                        d if d.record_type() == qtype => terminal.push(d.clone()),
                        _ => {}
                    }
                }
                if terminal.is_empty() {
                    if let Some(target) = last_cname {
                        let resolved = self.resolve(&target, qtype, cname_depth + 1)?;
                        self.cache_answer(name.clone(), qtype, resolved.clone());
                        return Ok(resolved);
                    }
                    return Err(ResolveError::NoData(name.clone()));
                }
                self.cache_answer(name.clone(), qtype, terminal.clone());
                return Ok(terminal);
            }
            // Referral?
            let ns_names: Vec<DomainName> = resp
                .authorities
                .iter()
                .filter_map(|r| match &r.data {
                    RecordData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if ns_names.is_empty() {
                if resp.authoritative {
                    // Authoritative empty answer: NoData.
                    return Err(ResolveError::NoData(name.clone()));
                }
                return Err(ResolveError::ServFail);
            }
            let zone = resp
                .authorities
                .first()
                .map(|r| r.name.clone())
                .expect("authorities non-empty");
            let mut glue: Vec<Ipv4Addr> = resp
                .additionals
                .iter()
                .filter_map(|r| match r.data {
                    RecordData::A(ip) if ns_names.contains(&r.name) => Some(ip),
                    _ => None,
                })
                .collect();
            if glue.is_empty() {
                // Glueless delegation: resolve the first resolvable NS name.
                for ns in &ns_names {
                    if let Ok(addrs) = self.resolve_a_guarded(ns, depth) {
                        glue.extend(addrs);
                        break;
                    }
                }
            }
            if glue.is_empty() {
                return Err(ResolveError::ServFail);
            }
            if self.stub.config.cache_referrals {
                self.cache_referral_data(&zone, &ns_names, &resp);
            }
            if let Some(shared) = &self.shared {
                shared.put_zone(zone.clone(), glue.clone());
            }
            self.zone_cache
                .insert(zone, ZoneServers { addrs: glue.clone() });
            servers = glue;
        }
    }

    /// Caches what a referral already proves: the delegated zone's NS set
    /// and the glue addresses of its nameservers. The authoritative server
    /// would answer those queries with the same record sets (the deployed
    /// worlds publish delegation and apex data from one source), so this
    /// spares one wire round trip per `resolve_ns` and per glued NS
    /// address lookup.
    fn cache_referral_data(&mut self, zone: &DomainName, ns_names: &[DomainName], resp: &Message) {
        let ns_data: Vec<RecordData> =
            ns_names.iter().cloned().map(RecordData::Ns).collect();
        self.cache_answer(zone.clone(), RecordType::Ns, ns_data);
        for ns in ns_names {
            let addrs: Vec<RecordData> = resp
                .additionals
                .iter()
                .filter(|r| &r.name == ns)
                .filter_map(|r| match r.data {
                    RecordData::A(ip) => Some(RecordData::A(ip)),
                    _ => None,
                })
                .collect();
            if !addrs.is_empty() {
                self.cache_answer(ns.clone(), RecordType::A, addrs);
            }
        }
    }

    /// Borrowed-key private-cache lookup.
    fn lookup_local(&self, name: &DomainName, qtype: RecordType) -> Option<Vec<RecordData>> {
        self.answer_cache
            .get(name)?
            .iter()
            .find(|(t, _)| *t == qtype)
            .map(|(_, data)| data.clone())
    }

    fn insert_local(&mut self, name: DomainName, qtype: RecordType, data: Vec<RecordData>) {
        let rows = self.answer_cache.entry(name).or_default();
        match rows.iter_mut().find(|(t, _)| *t == qtype) {
            Some(row) => row.1 = data,
            None => rows.push((qtype, data)),
        }
    }

    /// Writes a completed answer through to both cache tiers.
    fn cache_answer(&mut self, name: DomainName, qtype: RecordType, data: Vec<RecordData>) {
        if let Some(shared) = &self.shared {
            shared.put_answer(name.clone(), qtype, data.clone());
        }
        self.insert_local(name, qtype, data);
    }

    /// Resolving a glueless NS name must not recurse unboundedly.
    fn resolve_a_guarded(
        &mut self,
        name: &DomainName,
        depth: u32,
    ) -> Result<Vec<Ipv4Addr>, ResolveError> {
        if depth >= self.stub.config.max_depth {
            return Err(ResolveError::DepthExceeded);
        }
        self.resolve_a(name)
    }

    /// Deepest known enclosing zone's servers: private cache, then the
    /// shared tier (promoting hits), then the root hints.
    fn starting_servers(&mut self, name: &DomainName) -> Vec<Ipv4Addr> {
        let mut current = Some(name.clone());
        while let Some(n) = current {
            if let Some(zs) = self.zone_cache.get(&n) {
                return zs.addrs.clone();
            }
            if let Some(shared) = &self.shared {
                if let Some(addrs) = shared.get_zone(&n) {
                    self.shared_cache_hits += 1;
                    self.zone_cache
                        .insert(n, ZoneServers { addrs: addrs.clone() });
                    return addrs;
                }
            }
            current = n.parent();
        }
        self.roots.clone()
    }

    fn query_any(
        &mut self,
        servers: &[Ipv4Addr],
        name: &DomainName,
        qtype: RecordType,
    ) -> Result<Message, ResolveError> {
        let mut last_err = ResolveError::Timeout;
        for &ip in servers {
            match self
                .stub
                .query(SockAddr::new(ip, crate::DNS_PORT), name, qtype)
            {
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::AuthServer;
    use crate::zone::Zone;
    use std::sync::Arc;
    use webdep_netsim::{NetConfig, Network, Region};

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Builds a tiny internet: root -> com -> example.com, plus an out-of-
    /// zone CNAME target under net.
    fn build_world(net: &Network) -> (Vec<AuthServer>, Vec<Ipv4Addr>) {
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let net_ip = ip("192.5.6.31");
        let example_ns_ip = ip("203.0.113.53");
        let provider_ns_ip = ip("203.0.113.54");

        let mut root = Zone::new(DomainName::root());
        root.delegate(n("com"), &[n("a.gtld-servers.net")], &[(n("a.gtld-servers.net"), com_ip)]);
        root.delegate(n("net"), &[n("b.gtld-servers.net")], &[(n("b.gtld-servers.net"), net_ip)]);

        let mut com = Zone::new(n("com"));
        com.delegate(
            n("example.com"),
            &[n("ns1.example.com")],
            &[(n("ns1.example.com"), example_ns_ip)],
        );

        let mut netz = Zone::new(n("net"));
        netz.delegate(
            n("provider.net"),
            &[n("ns1.provider.net")],
            &[(n("ns1.provider.net"), provider_ns_ip)],
        );

        let mut example = Zone::new(n("example.com"));
        example.add_a(n("example.com"), ip("203.0.113.10"));
        example.add_a(n("www.example.com"), ip("203.0.113.11"));
        example.add_cname(n("cdn.example.com"), n("edge.provider.net"));
        example.add_ns(n("example.com"), n("ns1.example.com"));
        example.add_a(n("ns1.example.com"), example_ns_ip);

        let mut provider = Zone::new(n("provider.net"));
        provider.add_a(n("edge.provider.net"), ip("203.0.113.99"));

        let servers = vec![
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(), vec![Arc::new(com)]),
            AuthServer::spawn(net.bind(net_ip, 53, Region::NORTH_AMERICA).unwrap(), vec![Arc::new(netz)]),
            AuthServer::spawn(
                net.bind(example_ns_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(example)],
            ),
            AuthServer::spawn(
                net.bind(provider_ns_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(provider)],
            ),
        ];
        (servers, vec![root_ip])
    }

    fn resolver(net: &Network, roots: Vec<Ipv4Addr>) -> IterativeResolver {
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        IterativeResolver::new(ep, roots, ResolverConfig::default())
    }

    #[test]
    fn full_iterative_resolution() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let addrs = r.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
    }

    #[test]
    fn caching_cuts_queries() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        r.resolve_a(&n("www.example.com")).unwrap();
        let first = r.queries_sent();
        // Second name in the same zone: should skip root and com.
        r.resolve_a(&n("example.com")).unwrap();
        let second = r.queries_sent() - first;
        assert!(second <= 1, "expected <=1 query after cache, got {second}");
        // Exact repeat: zero queries.
        r.resolve_a(&n("example.com")).unwrap();
        assert_eq!(r.queries_sent() - first, second);
    }

    #[test]
    fn cross_zone_cname_followed() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let addrs = r.resolve_a(&n("cdn.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.99")]);
    }

    #[test]
    fn nxdomain_reported() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let err = r.resolve_a(&n("nope.example.com")).unwrap_err();
        assert_eq!(err, ResolveError::NxDomain(n("nope.example.com")));
    }

    #[test]
    fn ns_resolution() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let ns = r.resolve_ns(&n("example.com")).unwrap();
        assert_eq!(ns, vec![n("ns1.example.com")]);
        // And the nameserver's address resolves too.
        let addrs = r.resolve_a(&n("ns1.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.53")]);
    }

    #[test]
    fn retries_survive_packet_loss() {
        // 30% loss: retries should still pull the answer through.
        let net = Network::new(NetConfig {
            loss_rate: 0.3,
            seed: 7,
            ..Default::default()
        });
        let (_servers, roots) = build_world(&net);
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(
            ep,
            roots,
            ResolverConfig {
                timeout: Duration::from_millis(60),
                retries: 8,
                ..Default::default()
            },
        );
        let addrs = r.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
    }

    #[test]
    fn shared_cache_spares_the_wire() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let shared = Arc::new(SharedDnsCache::new());

        // First resolver warms the shared cache from a cold start.
        let ep1 = net.bind(ip("10.0.0.98"), 3553, Region::EUROPE).unwrap();
        let mut r1 = IterativeResolver::with_shared_cache(
            ep1,
            roots.clone(),
            ResolverConfig::default(),
            Arc::clone(&shared),
        );
        r1.resolve_a(&n("www.example.com")).unwrap();
        assert!(r1.queries_sent() > 0);

        // Second resolver gets the same answer without touching the wire.
        let ep2 = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r2 = IterativeResolver::with_shared_cache(
            ep2,
            roots,
            ResolverConfig::default(),
            Arc::clone(&shared),
        );
        let addrs = r2.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
        assert_eq!(r2.queries_sent(), 0, "expected a shared-cache answer");
        assert!(r2.stats().shared_cache_hits >= 1);

        // A sibling name needs the wire, but the shared *delegation* cache
        // lets it skip the root/TLD walk entirely: give this resolver an
        // unreachable root hint and it still succeeds.
        let ep3 = net.bind(ip("10.0.0.97"), 3553, Region::EUROPE).unwrap();
        let mut r3 = IterativeResolver::with_shared_cache(
            ep3,
            vec![ip("9.9.9.9")],
            ResolverConfig::default(),
            shared,
        );
        let addrs = r3.resolve_a(&n("example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.10")]);
    }

    #[test]
    fn unreachable_root_is_an_error() {
        let net = Network::new(NetConfig::default());
        let mut r = resolver(&net, vec![ip("9.9.9.9")]);
        let err = r.resolve_a(&n("example.com")).unwrap_err();
        assert!(matches!(err, ResolveError::Network(_)), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "root hint")]
    fn requires_roots() {
        let net = Network::new(NetConfig::default());
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let _ = IterativeResolver::new(ep, vec![], ResolverConfig::default());
    }
}
