//! Stub and iterative resolvers over the simulated network.
//!
//! The measurement pipeline resolves every website's A records and its
//! nameservers' A records, as the paper does with ZDNS. The
//! [`IterativeResolver`] starts at root hints, chases referrals (using glue
//! when present, resolving nameserver names otherwise), follows CNAMEs, and
//! caches delegations so bulk resolution does not hammer the root.

use crate::name::DomainName;
use crate::shared_cache::SharedDnsCache;
use crate::wire::{decode, encode, Message, Rcode, RecordData, RecordType};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;
use webdep_netsim::{Endpoint, NetError, SockAddr};

/// Resolver tuning knobs.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Per-query receive timeout.
    pub timeout: Duration,
    /// Retries per server before giving up on it.
    pub retries: u32,
    /// Maximum referral depth per resolution.
    pub max_depth: u32,
    /// Maximum CNAME chain length per resolution.
    pub max_cnames: u32,
    /// Cache a referral's authority NS set and glue A records as answers,
    /// so later `NS`/`A` queries for them skip the wire entirely. Real
    /// resolvers keep this delegation data too; disabling it reproduces
    /// the strictly query-driven behaviour (one wire round trip per
    /// record set ever returned).
    pub cache_referrals: bool,
    /// Total wall-clock cap for one top-level resolution, spanning every
    /// rotation round, backoff, referral, and glueless-NS/CNAME recursion
    /// it triggers. Without it, rotation + exponential backoff bounds each
    /// *attempt* but not their sum, so one pathological (e.g. black-holed)
    /// zone with many nameservers can stall a pipeline worker for the full
    /// strike budget. `None` (the default) keeps the uncapped behaviour;
    /// expiry surfaces as [`ResolveError::Timeout`].
    pub site_deadline: Option<Duration>,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            timeout: Duration::from_millis(250),
            retries: 2,
            max_depth: 16,
            max_cnames: 8,
            cache_referrals: true,
            site_deadline: None,
        }
    }
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// All servers timed out.
    Timeout,
    /// The network rejected a send (destination unbound).
    Network(NetError),
    /// The authoritative server says the name does not exist.
    NxDomain(DomainName),
    /// The name exists but carries no records of the queried type.
    NoData(DomainName),
    /// Referral depth or CNAME chain limit exceeded.
    DepthExceeded,
    /// The server answered with a failure rcode.
    ServFail,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Timeout => write!(f, "query timed out"),
            ResolveError::Network(e) => write!(f, "network error: {e}"),
            ResolveError::NxDomain(n) => write!(f, "no such domain: {n}"),
            ResolveError::NoData(n) => write!(f, "no data for {n}"),
            ResolveError::DepthExceeded => write!(f, "referral/CNAME depth exceeded"),
            ResolveError::ServFail => write!(f, "server failure"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A stub resolver: sends single queries to a given server and matches
/// responses by transaction id, with retries.
pub struct StubResolver {
    endpoint: Endpoint,
    config: ResolverConfig,
    next_id: u16,
    /// Queries sent (including retries); exposed for measurement accounting.
    pub queries_sent: u64,
    /// Received datagrams discarded because they failed to decode
    /// (truncated or corrupted answers).
    pub malformed_datagrams: u64,
    /// Received datagrams that decoded but matched no outstanding query
    /// (wrong id or question — stale, garbled, or spoofed replies).
    pub mismatched_ids: u64,
}

impl StubResolver {
    /// Wraps a bound endpoint.
    pub fn new(endpoint: Endpoint, config: ResolverConfig) -> Self {
        StubResolver {
            endpoint,
            config,
            next_id: 1,
            queries_sent: 0,
            malformed_datagrams: 0,
            mismatched_ids: 0,
        }
    }

    /// Sends `name`/`qtype` to `server` and waits for the matching response.
    pub fn query(
        &mut self,
        server: SockAddr,
        name: &DomainName,
        qtype: RecordType,
    ) -> Result<Message, ResolveError> {
        for _attempt in 0..=self.config.retries {
            match self.query_once(server, name, qtype, self.config.timeout) {
                Err(ResolveError::Timeout) => continue,
                other => return other,
            }
        }
        Err(ResolveError::Timeout)
    }

    /// One send and one wait window against a single server — the building
    /// block the iterative resolver's rotation/backoff schedule is made of.
    pub fn query_once(
        &mut self,
        server: SockAddr,
        name: &DomainName,
        qtype: RecordType,
        timeout: Duration,
    ) -> Result<Message, ResolveError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let msg = Message::query(id, name.clone(), qtype);
        self.queries_sent += 1;
        match self.endpoint.send(server, encode(&msg)) {
            Ok(()) => {}
            Err(e) => return Err(ResolveError::Network(e)),
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(ResolveError::Timeout);
            }
            match self.endpoint.recv_timeout(remaining) {
                Ok(dgram) => match decode(&dgram.payload) {
                    Ok(resp)
                        if resp.is_response && resp.id == id && resp.questions == msg.questions =>
                    {
                        return Ok(resp);
                    }
                    Ok(_) => {
                        // Stale or foreign datagram; keep waiting.
                        self.mismatched_ids += 1;
                        continue;
                    }
                    Err(_) => {
                        self.malformed_datagrams += 1;
                        continue;
                    }
                },
                Err(NetError::Timeout) => return Err(ResolveError::Timeout),
                Err(e) => return Err(ResolveError::Network(e)),
            }
        }
    }
}

/// Cached knowledge: nameserver addresses for a zone.
#[derive(Debug, Clone, Default)]
struct ZoneServers {
    addrs: Vec<Ipv4Addr>,
}

/// Lookup accounting: where answers came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries sent on the wire (including retries).
    pub wire_queries: u64,
    /// Answers served from this resolver's private cache.
    pub local_cache_hits: u64,
    /// Answers or delegations served from the shared cache tier.
    pub shared_cache_hits: u64,
    /// Received datagrams discarded because they failed to decode.
    pub malformed_datagrams: u64,
    /// Decoded datagrams discarded for a wrong id or question.
    pub mismatched_ids: u64,
}

/// An iterative resolver with a per-instance delegation cache, optionally
/// layered over a process-wide [`SharedDnsCache`].
pub struct IterativeResolver {
    stub: StubResolver,
    roots: Vec<Ipv4Addr>,
    /// zone apex -> authoritative server addresses.
    zone_cache: HashMap<DomainName, ZoneServers>,
    /// Completed answers by owner name, then record type. Nesting by name
    /// lets the hot lookup path borrow `name` instead of cloning it into a
    /// `(DomainName, RecordType)` probe key.
    answer_cache: HashMap<DomainName, Vec<(RecordType, Vec<RecordData>)>>,
    /// Shared cache tier consulted between the private cache and the wire.
    shared: Option<Arc<SharedDnsCache>>,
    /// Consecutive fully-failed passes per server. A server at
    /// [`DEAD_AFTER_STRIKES`] is demoted: still probed (once, last) so
    /// outcomes stay schedule-independent, but no longer granted the full
    /// backoff schedule. Any successful answer clears its strikes.
    server_strikes: HashMap<Ipv4Addr, u32>,
    /// Wall-clock budget for the in-progress top-level resolution,
    /// installed by the outermost [`IterativeResolver::resolve`] call
    /// (recursive re-entries for CNAMEs and glueless NS names share it).
    budget_deadline: Option<std::time::Instant>,
    local_cache_hits: u64,
    shared_cache_hits: u64,
}

/// Fully-failed `query_any` passes before a server is demoted to a single
/// trailing probe per query.
const DEAD_AFTER_STRIKES: u32 = 2;

/// Cap on the exponential backoff: the per-attempt timeout doubles each
/// rotation round up to `base << BACKOFF_CAP`.
const BACKOFF_CAP: u32 = 3;

fn backoff_timeout(base: Duration, round: u32) -> Duration {
    base * (1u32 << round.min(BACKOFF_CAP))
}

impl IterativeResolver {
    /// Creates a resolver bound to `endpoint` with the given root hints.
    pub fn new(endpoint: Endpoint, roots: Vec<Ipv4Addr>, config: ResolverConfig) -> Self {
        assert!(!roots.is_empty(), "need at least one root hint");
        IterativeResolver {
            stub: StubResolver::new(endpoint, config),
            roots,
            zone_cache: HashMap::new(),
            answer_cache: HashMap::new(),
            shared: None,
            server_strikes: HashMap::new(),
            budget_deadline: None,
            local_cache_hits: 0,
            shared_cache_hits: 0,
        }
    }

    /// Like [`IterativeResolver::new`], but consults (and feeds) `shared`
    /// between the private cache and the wire.
    pub fn with_shared_cache(
        endpoint: Endpoint,
        roots: Vec<Ipv4Addr>,
        config: ResolverConfig,
        shared: Arc<SharedDnsCache>,
    ) -> Self {
        let mut r = Self::new(endpoint, roots, config);
        r.shared = Some(shared);
        r
    }

    /// Total queries sent on the wire (cache hits cost nothing).
    pub fn queries_sent(&self) -> u64 {
        self.stub.queries_sent
    }

    /// Wire/cache accounting for this resolver.
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            wire_queries: self.stub.queries_sent,
            local_cache_hits: self.local_cache_hits,
            shared_cache_hits: self.shared_cache_hits,
            malformed_datagrams: self.stub.malformed_datagrams,
            mismatched_ids: self.stub.mismatched_ids,
        }
    }

    /// Resolves A records for `name`.
    pub fn resolve_a(&mut self, name: &DomainName) -> Result<Vec<Ipv4Addr>, ResolveError> {
        let data = self.resolve(name, RecordType::A, 0)?;
        Ok(data
            .into_iter()
            .filter_map(|d| match d {
                RecordData::A(ip) => Some(ip),
                _ => None,
            })
            .collect())
    }

    /// Resolves the NS set of `name` (the nameserver *names*).
    pub fn resolve_ns(&mut self, name: &DomainName) -> Result<Vec<DomainName>, ResolveError> {
        let data = self.resolve(name, RecordType::Ns, 0)?;
        Ok(data
            .into_iter()
            .filter_map(|d| match d {
                RecordData::Ns(n) => Some(n),
                _ => None,
            })
            .collect())
    }

    /// Full resolution with caching; returns the terminal record set.
    ///
    /// The outermost call installs the [`ResolverConfig::site_deadline`]
    /// budget (if configured); recursive re-entries — CNAME chasing,
    /// glueless NS resolution, nameserver rotation — run under the same
    /// budget, so the cap bounds the whole resolution tree, not each hop.
    pub fn resolve(
        &mut self,
        name: &DomainName,
        qtype: RecordType,
        cname_depth: u32,
    ) -> Result<Vec<RecordData>, ResolveError> {
        let owns_budget = self.budget_deadline.is_none();
        if owns_budget {
            self.budget_deadline = self
                .stub
                .config
                .site_deadline
                .map(|d| std::time::Instant::now() + d);
        }
        let result = self.resolve_under_budget(name, qtype, cname_depth);
        if owns_budget {
            self.budget_deadline = None;
        }
        result
    }

    /// Remaining budget, if one is installed. `Some(ZERO)` means expired.
    fn budget_remaining(&self) -> Option<Duration> {
        self.budget_deadline
            .map(|d| d.saturating_duration_since(std::time::Instant::now()))
    }

    fn resolve_under_budget(
        &mut self,
        name: &DomainName,
        qtype: RecordType,
        cname_depth: u32,
    ) -> Result<Vec<RecordData>, ResolveError> {
        if cname_depth > self.stub.config.max_cnames {
            return Err(ResolveError::DepthExceeded);
        }
        // Private cache first: borrowed-key lookup, no allocation on hits.
        if let Some(hit) = self.lookup_local(name, qtype) {
            self.local_cache_hits += 1;
            return Ok(hit);
        }
        // Then the shared tier, promoting hits into the private cache.
        if let Some(shared) = &self.shared {
            if let Some(hit) = shared.get_answer(name, qtype) {
                self.shared_cache_hits += 1;
                self.insert_local(name.clone(), qtype, hit.clone());
                return Ok(hit);
            }
        }

        // Start from the deepest cached zone enclosing `name`.
        let mut servers = self.starting_servers(name);
        // Nameservers of the current zone whose addresses are not in
        // `servers` yet — the rotation reserve when every known address
        // fails.
        let mut pending_ns: Vec<DomainName> = Vec::new();
        let mut depth = 0;
        loop {
            depth += 1;
            if depth > self.stub.config.max_depth {
                return Err(ResolveError::DepthExceeded);
            }
            if self.budget_remaining().is_some_and(|r| r.is_zero()) {
                return Err(ResolveError::Timeout);
            }
            let resp = match self.query_any(&servers, name, qtype) {
                Ok(r) => r,
                Err(e) => {
                    // Every known address for this zone failed. Before
                    // giving up, resolve the zone's remaining NS names and
                    // rotate onto their addresses.
                    match self.next_alternative(&mut pending_ns, depth) {
                        Some(addrs) => {
                            servers = addrs;
                            continue;
                        }
                        None => return Err(e),
                    }
                }
            };
            match resp.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => return Err(ResolveError::NxDomain(name.clone())),
                _ => return Err(ResolveError::ServFail),
            }
            if !resp.answers.is_empty() {
                // Split CNAMEs from terminal data.
                let mut terminal: Vec<RecordData> = Vec::new();
                let mut last_cname: Option<DomainName> = None;
                for r in &resp.answers {
                    match &r.data {
                        RecordData::Cname(t) => last_cname = Some(t.clone()),
                        d if d.record_type() == qtype => terminal.push(d.clone()),
                        _ => {}
                    }
                }
                if terminal.is_empty() {
                    if let Some(target) = last_cname {
                        let resolved = self.resolve(&target, qtype, cname_depth + 1)?;
                        self.cache_answer(name.clone(), qtype, resolved.clone());
                        return Ok(resolved);
                    }
                    return Err(ResolveError::NoData(name.clone()));
                }
                self.cache_answer(name.clone(), qtype, terminal.clone());
                return Ok(terminal);
            }
            // Referral?
            let ns_names: Vec<DomainName> = resp
                .authorities
                .iter()
                .filter_map(|r| match &r.data {
                    RecordData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if ns_names.is_empty() {
                if resp.authoritative {
                    // Authoritative empty answer: NoData.
                    return Err(ResolveError::NoData(name.clone()));
                }
                return Err(ResolveError::ServFail);
            }
            let zone = resp
                .authorities
                .first()
                .map(|r| r.name.clone())
                .expect("authorities non-empty");
            let mut glue: Vec<Ipv4Addr> = resp
                .additionals
                .iter()
                .filter_map(|r| match r.data {
                    RecordData::A(ip) if ns_names.contains(&r.name) => Some(ip),
                    _ => None,
                })
                .collect();
            // NS names the referral carried no glue for: keep them as the
            // rotation reserve rather than forgetting them.
            let mut reserve: Vec<DomainName> = ns_names
                .iter()
                .filter(|ns| {
                    !resp
                        .additionals
                        .iter()
                        .any(|r| r.name == **ns && matches!(r.data, RecordData::A(_)))
                })
                .cloned()
                .collect();
            if glue.is_empty() {
                // Glueless delegation: resolve NS names until one yields
                // addresses; the rest stay in reserve.
                while glue.is_empty() && !reserve.is_empty() {
                    let ns = reserve.remove(0);
                    if let Ok(addrs) = self.resolve_a_guarded(&ns, depth) {
                        glue.extend(addrs);
                    }
                }
            }
            if glue.is_empty() {
                return Err(ResolveError::ServFail);
            }
            pending_ns = reserve;
            if self.stub.config.cache_referrals {
                self.cache_referral_data(&zone, &ns_names, &resp);
            }
            if let Some(shared) = &self.shared {
                shared.put_zone(zone.clone(), glue.clone());
            }
            self.zone_cache.insert(
                zone,
                ZoneServers {
                    addrs: glue.clone(),
                },
            );
            servers = glue;
        }
    }

    /// Caches what a referral already proves: the delegated zone's NS set
    /// and the glue addresses of its nameservers. The authoritative server
    /// would answer those queries with the same record sets (the deployed
    /// worlds publish delegation and apex data from one source), so this
    /// spares one wire round trip per `resolve_ns` and per glued NS
    /// address lookup.
    fn cache_referral_data(&mut self, zone: &DomainName, ns_names: &[DomainName], resp: &Message) {
        let ns_data: Vec<RecordData> = ns_names.iter().cloned().map(RecordData::Ns).collect();
        self.cache_answer(zone.clone(), RecordType::Ns, ns_data);
        for ns in ns_names {
            let addrs: Vec<RecordData> = resp
                .additionals
                .iter()
                .filter(|r| &r.name == ns)
                .filter_map(|r| match r.data {
                    RecordData::A(ip) => Some(RecordData::A(ip)),
                    _ => None,
                })
                .collect();
            if !addrs.is_empty() {
                self.cache_answer(ns.clone(), RecordType::A, addrs);
            }
        }
    }

    /// Borrowed-key private-cache lookup.
    fn lookup_local(&self, name: &DomainName, qtype: RecordType) -> Option<Vec<RecordData>> {
        self.answer_cache
            .get(name)?
            .iter()
            .find(|(t, _)| *t == qtype)
            .map(|(_, data)| data.clone())
    }

    fn insert_local(&mut self, name: DomainName, qtype: RecordType, data: Vec<RecordData>) {
        let rows = self.answer_cache.entry(name).or_default();
        match rows.iter_mut().find(|(t, _)| *t == qtype) {
            Some(row) => row.1 = data,
            None => rows.push((qtype, data)),
        }
    }

    /// Writes a completed answer through to both cache tiers.
    fn cache_answer(&mut self, name: DomainName, qtype: RecordType, data: Vec<RecordData>) {
        if let Some(shared) = &self.shared {
            shared.put_answer(name.clone(), qtype, data.clone());
        }
        self.insert_local(name, qtype, data);
    }

    /// Resolving a glueless NS name must not recurse unboundedly.
    fn resolve_a_guarded(
        &mut self,
        name: &DomainName,
        depth: u32,
    ) -> Result<Vec<Ipv4Addr>, ResolveError> {
        if depth >= self.stub.config.max_depth {
            return Err(ResolveError::DepthExceeded);
        }
        self.resolve_a(name)
    }

    /// Deepest known enclosing zone's servers: private cache, then the
    /// shared tier (promoting hits), then the root hints.
    fn starting_servers(&mut self, name: &DomainName) -> Vec<Ipv4Addr> {
        let mut current = Some(name.clone());
        while let Some(n) = current {
            if let Some(zs) = self.zone_cache.get(&n) {
                return zs.addrs.clone();
            }
            if let Some(shared) = &self.shared {
                if let Some(addrs) = shared.get_zone(&n) {
                    self.shared_cache_hits += 1;
                    self.zone_cache.insert(
                        n,
                        ZoneServers {
                            addrs: addrs.clone(),
                        },
                    );
                    return addrs;
                }
            }
            current = n.parent();
        }
        self.roots.clone()
    }

    /// Resolves names from `pending` until one yields addresses; used to
    /// rotate onto a zone's remaining nameservers after every known
    /// address has failed.
    fn next_alternative(
        &mut self,
        pending: &mut Vec<DomainName>,
        depth: u32,
    ) -> Option<Vec<Ipv4Addr>> {
        while !pending.is_empty() {
            let ns = pending.remove(0);
            if let Ok(addrs) = self.resolve_a_guarded(&ns, depth) {
                if !addrs.is_empty() {
                    return Some(addrs);
                }
            }
        }
        None
    }

    /// Asks the zone's servers for `name`/`qtype`, rotating across all of
    /// them with exponential backoff: one attempt per server per round, the
    /// per-attempt timeout doubling each round (capped). Definitive answers
    /// (NOERROR/NXDOMAIN) return immediately; refusals are remembered and
    /// only surfaced once no server gives a real answer.
    ///
    /// Servers that repeatedly fail whole passes are demoted: they are
    /// probed once, last, with the base timeout — still always *tried*, so
    /// which answers we obtain never depends on what this resolver learned
    /// from earlier, unrelated queries; only the time spent does. That
    /// keeps datasets byte-identical across worker counts while letting
    /// runs against dead infrastructure terminate quickly.
    fn query_any(
        &mut self,
        servers: &[Ipv4Addr],
        name: &DomainName,
        qtype: RecordType,
    ) -> Result<Message, ResolveError> {
        let (live, demoted): (Vec<Ipv4Addr>, Vec<Ipv4Addr>) =
            servers.iter().copied().partition(|ip| {
                self.server_strikes
                    .get(ip)
                    .is_none_or(|&s| s < DEAD_AFTER_STRIKES)
            });
        let base = self.stub.config.timeout;
        let rounds = self.stub.config.retries + 1;
        let mut refused: Option<Message> = None;
        let mut timed_out = false;
        let mut last_net: Option<ResolveError> = None;
        // Per-call bookkeeping: who was tried, who answered, who is
        // unreachable (unbound — no point re-sending within this call).
        let mut tried: Vec<Ipv4Addr> = Vec::new();
        let mut answered: Vec<Ipv4Addr> = Vec::new();
        let mut unreachable: Vec<Ipv4Addr> = Vec::new();
        let mut verdict: Option<Message> = None;

        'rounds: for round in 0..rounds {
            let timeout = backoff_timeout(base, round);
            // Demoted servers get exactly one trailing probe in round 0.
            let trailing = if round == 0 { demoted.as_slice() } else { &[] };
            for &ip in live.iter().chain(trailing) {
                if unreachable.contains(&ip) || answered.contains(&ip) {
                    continue;
                }
                let mut attempt_timeout = if demoted.contains(&ip) { base } else { timeout };
                // The resolution-wide budget trumps the backoff schedule:
                // clamp this attempt to what's left, and stop cold once
                // it's spent (a bounded-out zone reports Timeout).
                if let Some(remaining) = self.budget_remaining() {
                    if remaining.is_zero() {
                        timed_out = true;
                        break 'rounds;
                    }
                    attempt_timeout = attempt_timeout.min(remaining);
                }
                if !tried.contains(&ip) {
                    tried.push(ip);
                }
                match self.stub.query_once(
                    SockAddr::new(ip, crate::DNS_PORT),
                    name,
                    qtype,
                    attempt_timeout,
                ) {
                    Ok(resp) => {
                        answered.push(ip);
                        match resp.rcode {
                            Rcode::NoError | Rcode::NxDomain => {
                                verdict = Some(resp);
                                break 'rounds;
                            }
                            // A refusal is an answer from a live server,
                            // but another server may do better: rotate on.
                            _ => refused = Some(resp),
                        }
                    }
                    Err(ResolveError::Timeout) => timed_out = true,
                    Err(ResolveError::Network(NetError::Unreachable(a))) => {
                        unreachable.push(ip);
                        last_net = Some(ResolveError::Network(NetError::Unreachable(a)));
                    }
                    Err(e) => {
                        last_net = Some(e);
                        break 'rounds;
                    }
                }
            }
            // Later rounds only revisit servers that timed out; if none
            // did, there is nothing left worth re-asking.
            if live
                .iter()
                .all(|ip| unreachable.contains(ip) || answered.contains(ip))
            {
                break;
            }
        }

        // Strike accounting: answering clears a server's record; being
        // tried without ever answering earns one strike.
        for &ip in &answered {
            self.server_strikes.remove(&ip);
        }
        for &ip in &tried {
            if !answered.contains(&ip) {
                let s = self.server_strikes.entry(ip).or_insert(0);
                *s = s.saturating_add(1);
            }
        }

        if let Some(resp) = verdict {
            return Ok(resp);
        }
        if let Some(resp) = refused {
            return Ok(resp);
        }
        if timed_out {
            return Err(ResolveError::Timeout);
        }
        Err(last_net.unwrap_or(ResolveError::Timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::AuthServer;
    use crate::zone::Zone;
    use std::sync::Arc;
    use webdep_netsim::{NetConfig, Network, Region};

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Builds a tiny internet: root -> com -> example.com, plus an out-of-
    /// zone CNAME target under net.
    fn build_world(net: &Network) -> (Vec<AuthServer>, Vec<Ipv4Addr>) {
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let net_ip = ip("192.5.6.31");
        let example_ns_ip = ip("203.0.113.53");
        let provider_ns_ip = ip("203.0.113.54");

        let mut root = Zone::new(DomainName::root());
        root.delegate(
            n("com"),
            &[n("a.gtld-servers.net")],
            &[(n("a.gtld-servers.net"), com_ip)],
        );
        root.delegate(
            n("net"),
            &[n("b.gtld-servers.net")],
            &[(n("b.gtld-servers.net"), net_ip)],
        );

        let mut com = Zone::new(n("com"));
        com.delegate(
            n("example.com"),
            &[n("ns1.example.com")],
            &[(n("ns1.example.com"), example_ns_ip)],
        );

        let mut netz = Zone::new(n("net"));
        netz.delegate(
            n("provider.net"),
            &[n("ns1.provider.net")],
            &[(n("ns1.provider.net"), provider_ns_ip)],
        );

        let mut example = Zone::new(n("example.com"));
        example.add_a(n("example.com"), ip("203.0.113.10"));
        example.add_a(n("www.example.com"), ip("203.0.113.11"));
        example.add_cname(n("cdn.example.com"), n("edge.provider.net"));
        example.add_ns(n("example.com"), n("ns1.example.com"));
        example.add_a(n("ns1.example.com"), example_ns_ip);

        let mut provider = Zone::new(n("provider.net"));
        provider.add_a(n("edge.provider.net"), ip("203.0.113.99"));

        let servers = vec![
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(
                net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(com)],
            ),
            AuthServer::spawn(
                net.bind(net_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(netz)],
            ),
            AuthServer::spawn(
                net.bind(example_ns_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(example)],
            ),
            AuthServer::spawn(
                net.bind(provider_ns_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(provider)],
            ),
        ];
        (servers, vec![root_ip])
    }

    fn resolver(net: &Network, roots: Vec<Ipv4Addr>) -> IterativeResolver {
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        IterativeResolver::new(ep, roots, ResolverConfig::default())
    }

    #[test]
    fn full_iterative_resolution() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let addrs = r.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
    }

    #[test]
    fn caching_cuts_queries() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        r.resolve_a(&n("www.example.com")).unwrap();
        let first = r.queries_sent();
        // Second name in the same zone: should skip root and com.
        r.resolve_a(&n("example.com")).unwrap();
        let second = r.queries_sent() - first;
        assert!(second <= 1, "expected <=1 query after cache, got {second}");
        // Exact repeat: zero queries.
        r.resolve_a(&n("example.com")).unwrap();
        assert_eq!(r.queries_sent() - first, second);
    }

    #[test]
    fn cross_zone_cname_followed() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let addrs = r.resolve_a(&n("cdn.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.99")]);
    }

    #[test]
    fn nxdomain_reported() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let err = r.resolve_a(&n("nope.example.com")).unwrap_err();
        assert_eq!(err, ResolveError::NxDomain(n("nope.example.com")));
    }

    #[test]
    fn ns_resolution() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let mut r = resolver(&net, roots);
        let ns = r.resolve_ns(&n("example.com")).unwrap();
        assert_eq!(ns, vec![n("ns1.example.com")]);
        // And the nameserver's address resolves too.
        let addrs = r.resolve_a(&n("ns1.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.53")]);
    }

    #[test]
    fn retries_survive_packet_loss() {
        // 30% loss: retries should still pull the answer through.
        let net = Network::new(NetConfig {
            loss_rate: 0.3,
            seed: 7,
            ..Default::default()
        });
        let (_servers, roots) = build_world(&net);
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(
            ep,
            roots,
            ResolverConfig {
                timeout: Duration::from_millis(60),
                retries: 8,
                ..Default::default()
            },
        );
        let addrs = r.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
    }

    #[test]
    fn shared_cache_spares_the_wire() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = build_world(&net);
        let shared = Arc::new(SharedDnsCache::new());

        // First resolver warms the shared cache from a cold start.
        let ep1 = net.bind(ip("10.0.0.98"), 3553, Region::EUROPE).unwrap();
        let mut r1 = IterativeResolver::with_shared_cache(
            ep1,
            roots.clone(),
            ResolverConfig::default(),
            Arc::clone(&shared),
        );
        r1.resolve_a(&n("www.example.com")).unwrap();
        assert!(r1.queries_sent() > 0);

        // Second resolver gets the same answer without touching the wire.
        let ep2 = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r2 = IterativeResolver::with_shared_cache(
            ep2,
            roots,
            ResolverConfig::default(),
            Arc::clone(&shared),
        );
        let addrs = r2.resolve_a(&n("www.example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.11")]);
        assert_eq!(r2.queries_sent(), 0, "expected a shared-cache answer");
        assert!(r2.stats().shared_cache_hits >= 1);

        // A sibling name needs the wire, but the shared *delegation* cache
        // lets it skip the root/TLD walk entirely: give this resolver an
        // unreachable root hint and it still succeeds.
        let ep3 = net.bind(ip("10.0.0.97"), 3553, Region::EUROPE).unwrap();
        let mut r3 = IterativeResolver::with_shared_cache(
            ep3,
            vec![ip("9.9.9.9")],
            ResolverConfig::default(),
            shared,
        );
        let addrs = r3.resolve_a(&n("example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.10")]);
    }

    #[test]
    fn unreachable_root_is_an_error() {
        let net = Network::new(NetConfig::default());
        let mut r = resolver(&net, vec![ip("9.9.9.9")]);
        let err = r.resolve_a(&n("example.com")).unwrap_err();
        assert!(matches!(err, ResolveError::Network(_)), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "root hint")]
    fn requires_roots() {
        let net = Network::new(NetConfig::default());
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let _ = IterativeResolver::new(ep, vec![], ResolverConfig::default());
    }

    fn fast_config() -> ResolverConfig {
        ResolverConfig {
            timeout: Duration::from_millis(40),
            retries: 1,
            ..Default::default()
        }
    }

    #[test]
    fn glueless_delegation_rotates_past_dead_first_ns() {
        // victim.com is delegated *gluelessly* to two nameservers; the
        // first NS name resolves to an unbound (dead) address, the second
        // to a live server. Resolution must rotate onto the second instead
        // of dying on the first.
        let net = Network::new(NetConfig::default());
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let net_ip = ip("192.5.6.31");
        let provider_ns_ip = ip("203.0.113.54");
        let dead_ip = ip("203.0.113.60"); // never bound
        let live_ip = ip("203.0.113.61");

        let mut root = Zone::new(DomainName::root());
        root.delegate(
            n("com"),
            &[n("a.gtld-servers.net")],
            &[(n("a.gtld-servers.net"), com_ip)],
        );
        root.delegate(
            n("net"),
            &[n("b.gtld-servers.net")],
            &[(n("b.gtld-servers.net"), net_ip)],
        );

        let mut com = Zone::new(n("com"));
        com.delegate(
            n("victim.com"),
            &[n("ns-dead.provider.net"), n("ns-live.provider.net")],
            &[], // no glue: the resolver must chase the NS names itself
        );

        let mut netz = Zone::new(n("net"));
        netz.delegate(
            n("provider.net"),
            &[n("ns1.provider.net")],
            &[(n("ns1.provider.net"), provider_ns_ip)],
        );

        let mut provider = Zone::new(n("provider.net"));
        provider.add_a(n("ns-dead.provider.net"), dead_ip);
        provider.add_a(n("ns-live.provider.net"), live_ip);

        let mut victim = Zone::new(n("victim.com"));
        victim.add_a(n("victim.com"), ip("203.0.113.70"));

        let _servers = [
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(
                net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(com)],
            ),
            AuthServer::spawn(
                net.bind(net_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(netz)],
            ),
            AuthServer::spawn(
                net.bind(provider_ns_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(provider)],
            ),
            AuthServer::spawn(
                net.bind(live_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(victim)],
            ),
        ];

        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(ep, vec![root_ip], fast_config());
        let addrs = r.resolve_a(&n("victim.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.70")]);
    }

    #[test]
    fn servfail_from_first_server_rotates_to_sibling() {
        // example.com has two glued nameservers; the first is misconfigured
        // (authoritative for nothing, so it answers SERVFAIL), the second
        // is healthy. The refusal must not end the resolution.
        let net = Network::new(NetConfig::default());
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let bad_ip = ip("203.0.113.55");
        let good_ip = ip("203.0.113.53");

        let mut root = Zone::new(DomainName::root());
        root.delegate(
            n("com"),
            &[n("a.gtld-servers.net")],
            &[(n("a.gtld-servers.net"), com_ip)],
        );
        let mut com = Zone::new(n("com"));
        com.delegate(
            n("example.com"),
            &[n("ns-bad.example.com"), n("ns-good.example.com")],
            &[
                (n("ns-bad.example.com"), bad_ip),
                (n("ns-good.example.com"), good_ip),
            ],
        );
        let mut example = Zone::new(n("example.com"));
        example.add_a(n("example.com"), ip("203.0.113.10"));

        let _servers = [
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(
                net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(com)],
            ),
            // Misconfigured: serves no zones at all, so every query gets
            // SERVFAIL.
            AuthServer::spawn(net.bind(bad_ip, 53, Region::EUROPE).unwrap(), vec![]),
            AuthServer::spawn(
                net.bind(good_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::new(example)],
            ),
        ];

        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(ep, vec![root_ip], fast_config());
        let addrs = r.resolve_a(&n("example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.10")]);
    }

    /// One faulty + one clean authoritative for example.com; the faulty one
    /// mangles every answer per `kind`.
    fn faulty_pair_world(
        net: &Network,
        kind: webdep_netsim::FaultKind,
    ) -> (Vec<AuthServer>, Vec<Ipv4Addr>) {
        use webdep_netsim::FaultPlan;
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let faulty_ip = ip("203.0.113.55");
        let clean_ip = ip("203.0.113.53");

        let mut root = Zone::new(DomainName::root());
        root.delegate(
            n("com"),
            &[n("a.gtld-servers.net")],
            &[(n("a.gtld-servers.net"), com_ip)],
        );
        let mut com = Zone::new(n("com"));
        com.delegate(
            n("example.com"),
            &[n("ns-faulty.example.com"), n("ns-clean.example.com")],
            &[
                (n("ns-faulty.example.com"), faulty_ip),
                (n("ns-clean.example.com"), clean_ip),
            ],
        );
        let mut example = Zone::new(n("example.com"));
        example.add_a(n("example.com"), ip("203.0.113.10"));
        let example = Arc::new(example);

        let plan = Arc::new(FaultPlan::flaky(1, 1.0, 1.0, vec![kind]));
        let servers = vec![
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(
                net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(com)],
            ),
            AuthServer::spawn_with_faults(
                net.bind(faulty_ip, 53, Region::EUROPE).unwrap(),
                vec![Arc::clone(&example)],
                Some(plan),
            ),
            AuthServer::spawn(
                net.bind(clean_ip, 53, Region::EUROPE).unwrap(),
                vec![example],
            ),
        ];
        (servers, vec![root_ip])
    }

    #[test]
    fn truncating_server_is_counted_and_survived() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = faulty_pair_world(&net, webdep_netsim::FaultKind::Truncate);
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(ep, roots, fast_config());
        let addrs = r.resolve_a(&n("example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.10")]);
        assert!(
            r.stats().malformed_datagrams >= 1,
            "truncated answers should be counted: {:?}",
            r.stats()
        );
    }

    #[test]
    fn site_deadline_bounds_a_black_holed_zone() {
        // victim.com is delegated to three nameservers whose addresses are
        // bound but never served: sends succeed, replies never come, so
        // every attempt runs to its full timeout. Without a site deadline
        // the rotation/backoff schedule across three servers costs many
        // seconds; with one, the resolution must bound out quickly and
        // report Timeout.
        let net = Network::new(NetConfig::default());
        let root_ip = ip("198.41.0.4");
        let com_ip = ip("192.5.6.30");
        let bh = [ip("203.0.113.80"), ip("203.0.113.81"), ip("203.0.113.82")];

        let mut root = Zone::new(DomainName::root());
        root.delegate(
            n("com"),
            &[n("a.gtld-servers.net")],
            &[(n("a.gtld-servers.net"), com_ip)],
        );
        let mut com = Zone::new(n("com"));
        com.delegate(
            n("victim.com"),
            &[
                n("ns1.victim.com"),
                n("ns2.victim.com"),
                n("ns3.victim.com"),
            ],
            &[
                (n("ns1.victim.com"), bh[0]),
                (n("ns2.victim.com"), bh[1]),
                (n("ns3.victim.com"), bh[2]),
            ],
        );
        let _servers = [
            AuthServer::spawn(
                net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(root)],
            ),
            AuthServer::spawn(
                net.bind(com_ip, 53, Region::NORTH_AMERICA).unwrap(),
                vec![Arc::new(com)],
            ),
        ];
        // Black holes: bound (so sends succeed) but never read or reply.
        let _black_holes: Vec<_> = bh
            .iter()
            .map(|&a| net.bind(a, 53, Region::EUROPE).unwrap())
            .collect();

        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(
            ep,
            vec![root_ip],
            ResolverConfig {
                timeout: Duration::from_millis(100),
                retries: 4,
                site_deadline: Some(Duration::from_millis(250)),
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let err = r.resolve_a(&n("victim.com")).unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err, ResolveError::Timeout);
        // Uncapped, three servers x five rounds of up-to-800ms attempts
        // would take > 5s; the budget must cut that to ~the deadline.
        assert!(
            elapsed < Duration::from_millis(1500),
            "black-holed zone took {elapsed:?} despite a 250ms site deadline"
        );
    }

    #[test]
    fn garbling_server_is_counted_and_survived() {
        let net = Network::new(NetConfig::default());
        let (_servers, roots) = faulty_pair_world(&net, webdep_netsim::FaultKind::Garble);
        let ep = net.bind(ip("10.0.0.99"), 3553, Region::EUROPE).unwrap();
        let mut r = IterativeResolver::new(ep, roots, fast_config());
        let addrs = r.resolve_a(&n("example.com")).unwrap();
        assert_eq!(addrs, vec![ip("203.0.113.10")]);
        assert!(
            r.stats().mismatched_ids >= 1,
            "garbled answers should be counted: {:?}",
            r.stats()
        );
    }
}
