//! Applying a [`FaultPlan`] to authoritative DNS answers.
//!
//! Servers call [`apply_dns_fault`] on every ready response. The decision is
//! keyed on `(server ip, qname)` only — see the determinism notes on
//! [`FaultPlan`] — so a retried query meets exactly the same fate and
//! recovery requires asking a different server.

use crate::wire::{encode, Message, Rcode};
use bytes::Bytes;
use std::net::Ipv4Addr;
use webdep_netsim::{FaultKind, FaultPlan};

/// Runs the clean `response` to `query` through `plan` as server `ip`.
///
/// Returns `None` when the fault swallows the reply, otherwise the payload
/// to send — possibly a SERVFAIL, a truncated prefix, or a garbled header.
/// [`FaultKind::Delay`] sleeps on the serving thread before answering.
pub fn apply_dns_fault(
    plan: &FaultPlan,
    ip: Ipv4Addr,
    query: &Message,
    response: &Message,
) -> Option<Bytes> {
    let key = query
        .questions
        .first()
        .map(|q| q.name.as_str())
        .unwrap_or("");
    match plan.query_fault(ip, key.as_bytes()) {
        None => Some(encode(response)),
        Some(FaultKind::Drop) => None,
        Some(FaultKind::ServFail) => {
            let mut r = Message::response_to(query);
            r.rcode = Rcode::ServFail;
            Some(encode(&r))
        }
        Some(FaultKind::Truncate) => {
            // Half a message never survives the record parser.
            let full = encode(response);
            Some(Bytes::from(full[..full.len() / 2].to_vec()))
        }
        Some(FaultKind::Garble) => {
            // Flip the transaction id: the reply decodes cleanly but matches
            // no outstanding query, like a stale or spoofed datagram.
            let mut v = encode(response).to_vec();
            v[0] ^= 0xFF;
            v[1] ^= 0xFF;
            Some(Bytes::from(v))
        }
        Some(FaultKind::Delay) => {
            std::thread::sleep(plan.delay);
            Some(encode(response))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DomainName;
    use crate::wire::{decode, RecordType};

    fn msgs() -> (Message, Message) {
        let q = Message::query(9, DomainName::parse("a.example").unwrap(), RecordType::A);
        let r = Message::response_to(&q);
        (q, r)
    }

    fn plan_with(kind: FaultKind) -> FaultPlan {
        FaultPlan::flaky(1, 1.0, 1.0, vec![kind])
    }

    #[test]
    fn inactive_plan_passes_through() {
        let (q, r) = msgs();
        let out = apply_dns_fault(&FaultPlan::none(), "1.2.3.4".parse().unwrap(), &q, &r);
        assert_eq!(out, Some(encode(&r)));
    }

    #[test]
    fn drop_swallows_the_reply() {
        let (q, r) = msgs();
        let out = apply_dns_fault(&plan_with(FaultKind::Drop), "1.2.3.4".parse().unwrap(), &q, &r);
        assert_eq!(out, None);
    }

    #[test]
    fn servfail_answers_with_failure_rcode() {
        let (q, r) = msgs();
        let out =
            apply_dns_fault(&plan_with(FaultKind::ServFail), "1.2.3.4".parse().unwrap(), &q, &r)
                .unwrap();
        let decoded = decode(&out).unwrap();
        assert_eq!(decoded.rcode, Rcode::ServFail);
        assert_eq!(decoded.id, q.id);
    }

    #[test]
    fn truncated_reply_fails_to_decode() {
        let (q, r) = msgs();
        let out =
            apply_dns_fault(&plan_with(FaultKind::Truncate), "1.2.3.4".parse().unwrap(), &q, &r)
                .unwrap();
        assert!(decode(&out).is_err());
    }

    #[test]
    fn garbled_reply_decodes_with_wrong_id() {
        let (q, r) = msgs();
        let out =
            apply_dns_fault(&plan_with(FaultKind::Garble), "1.2.3.4".parse().unwrap(), &q, &r)
                .unwrap();
        let decoded = decode(&out).unwrap();
        assert_ne!(decoded.id, q.id);
    }
}
