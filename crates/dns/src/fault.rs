//! Applying a [`FaultPlan`] to authoritative DNS answers.
//!
//! Servers call [`apply_dns_fault`] on every ready response. The decision is
//! keyed on `(server ip, qname)` only — see the determinism notes on
//! [`FaultPlan`] — so a retried query meets exactly the same fate and
//! recovery requires asking a different server.

use crate::wire::{encode, Message, Rcode};
use bytes::Bytes;
use std::net::Ipv4Addr;
use webdep_netsim::{FaultKind, FaultPlan, FaultedReply};

/// Runs the clean `response` to `query` through `plan` as server `ip`.
///
/// The returned [`FaultedReply`] carries the payload to send (`None` when
/// the fault swallows the reply) — possibly a SERVFAIL, a truncated
/// prefix, or a garbled header — and, for [`FaultKind::Delay`], how long
/// delivery must wait. The delay is never slept here: the serving context
/// schedules it so one slow answer cannot head-of-line-block a server's
/// other clients.
pub fn apply_dns_fault(
    plan: &FaultPlan,
    ip: Ipv4Addr,
    query: &Message,
    response: &Message,
) -> FaultedReply {
    let key = query
        .questions
        .first()
        .map(|q| q.name.as_str())
        .unwrap_or("");
    match plan.query_fault(ip, key.as_bytes()) {
        None => FaultedReply::clean(encode(response)),
        Some(FaultKind::Drop) => FaultedReply::swallowed(),
        Some(FaultKind::ServFail) => {
            let mut r = Message::response_to(query);
            r.rcode = Rcode::ServFail;
            FaultedReply::clean(encode(&r))
        }
        Some(FaultKind::Truncate) => {
            // Half a message never survives the record parser.
            let full = encode(response);
            FaultedReply::clean(Bytes::from(full[..full.len() / 2].to_vec()))
        }
        Some(FaultKind::Garble) => {
            // Flip the transaction id: the reply decodes cleanly but matches
            // no outstanding query, like a stale or spoofed datagram.
            let mut v = encode(response).to_vec();
            v[0] ^= 0xFF;
            v[1] ^= 0xFF;
            FaultedReply::clean(Bytes::from(v))
        }
        Some(FaultKind::Delay) => FaultedReply {
            payload: Some(encode(response)),
            delay: Some(plan.delay),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DomainName;
    use crate::wire::{decode, RecordType};

    fn msgs() -> (Message, Message) {
        let q = Message::query(9, DomainName::parse("a.example").unwrap(), RecordType::A);
        let r = Message::response_to(&q);
        (q, r)
    }

    fn plan_with(kind: FaultKind) -> FaultPlan {
        FaultPlan::flaky(1, 1.0, 1.0, vec![kind])
    }

    #[test]
    fn inactive_plan_passes_through() {
        let (q, r) = msgs();
        let out = apply_dns_fault(&FaultPlan::none(), "1.2.3.4".parse().unwrap(), &q, &r);
        assert_eq!(out, webdep_netsim::FaultedReply::clean(encode(&r)));
    }

    #[test]
    fn drop_swallows_the_reply() {
        let (q, r) = msgs();
        let out = apply_dns_fault(
            &plan_with(FaultKind::Drop),
            "1.2.3.4".parse().unwrap(),
            &q,
            &r,
        );
        assert_eq!(out, webdep_netsim::FaultedReply::swallowed());
    }

    #[test]
    fn servfail_answers_with_failure_rcode() {
        let (q, r) = msgs();
        let out = apply_dns_fault(
            &plan_with(FaultKind::ServFail),
            "1.2.3.4".parse().unwrap(),
            &q,
            &r,
        )
        .payload
        .unwrap();
        let decoded = decode(&out).unwrap();
        assert_eq!(decoded.rcode, Rcode::ServFail);
        assert_eq!(decoded.id, q.id);
    }

    #[test]
    fn truncated_reply_fails_to_decode() {
        let (q, r) = msgs();
        let out = apply_dns_fault(
            &plan_with(FaultKind::Truncate),
            "1.2.3.4".parse().unwrap(),
            &q,
            &r,
        )
        .payload
        .unwrap();
        assert!(decode(&out).is_err());
    }

    #[test]
    fn garbled_reply_decodes_with_wrong_id() {
        let (q, r) = msgs();
        let out = apply_dns_fault(
            &plan_with(FaultKind::Garble),
            "1.2.3.4".parse().unwrap(),
            &q,
            &r,
        )
        .payload
        .unwrap();
        let decoded = decode(&out).unwrap();
        assert_ne!(decoded.id, q.id);
    }

    #[test]
    fn delay_returns_the_wait_instead_of_sleeping() {
        let (q, r) = msgs();
        let plan = plan_with(FaultKind::Delay);
        let start = std::time::Instant::now();
        let out = apply_dns_fault(&plan, "1.2.3.4".parse().unwrap(), &q, &r);
        assert!(start.elapsed() < plan.delay, "must not sleep inline");
        assert_eq!(out.delay, Some(plan.delay));
        assert_eq!(out.payload, Some(encode(&r)));
    }
}
