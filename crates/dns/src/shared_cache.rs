//! Process-wide DNS cache shared by every resolver in a measurement run.
//!
//! The pipeline spawns one [`crate::IterativeResolver`] per worker, each
//! with a private delegation/answer cache. That means every worker re-walks
//! the root and TLD tier on its own: with `w` workers the delegation tier
//! sees roughly `w`× the wire queries a single resolver would send. The
//! [`SharedDnsCache`] sits *under* the per-resolver caches: lookups check
//! the private cache first, then this shared tier (promoting hits into the
//! private cache), and only then go to the wire. Writes go through to both.
//!
//! The cache is lock-striped: keys are spread over [`NUM_SHARDS`]
//! independent `RwLock`-protected maps so concurrent workers rarely contend
//! on the same lock, and readers never block each other at all.

use crate::name::DomainName;
use crate::wire::{RecordData, RecordType};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent lock stripes. A small power of two well above the
/// worker counts the pipeline uses keeps the collision probability low.
pub const NUM_SHARDS: usize = 16;

/// Answers for one name, keyed by record type. Kept as a small association
/// list: a name rarely has more than two cached record types, and nesting
/// by name lets lookups borrow the key instead of building `(name, type)`
/// tuples.
type AnswerRows = Vec<(RecordType, Vec<RecordData>)>;

#[derive(Default)]
struct Shard {
    /// zone apex -> authoritative server addresses.
    zones: RwLock<HashMap<DomainName, Vec<Ipv4Addr>>>,
    /// completed answers by owner name, then record type.
    answers: RwLock<HashMap<DomainName, AnswerRows>>,
}

/// Running hit/miss counters for a [`SharedDnsCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the shared tier.
    pub hits: u64,
    /// Lookups that fell through to the wire.
    pub misses: u64,
}

/// A lock-striped delegation + answer cache shared across resolvers.
///
/// Thread-safe; intended to be wrapped in an `Arc` and handed to each
/// worker's resolver via
/// [`crate::IterativeResolver::with_shared_cache`].
#[derive(Default)]
pub struct SharedDnsCache {
    shards: [Shard; NUM_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

fn shard_index(name: &DomainName) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % NUM_SHARDS
}

impl SharedDnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached authoritative addresses for `zone`, if any.
    pub fn get_zone(&self, zone: &DomainName) -> Option<Vec<Ipv4Addr>> {
        let shard = &self.shards[shard_index(zone)];
        let hit = shard.zones.read().get(zone).cloned();
        self.count(hit.is_some());
        hit
    }

    /// Records the authoritative addresses for `zone`.
    pub fn put_zone(&self, zone: DomainName, addrs: Vec<Ipv4Addr>) {
        let shard = &self.shards[shard_index(&zone)];
        shard.zones.write().insert(zone, addrs);
    }

    /// Cached answer for `name`/`qtype`, if any.
    pub fn get_answer(&self, name: &DomainName, qtype: RecordType) -> Option<Vec<RecordData>> {
        let shard = &self.shards[shard_index(name)];
        let guard = shard.answers.read();
        let hit = guard
            .get(name)
            .and_then(|rows| rows.iter().find(|(t, _)| *t == qtype))
            .map(|(_, data)| data.clone());
        drop(guard);
        self.count(hit.is_some());
        hit
    }

    /// Records a completed answer for `name`/`qtype`.
    pub fn put_answer(&self, name: DomainName, qtype: RecordType, data: Vec<RecordData>) {
        let shard = &self.shards[shard_index(&name)];
        let mut guard = shard.answers.write();
        let rows = guard.entry(name).or_default();
        match rows.iter_mut().find(|(t, _)| *t == qtype) {
            Some(row) => row.1 = data,
            None => rows.push((qtype, data)),
        }
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn zone_roundtrip() {
        let cache = SharedDnsCache::new();
        assert_eq!(cache.get_zone(&n("com")), None);
        cache.put_zone(n("com"), vec![Ipv4Addr::new(192, 5, 6, 30)]);
        assert_eq!(
            cache.get_zone(&n("com")),
            Some(vec![Ipv4Addr::new(192, 5, 6, 30)])
        );
    }

    #[test]
    fn answers_keyed_by_type() {
        let cache = SharedDnsCache::new();
        let name = n("example.com");
        cache.put_answer(
            name.clone(),
            RecordType::A,
            vec![RecordData::A(Ipv4Addr::new(203, 0, 113, 10))],
        );
        cache.put_answer(
            name.clone(),
            RecordType::Ns,
            vec![RecordData::Ns(n("ns1.example.com"))],
        );
        assert_eq!(
            cache.get_answer(&name, RecordType::A),
            Some(vec![RecordData::A(Ipv4Addr::new(203, 0, 113, 10))])
        );
        assert_eq!(
            cache.get_answer(&name, RecordType::Ns),
            Some(vec![RecordData::Ns(n("ns1.example.com"))])
        );
        assert_eq!(cache.get_answer(&name, RecordType::Cname), None);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = SharedDnsCache::new();
        let _ = cache.get_zone(&n("org")); // miss
        cache.put_zone(n("org"), vec![Ipv4Addr::new(199, 19, 56, 1)]);
        let _ = cache.get_zone(&n("org")); // hit
        let _ = cache.get_answer(&n("example.org"), RecordType::A); // miss
        assert_eq!(cache.stats(), SharedCacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let cache = SharedDnsCache::new();
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50u8 {
                        let name = n(&format!("host{}.zone{}.test", i, t));
                        cache.put_answer(
                            name.clone(),
                            RecordType::A,
                            vec![RecordData::A(Ipv4Addr::new(10, t, i, 1))],
                        );
                        assert!(cache.get_answer(&name, RecordType::A).is_some());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 8 * 50);
    }
}
