//! # webdep-dns
//!
//! DNS substrate for the `webdep` measurement pipeline: the stand-in for
//! ZDNS in the paper's methodology (§3.4).
//!
//! Implements an RFC 1035 subset: the binary wire format with name
//! compression ([`wire`]), authoritative zone data with delegations
//! ([`zone`]), a threaded authoritative server ([`server`]), and a stub +
//! iterative resolver with retries, referral chasing, CNAME following, and
//! a positive cache ([`resolver`]) — all over the simulated network from
//! `webdep-netsim`.
//!
//! Record types supported: `A`, `NS`, `CNAME` — exactly what the pipeline
//! needs to map a website to (a) the IP serving its content and (b) the IP
//! of its authoritative nameserver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigzone;
pub mod fault;
pub mod name;
pub mod resolver;
pub mod server;
pub mod shared_cache;
pub mod wire;
pub mod zone;

pub use bigzone::{Delegation, DelegationTable, HostTable};
pub use fault::apply_dns_fault;
pub use name::DomainName;
pub use resolver::{IterativeResolver, ResolveError, ResolverConfig, ResolverStats, StubResolver};
pub use server::AuthServer;
pub use shared_cache::{SharedCacheStats, SharedDnsCache};
pub use wire::{Message, Question, Rcode, Record, RecordData, RecordType};
pub use zone::{Zone, ZoneLookup};

/// The well-known DNS port used throughout the simulation.
pub const DNS_PORT: u16 = 53;
