//! Threaded authoritative DNS server over the simulated network.

use crate::fault::apply_dns_fault;
use crate::wire::{decode, encode, Message, Rcode};
use crate::zone::{Zone, ZoneLookup};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use webdep_netsim::{Endpoint, FaultPlan, FaultedReply, SockAddr};

/// An authoritative server: serves one or more zones from a thread bound to
/// a netsim endpoint. Stops when dropped.
pub struct AuthServer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl AuthServer {
    /// Spawns a server thread answering queries on `endpoint` from `zones`.
    ///
    /// Zones are matched most-specific-first when several could hold the
    /// queried name (e.g. a host serving both a TLD zone and a child zone).
    pub fn spawn(endpoint: Endpoint, zones: Vec<Arc<Zone>>) -> Self {
        Self::spawn_with_faults(endpoint, zones, None)
    }

    /// Like [`AuthServer::spawn`], but runs every answer through a
    /// fault-injection plan (see [`apply_dns_fault`]).
    pub fn spawn_with_faults(
        endpoint: Endpoint,
        zones: Vec<Arc<Zone>>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_loop(endpoint, zones, stop2, faults));
        AuthServer {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and waits for it; returns the number of
    /// responses actually sent (faults that swallow a reply, undecodable
    /// datagrams, and delayed replies still queued at shutdown are not
    /// counted). Called automatically on drop (discarding the count).
    pub fn shutdown(mut self) -> u64 {
        self.begin_stop();
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }

    fn begin_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for AuthServer {
    fn drop(&mut self) {
        self.begin_stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Idle receive tick of the serve loop (also the upper bound on how late a
/// scheduled delayed reply can fire).
const SERVE_TICK: Duration = Duration::from_millis(50);

fn serve_loop(
    endpoint: Endpoint,
    mut zones: Vec<Arc<Zone>>,
    stop: Arc<AtomicBool>,
    faults: Option<Arc<FaultPlan>>,
) -> u64 {
    // Most-specific zone first.
    zones.sort_by_key(|z| std::cmp::Reverse(z.origin().num_labels()));
    let faults = faults.filter(|p| p.is_active());
    let mut served = 0u64;
    // Replies held back by [`webdep_netsim::FaultKind::Delay`] are scheduled
    // here instead of slept on the serving thread: one slow answer must not
    // head-of-line-block the server's other clients.
    let mut delayed: Vec<(Instant, SockAddr, Bytes)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                let (_, dst, payload) = delayed.swap_remove(i);
                served += 1;
                // Best effort: the client may already be gone.
                let _ = endpoint.send(dst, payload);
            } else {
                i += 1;
            }
        }
        let tick = delayed
            .iter()
            .map(|(due, ..)| due.saturating_duration_since(now))
            .min()
            .map_or(SERVE_TICK, |d| d.min(SERVE_TICK));
        let dgram = match endpoint.recv_timeout(tick) {
            Ok(d) => d,
            Err(webdep_netsim::NetError::Timeout) => continue,
            Err(_) => break, // network gone
        };
        let query = match decode(&dgram.payload) {
            Ok(q) => q,
            Err(_) => continue, // undecodable datagram: drop, like real servers
        };
        let response = if !query.is_response && query.questions.len() == 1 {
            answer(&zones, &query)
        } else {
            let mut r = Message::response_to(&query);
            r.rcode = Rcode::FormErr;
            r
        };
        let reply = match &faults {
            Some(plan) => apply_dns_fault(plan, endpoint.addr().ip, &query, &response),
            None => FaultedReply::clean(encode(&response)),
        };
        let Some(payload) = reply.payload else {
            continue; // the fault swallowed the reply
        };
        match reply.delay {
            Some(d) => delayed.push((Instant::now() + d, dgram.src, payload)),
            None => {
                served += 1;
                let _ = endpoint.send(dgram.src, payload);
            }
        }
    }
    served
}

/// Builds the response for a single-question query from the zone list.
pub fn answer(zones: &[Arc<Zone>], query: &Message) -> Message {
    let mut resp = Message::response_to(query);
    let q = &query.questions[0];
    for zone in zones {
        match zone.lookup(&q.name, q.qtype) {
            ZoneLookup::NotInZone => continue,
            ZoneLookup::Answer(records) => {
                resp.authoritative = true;
                resp.answers = records;
                return resp;
            }
            ZoneLookup::Referral {
                ns_records, glue, ..
            } => {
                resp.authoritative = false;
                resp.authorities = ns_records;
                resp.additionals = glue;
                return resp;
            }
            ZoneLookup::NoData => {
                resp.authoritative = true;
                return resp;
            }
            ZoneLookup::NxDomain => {
                resp.authoritative = true;
                resp.rcode = Rcode::NxDomain;
                return resp;
            }
        }
    }
    resp.rcode = Rcode::ServFail; // not authoritative for anything queried
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DomainName;
    use crate::wire::{Message, RecordData, RecordType};
    use bytes::Bytes;
    use std::net::Ipv4Addr;
    use webdep_netsim::{NetConfig, Network, Region, SockAddr};

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn zone() -> Arc<Zone> {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("www.example.com"), Ipv4Addr::new(192, 0, 2, 2));
        Arc::new(z)
    }

    #[test]
    fn serves_queries_over_network() {
        let net = Network::new(NetConfig::default());
        let server_ep = net
            .bind("192.0.2.53".parse().unwrap(), 53, Region::EUROPE)
            .unwrap();
        let server_addr = server_ep.addr();
        let server = AuthServer::spawn(server_ep, vec![zone()]);

        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        let query = Message::query(99, n("www.example.com"), RecordType::A);
        client.send(server_addr, encode(&query)).unwrap();
        let d = client.recv_timeout(Duration::from_secs(2)).unwrap();
        let resp = decode(&d.payload).unwrap();
        assert_eq!(resp.id, 99);
        assert!(resp.is_response && resp.authoritative);
        assert_eq!(
            resp.answers[0].data,
            RecordData::A(Ipv4Addr::new(192, 0, 2, 2))
        );
        assert!(server.shutdown() >= 1);
    }

    #[test]
    fn garbage_is_ignored_and_server_survives() {
        let net = Network::new(NetConfig::default());
        let server_ep = net
            .bind("192.0.2.53".parse().unwrap(), 53, Region::EUROPE)
            .unwrap();
        let server_addr = server_ep.addr();
        let _server = AuthServer::spawn(server_ep, vec![zone()]);

        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        client
            .send(server_addr, Bytes::from_static(b"\x01\x02garbage"))
            .unwrap();
        // A valid query still gets answered afterwards.
        let query = Message::query(7, n("www.example.com"), RecordType::A);
        client.send(server_addr, encode(&query)).unwrap();
        let d = client.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(decode(&d.payload).unwrap().id, 7);
    }

    #[test]
    fn delayed_answer_does_not_block_other_queries() {
        use webdep_netsim::{FaultKind, FaultPlan};
        let server_ip: Ipv4Addr = "192.0.2.53".parse().unwrap();
        let plan = FaultPlan {
            delay: Duration::from_millis(300),
            ..FaultPlan::flaky(21, 1.0, 0.5, vec![FaultKind::Delay])
        };
        // Pick one name the plan delays and one it spares (fault decisions
        // are pure in (ip, qname), so we can probe them up front).
        let mut z = Zone::new(n("example.com"));
        let mut names = Vec::new();
        for i in 0..64 {
            let name = n(&format!("h{i}.example.com"));
            z.add_a(name.clone(), Ipv4Addr::new(192, 0, 2, 2));
            names.push(name);
        }
        let delayed = names
            .iter()
            .find(|nm| {
                plan.query_fault(server_ip, nm.as_str().as_bytes())
                    .is_some()
            })
            .expect("some name is delayed")
            .clone();
        let clean = names
            .iter()
            .find(|nm| {
                plan.query_fault(server_ip, nm.as_str().as_bytes())
                    .is_none()
            })
            .expect("some name is clean")
            .clone();

        let net = Network::new(NetConfig::default());
        let server_ep = net.bind(server_ip, 53, Region::EUROPE).unwrap();
        let server_addr = server_ep.addr();
        let _server =
            AuthServer::spawn_with_faults(server_ep, vec![Arc::new(z)], Some(Arc::new(plan)));

        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        // The delayed query goes first; the clean answer must overtake it.
        client
            .send(
                server_addr,
                encode(&Message::query(1, delayed, RecordType::A)),
            )
            .unwrap();
        client
            .send(
                server_addr,
                encode(&Message::query(2, clean, RecordType::A)),
            )
            .unwrap();
        let first = decode(&client.recv_timeout(Duration::from_secs(2)).unwrap().payload).unwrap();
        assert_eq!(
            first.id, 2,
            "clean answer must not wait behind a delayed one"
        );
        let second = decode(&client.recv_timeout(Duration::from_secs(2)).unwrap().payload).unwrap();
        assert_eq!(second.id, 1, "the delayed answer still arrives");
    }

    #[test]
    fn burst_of_mixed_delays_is_served_in_due_time_order() {
        use std::collections::BTreeSet;
        use webdep_netsim::{FaultKind, FaultPlan};
        // Every name the plan touches is held back by the same delay, so
        // due-time order splits the burst in two: all clean answers first,
        // then the delayed cohort (the due queue's swap_remove may permute
        // answers sharing a due time, so we assert on the cohorts, not on
        // intra-cohort order).
        let server_ip: Ipv4Addr = "192.0.2.53".parse().unwrap();
        let plan = FaultPlan {
            delay: Duration::from_millis(400),
            ..FaultPlan::flaky(17, 1.0, 0.5, vec![FaultKind::Delay])
        };
        let mut z = Zone::new(n("example.com"));
        let mut names = Vec::new();
        for i in 0..24 {
            let name = n(&format!("b{i}.example.com"));
            z.add_a(name.clone(), Ipv4Addr::new(192, 0, 2, 2));
            names.push(name);
        }
        let delayed_ids: BTreeSet<u16> = names
            .iter()
            .enumerate()
            .filter(|(_, nm)| {
                plan.query_fault(server_ip, nm.as_str().as_bytes())
                    .is_some()
            })
            .map(|(i, _)| i as u16)
            .collect();
        let clean_ids: BTreeSet<u16> = (0..names.len() as u16)
            .filter(|i| !delayed_ids.contains(i))
            .collect();
        assert!(
            !delayed_ids.is_empty() && !clean_ids.is_empty(),
            "burst must mix delayed and clean queries (got {} delayed)",
            delayed_ids.len()
        );

        let net = Network::new(NetConfig::default());
        let server_ep = net.bind(server_ip, 53, Region::EUROPE).unwrap();
        let server_addr = server_ep.addr();
        let server =
            AuthServer::spawn_with_faults(server_ep, vec![Arc::new(z)], Some(Arc::new(plan)));

        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        for (i, name) in names.iter().enumerate() {
            client
                .send(
                    server_addr,
                    encode(&Message::query(i as u16, name.clone(), RecordType::A)),
                )
                .unwrap();
        }

        let mut arrival = Vec::new();
        for _ in 0..names.len() {
            let d = client.recv_timeout(Duration::from_secs(3)).unwrap();
            arrival.push(decode(&d.payload).unwrap().id);
        }
        let first: BTreeSet<u16> = arrival[..clean_ids.len()].iter().copied().collect();
        let rest: BTreeSet<u16> = arrival[clean_ids.len()..].iter().copied().collect();
        assert_eq!(
            first, clean_ids,
            "clean answers must all beat the delayed cohort"
        );
        assert_eq!(
            rest, delayed_ids,
            "the delayed cohort arrives after, complete"
        );
        // No more replies in flight, and the served count matches exactly
        // the responses the client actually received.
        assert!(client.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(server.shutdown(), names.len() as u64);
    }

    #[test]
    fn swallowed_replies_are_not_counted_as_served() {
        use webdep_netsim::{FaultKind, FaultPlan};
        let net = Network::new(NetConfig::default());
        let server_ep = net
            .bind("192.0.2.53".parse().unwrap(), 53, Region::EUROPE)
            .unwrap();
        let server_addr = server_ep.addr();
        let plan = FaultPlan::flaky(1, 1.0, 1.0, vec![FaultKind::Drop]);
        let server = AuthServer::spawn_with_faults(server_ep, vec![zone()], Some(Arc::new(plan)));
        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        client
            .send(
                server_addr,
                encode(&Message::query(3, n("www.example.com"), RecordType::A)),
            )
            .unwrap();
        assert!(client.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(server.shutdown(), 0, "swallowed replies are not served");
    }

    #[test]
    fn servfail_outside_all_zones() {
        let q = Message::query(1, n("other.org"), RecordType::A);
        let resp = answer(&[zone()], &q);
        assert_eq!(resp.rcode, Rcode::ServFail);
    }

    #[test]
    fn most_specific_zone_wins() {
        // Host serves both `com` (delegating example.com away) and
        // `example.com` itself; the child zone must answer.
        let mut com = Zone::new(n("com"));
        com.delegate(
            n("example.com"),
            &[n("ns1.example.com")],
            &[(n("ns1.example.com"), Ipv4Addr::new(192, 0, 2, 53))],
        );
        let q = Message::query(1, n("www.example.com"), RecordType::A);
        let mut zones = vec![Arc::new(com), zone()];
        zones.sort_by_key(|z| std::cmp::Reverse(z.origin().num_labels()));
        let resp = answer(&zones, &q);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.answers.is_empty(), "child zone should answer");
    }

    #[test]
    fn response_messages_get_formerr() {
        let fake_resp = {
            let mut m = Message::query(1, n("www.example.com"), RecordType::A);
            m.is_response = true;
            m
        };
        let net = Network::new(NetConfig::default());
        let server_ep = net
            .bind("192.0.2.53".parse().unwrap(), 53, Region::EUROPE)
            .unwrap();
        let server_addr: SockAddr = server_ep.addr();
        let _server = AuthServer::spawn(server_ep, vec![zone()]);
        let client = net
            .bind("10.0.0.1".parse().unwrap(), 4001, Region::EUROPE)
            .unwrap();
        client.send(server_addr, encode(&fake_resp)).unwrap();
        let d = client.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(decode(&d.payload).unwrap().rcode, Rcode::FormErr);
    }
}
