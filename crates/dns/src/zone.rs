//! Authoritative zone data: records, delegations, and lookup semantics.

use crate::name::DomainName;
use crate::wire::{Record, RecordData, RecordType};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Default TTL attached to generated records.
pub const DEFAULT_TTL: u32 = 3600;

/// One authoritative zone: an origin (apex), a record store, and the set of
/// delegated child zones.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: DomainName,
    records: HashMap<(DomainName, RecordType), Vec<RecordData>>,
    delegations: HashSet<DomainName>,
}

/// Outcome of a zone lookup, mirroring what the authoritative server puts on
/// the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Authoritative answer records (possibly via CNAME, included).
    Answer(Vec<Record>),
    /// The name lives in a delegated child zone: NS records plus glue.
    Referral {
        /// The delegated zone apex.
        zone: DomainName,
        /// NS records for the delegation.
        ns_records: Vec<Record>,
        /// Glue A records for the nameservers (when in-zone data exists).
        glue: Vec<Record>,
    },
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in this zone.
    NxDomain,
    /// The queried name is not within this zone at all.
    NotInZone,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: DomainName) -> Self {
        Zone {
            origin,
            records: HashMap::new(),
            delegations: HashSet::new(),
        }
    }

    /// The zone apex.
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// Number of stored record sets.
    pub fn num_rrsets(&self) -> usize {
        self.records.len()
    }

    /// Adds an A record.
    pub fn add_a(&mut self, name: DomainName, ip: Ipv4Addr) {
        self.push(name, RecordData::A(ip));
    }

    /// Adds a CNAME record.
    pub fn add_cname(&mut self, name: DomainName, target: DomainName) {
        self.push(name, RecordData::Cname(target));
    }

    /// Adds an in-zone (apex or intermediate) NS record *without* marking a
    /// delegation — used for the zone's own NS set.
    pub fn add_ns(&mut self, name: DomainName, target: DomainName) {
        self.push(name, RecordData::Ns(target));
    }

    /// Delegates `child` to the given nameservers, with optional glue
    /// addresses `(ns_name, ip)`.
    pub fn delegate(
        &mut self,
        child: DomainName,
        nameservers: &[DomainName],
        glue: &[(DomainName, Ipv4Addr)],
    ) {
        assert!(
            child.is_within(&self.origin) && child != self.origin,
            "delegation target {child} must be a proper child of {}",
            self.origin
        );
        for ns in nameservers {
            self.push(child.clone(), RecordData::Ns(ns.clone()));
        }
        for (ns_name, ip) in glue {
            self.push(ns_name.clone(), RecordData::A(*ip));
        }
        self.delegations.insert(child);
    }

    fn push(&mut self, name: DomainName, data: RecordData) {
        let key = (name, data.record_type());
        let set = self.records.entry(key).or_default();
        if !set.contains(&data) {
            set.push(data);
        }
    }

    fn get(&self, name: &DomainName, rtype: RecordType) -> Option<&Vec<RecordData>> {
        self.records.get(&(name.clone(), rtype))
    }

    fn name_exists(&self, name: &DomainName) -> bool {
        self.records
            .keys()
            .any(|(n, _)| n == name || n.is_within(name))
    }

    /// Finds the closest enclosing delegation of `name`, if any.
    fn covering_delegation(&self, name: &DomainName) -> Option<&DomainName> {
        self.delegations
            .iter()
            .filter(|d| name.is_within(d))
            .max_by_key(|d| d.num_labels())
    }

    /// Resolves `name`/`rtype` within this zone, following in-zone CNAMEs.
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> ZoneLookup {
        if !name.is_within(&self.origin) {
            return ZoneLookup::NotInZone;
        }
        // Delegated below us? Answer with a referral — unless the query is
        // for the delegation's NS set itself, which we do serve.
        if let Some(deleg) = self.covering_delegation(name) {
            let ns_data = self.get(deleg, RecordType::Ns).cloned().unwrap_or_default();
            let ns_records: Vec<Record> = ns_data
                .iter()
                .map(|d| Record {
                    name: deleg.clone(),
                    ttl: DEFAULT_TTL,
                    data: d.clone(),
                })
                .collect();
            let glue = ns_data
                .iter()
                .filter_map(|d| match d {
                    RecordData::Ns(ns_name) => self.get(ns_name, RecordType::A).map(|addrs| {
                        addrs.iter().map(|a| Record {
                            name: ns_name.clone(),
                            ttl: DEFAULT_TTL,
                            data: a.clone(),
                        })
                    }),
                    _ => None,
                })
                .flatten()
                .collect();
            return ZoneLookup::Referral {
                zone: deleg.clone(),
                ns_records,
                glue,
            };
        }
        // Exact data?
        let mut answers: Vec<Record> = Vec::new();
        let mut current = name.clone();
        for _ in 0..8 {
            if let Some(set) = self.get(&current, rtype) {
                answers.extend(set.iter().map(|d| Record {
                    name: current.clone(),
                    ttl: DEFAULT_TTL,
                    data: d.clone(),
                }));
                return ZoneLookup::Answer(answers);
            }
            // CNAME chase (only when the query itself is not for CNAME).
            if rtype != RecordType::Cname {
                if let Some(cnames) = self.get(&current, RecordType::Cname) {
                    let RecordData::Cname(target) = &cnames[0] else {
                        unreachable!("cname set holds cname data")
                    };
                    answers.push(Record {
                        name: current.clone(),
                        ttl: DEFAULT_TTL,
                        data: cnames[0].clone(),
                    });
                    if !target.is_within(&self.origin) {
                        // Out-of-zone target: hand back what we have.
                        return ZoneLookup::Answer(answers);
                    }
                    current = target.clone();
                    continue;
                }
            }
            break;
        }
        if !answers.is_empty() {
            return ZoneLookup::Answer(answers);
        }
        if self.name_exists(name) {
            ZoneLookup::NoData
        } else {
            ZoneLookup::NxDomain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn example_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("example.com"), ip("192.0.2.1"));
        z.add_a(n("www.example.com"), ip("192.0.2.2"));
        z.add_cname(n("blog.example.com"), n("www.example.com"));
        z.add_cname(n("cdn.example.com"), n("edge.provider.net"));
        z.delegate(
            n("sub.example.com"),
            &[n("ns1.sub.example.com")],
            &[(n("ns1.sub.example.com"), ip("192.0.2.53"))],
        );
        z
    }

    #[test]
    fn direct_answer() {
        let z = example_zone();
        let ZoneLookup::Answer(recs) = z.lookup(&n("www.example.com"), RecordType::A) else {
            panic!("expected answer");
        };
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, RecordData::A(ip("192.0.2.2")));
    }

    #[test]
    fn cname_chased_in_zone() {
        let z = example_zone();
        let ZoneLookup::Answer(recs) = z.lookup(&n("blog.example.com"), RecordType::A) else {
            panic!("expected answer");
        };
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].data, RecordData::Cname(n("www.example.com")));
        assert_eq!(recs[1].data, RecordData::A(ip("192.0.2.2")));
    }

    #[test]
    fn cname_out_of_zone_returned_alone() {
        let z = example_zone();
        let ZoneLookup::Answer(recs) = z.lookup(&n("cdn.example.com"), RecordType::A) else {
            panic!("expected answer");
        };
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, RecordData::Cname(n("edge.provider.net")));
    }

    #[test]
    fn referral_with_glue() {
        let z = example_zone();
        let ZoneLookup::Referral {
            zone,
            ns_records,
            glue,
        } = z.lookup(&n("deep.sub.example.com"), RecordType::A)
        else {
            panic!("expected referral");
        };
        assert_eq!(zone, n("sub.example.com"));
        assert_eq!(ns_records.len(), 1);
        assert_eq!(glue.len(), 1);
        assert_eq!(glue[0].data, RecordData::A(ip("192.0.2.53")));
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&n("missing.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
        // www exists but has no NS records.
        assert_eq!(
            z.lookup(&n("www.example.com"), RecordType::Ns),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn out_of_zone() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&n("other.org"), RecordType::A),
            ZoneLookup::NotInZone
        );
    }

    #[test]
    fn cname_query_not_chased() {
        let z = example_zone();
        let ZoneLookup::Answer(recs) = z.lookup(&n("blog.example.com"), RecordType::Cname) else {
            panic!("expected answer");
        };
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, RecordData::Cname(n("www.example.com")));
    }

    #[test]
    fn duplicate_records_deduped() {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("example.com"), ip("1.1.1.1"));
        z.add_a(n("example.com"), ip("1.1.1.1"));
        let ZoneLookup::Answer(recs) = z.lookup(&n("example.com"), RecordType::A) else {
            panic!()
        };
        assert_eq!(recs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "proper child")]
    fn delegation_must_be_child() {
        let mut z = Zone::new(n("example.com"));
        z.delegate(n("other.org"), &[n("ns.other.org")], &[]);
    }
}
