//! Domain names: validated label sequences.
//!
//! Stored as one lowercase dot-separated `String` rather than a
//! `Vec<String>` of labels: names are cloned and hashed constantly on the
//! resolver and wire-codec hot paths, and the compact form makes a clone
//! one allocation and a hash one pass.

use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label, per RFC 1035.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum total name length (presentation form), per RFC 1035.
pub const MAX_NAME_LEN: usize = 253;

/// A fully qualified domain name, stored lowercase without the trailing
/// root dot. The root itself is the empty string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    name: String,
}

/// Errors from parsing a domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than [`MAX_LABEL_LEN`].
    BadLabel(String),
    /// The full name exceeds [`MAX_NAME_LEN`] characters.
    TooLong(usize),
    /// A label contains a character outside `[a-z0-9_-]`.
    BadCharacter(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "bad label {l:?}"),
            NameError::TooLong(n) => write!(f, "name too long ({n} chars)"),
            NameError::BadCharacter(c) => write!(f, "bad character {c:?}"),
        }
    }
}

impl std::error::Error for NameError {}

impl DomainName {
    /// The DNS root (empty name).
    pub fn root() -> Self {
        DomainName {
            name: String::new(),
        }
    }

    /// Parses a name; accepts an optional trailing dot; lowercases.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Self::root());
        }
        if s.len() > MAX_NAME_LEN {
            return Err(NameError::TooLong(s.len()));
        }
        for raw in s.split('.') {
            if raw.is_empty() || raw.len() > MAX_LABEL_LEN {
                return Err(NameError::BadLabel(raw.to_string()));
            }
            for c in raw.chars() {
                if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                    return Err(NameError::BadCharacter(c));
                }
            }
        }
        Ok(DomainName {
            name: s.to_ascii_lowercase(),
        })
    }

    /// Builds a name from pre-validated labels (panics on invalid input;
    /// used by generators that construct names programmatically).
    pub fn from_labels<I: IntoIterator<Item = S>, S: Into<String>>(labels: I) -> Self {
        let joined = labels
            .into_iter()
            .map(Into::into)
            .collect::<Vec<String>>()
            .join(".");
        Self::parse(&joined).unwrap_or_else(|e| panic!("invalid labels {joined:?}: {e}"))
    }

    /// The presentation form without the trailing dot; empty for the root.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.name.split('.').filter(|l| !l.is_empty())
    }

    /// Number of labels; 0 for the root.
    pub fn num_labels(&self) -> usize {
        if self.name.is_empty() {
            0
        } else {
            self.name.bytes().filter(|&b| b == b'.').count() + 1
        }
    }

    /// True for the DNS root.
    pub fn is_root(&self) -> bool {
        self.name.is_empty()
    }

    /// The name's parent (one label removed from the left); `None` at root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.name.is_empty() {
            None
        } else {
            Some(match self.name.split_once('.') {
                Some((_, rest)) => DomainName {
                    name: rest.to_string(),
                },
                None => Self::root(),
            })
        }
    }

    /// Whether `self` equals `other` or is underneath it
    /// (`www.example.com` is within `example.com` and within the root).
    pub fn is_within(&self, other: &DomainName) -> bool {
        if other.name.is_empty() {
            return true;
        }
        if self.name.len() == other.name.len() {
            return self.name == other.name;
        }
        // Strictly longer: the suffix must start at a label boundary.
        self.name.len() > other.name.len()
            && self.name.ends_with(other.name.as_str())
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Prepends a label, producing a child name.
    pub fn child(&self, label: &str) -> Result<DomainName, NameError> {
        let mut s = String::with_capacity(label.len() + 1 + self.name.len());
        s.push_str(label);
        if !self.name.is_empty() {
            s.push('.');
            s.push_str(&self.name);
        }
        Self::parse(&s)
    }

    /// The top-level domain label, if any (`com` for `www.example.com`).
    pub fn tld(&self) -> Option<&str> {
        if self.name.is_empty() {
            None
        } else {
            self.name.rsplit('.').next()
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, ".")
        } else {
            write!(f, "{}", self.name)
        }
    }
}

impl FromStr for DomainName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DomainName::parse("WWW.Example.COM.").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.num_labels(), 3);
        assert_eq!(n.tld(), Some("com"));
    }

    #[test]
    fn root_name() {
        let r = DomainName::parse(".").unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(r, DomainName::root());
        assert_eq!(r.parent(), None);
        assert_eq!(r.tld(), None);
        assert_eq!(r.labels().count(), 0);
    }

    #[test]
    fn hierarchy() {
        let site = DomainName::parse("www.example.com").unwrap();
        let zone = DomainName::parse("example.com").unwrap();
        let tld = DomainName::parse("com").unwrap();
        assert!(site.is_within(&zone));
        assert!(site.is_within(&tld));
        assert!(site.is_within(&DomainName::root()));
        assert!(site.is_within(&site));
        assert!(!zone.is_within(&site));
        assert!(!DomainName::parse("example.org").unwrap().is_within(&tld));
        assert_eq!(site.parent(), Some(zone.clone()));
        assert_eq!(zone.child("www").unwrap(), site);
    }

    #[test]
    fn rejects_bad_names() {
        assert!(DomainName::parse("exa mple.com").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse(&"x".repeat(64)).is_err());
        let long = format!("{}.com", "a.".repeat(130));
        assert!(DomainName::parse(&long).is_err());
    }

    #[test]
    fn suffix_alignment_not_fooled() {
        // "ample.com" is not a parent of "example.com".
        let a = DomainName::parse("example.com").unwrap();
        let b = DomainName::parse("ample.com").unwrap();
        assert!(!a.is_within(&b));
    }

    #[test]
    fn labels_iterate_left_to_right() {
        let n = DomainName::parse("a.b.c").unwrap();
        assert_eq!(n.labels().collect::<Vec<_>>(), ["a", "b", "c"]);
    }

    #[test]
    fn from_labels_builder() {
        let n = DomainName::from_labels(["ns1", "provider", "net"]);
        assert_eq!(n.to_string(), "ns1.provider.net");
    }
}
