//! DNS wire format: an RFC 1035 subset with name compression.
//!
//! Messages are the standard header / question / answer / authority /
//! additional layout. Encoding compresses repeated names with pointers;
//! decoding follows pointers with a hop limit to reject loops.

use crate::name::DomainName;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Record types supported by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name (alias).
    Cname,
}

impl RecordType {
    /// RFC 1035 TYPE value.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
        }
    }

    /// Parses a TYPE value.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(RecordType::A),
            2 => Some(RecordType::Ns),
            5 => Some(RecordType::Cname),
            _ => None,
        }
    }
}

/// Response codes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
}

impl Rcode {
    /// Wire value (low 4 bits of the flags word).
    pub fn code(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
        }
    }

    /// Parses a wire value (unknown codes map to `ServFail`).
    pub fn from_code(code: u16) -> Self {
        match code & 0xF {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            3 => Rcode::NxDomain,
            _ => Rcode::ServFail,
        }
    }
}

/// Record data for the supported types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A nameserver host name.
    Ns(DomainName),
    /// A canonical name.
    Cname(DomainName),
}

impl RecordData {
    /// The record type of this data.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub data: RecordData,
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub qtype: RecordType,
}

/// A DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id, echoed by responders.
    pub id: u16,
    /// True for responses (QR bit).
    pub is_response: bool,
    /// True when the responder is authoritative for the name (AA bit).
    pub authoritative: bool,
    /// Recursion desired (RD bit) — carried but the simulation's
    /// authoritative servers never recurse.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section (the simulation always uses exactly one).
    pub questions: Vec<Question>,
    /// Answer records.
    pub answers: Vec<Record>,
    /// Authority (referral) records.
    pub authorities: Vec<Record>,
    /// Additional (glue) records.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a query for `name`/`qtype` with the given transaction id.
    pub fn query(id: u16, name: DomainName, qtype: RecordType) -> Self {
        Message {
            id,
            is_response: false,
            authoritative: false,
            recursion_desired: false,
            rcode: Rcode::NoError,
            questions: vec![Question { name, qtype }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds an empty response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &Message) -> Self {
        Message {
            id: query.id,
            is_response: true,
            authoritative: false,
            recursion_desired: query.recursion_desired,
            rcode: Rcode::NoError,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }
}

/// Errors from decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A compression pointer loop or excessive indirection.
    PointerLoop,
    /// An unsupported record type appeared where one must be understood.
    UnsupportedType(u16),
    /// A label failed validation.
    BadName,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::UnsupportedType(t) => write!(f, "unsupported record type {t}"),
            WireError::BadName => write!(f, "malformed name"),
        }
    }
}

impl std::error::Error for WireError {}

// Flag word bits.
const FLAG_QR: u16 = 0x8000;
const FLAG_AA: u16 = 0x0400;
const FLAG_RD: u16 = 0x0100;
const CLASS_IN: u16 = 1;

/// Encodes a message to wire bytes (with name compression).
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(512);
    // Suffixes are borrowed straight out of the message's names, so
    // compression bookkeeping allocates nothing.
    let mut offsets: HashMap<&str, u16> = HashMap::new();

    buf.put_u16(msg.id);
    let mut flags = 0u16;
    if msg.is_response {
        flags |= FLAG_QR;
    }
    if msg.authoritative {
        flags |= FLAG_AA;
    }
    if msg.recursion_desired {
        flags |= FLAG_RD;
    }
    flags |= msg.rcode.code();
    buf.put_u16(flags);
    buf.put_u16(msg.questions.len() as u16);
    buf.put_u16(msg.answers.len() as u16);
    buf.put_u16(msg.authorities.len() as u16);
    buf.put_u16(msg.additionals.len() as u16);

    for q in &msg.questions {
        encode_name(&mut buf, &q.name, &mut offsets);
        buf.put_u16(q.qtype.code());
        buf.put_u16(CLASS_IN);
    }
    for section in [&msg.answers, &msg.authorities, &msg.additionals] {
        for r in section {
            encode_record(&mut buf, r, &mut offsets);
        }
    }
    buf.freeze()
}

fn encode_record<'a>(buf: &mut BytesMut, r: &'a Record, offsets: &mut HashMap<&'a str, u16>) {
    encode_name(buf, &r.name, offsets);
    buf.put_u16(r.data.record_type().code());
    buf.put_u16(CLASS_IN);
    buf.put_u32(r.ttl);
    match &r.data {
        RecordData::A(ip) => {
            buf.put_u16(4);
            buf.put_slice(&ip.octets());
        }
        RecordData::Ns(n) | RecordData::Cname(n) => {
            // Two-pass: rdata length depends on compression, so reserve the
            // length slot, write the name, then patch.
            let len_pos = buf.len();
            buf.put_u16(0);
            let start = buf.len();
            encode_name(buf, n, offsets);
            let rdlen = (buf.len() - start) as u16;
            buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
    }
}

/// Encodes `name`, emitting a compression pointer at the first suffix that
/// was already written.
fn encode_name<'a>(buf: &mut BytesMut, name: &'a DomainName, offsets: &mut HashMap<&'a str, u16>) {
    let mut rest = name.as_str();
    loop {
        if rest.is_empty() {
            buf.put_u8(0);
            return;
        }
        if let Some(&off) = offsets.get(rest) {
            buf.put_u16(0xC000 | off);
            return;
        }
        // Record this suffix's offset if it is still pointer-addressable.
        if buf.len() < 0x3FFF {
            offsets.insert(rest, buf.len() as u16);
        }
        let (label, tail) = rest.split_once('.').unwrap_or((rest, ""));
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
        rest = tail;
    }
}

/// Decodes a wire message.
pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let id = cur.u16()?;
    let flags = cur.u16()?;
    let qd = cur.u16()? as usize;
    let an = cur.u16()? as usize;
    let ns = cur.u16()? as usize;
    let ar = cur.u16()? as usize;

    let mut questions = Vec::with_capacity(qd);
    for _ in 0..qd {
        let name = decode_name(&mut cur)?;
        let qtype_raw = cur.u16()?;
        let qtype =
            RecordType::from_code(qtype_raw).ok_or(WireError::UnsupportedType(qtype_raw))?;
        let _class = cur.u16()?;
        questions.push(Question { name, qtype });
    }
    let mut sections = [Vec::with_capacity(an), Vec::new(), Vec::new()];
    for (idx, count) in [(0, an), (1, ns), (2, ar)] {
        for _ in 0..count {
            if let Some(r) = decode_record(&mut cur)? {
                sections[idx].push(r);
            }
        }
    }
    let [answers, authorities, additionals] = sections;
    Ok(Message {
        id,
        is_response: flags & FLAG_QR != 0,
        authoritative: flags & FLAG_AA != 0,
        recursion_desired: flags & FLAG_RD != 0,
        rcode: Rcode::from_code(flags),
        questions,
        answers,
        authorities,
        additionals,
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let hi = self.u8()? as u16;
        let lo = self.u8()? as u16;
        Ok(hi << 8 | lo)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let hi = self.u16()? as u32;
        let lo = self.u16()? as u32;
        Ok(hi << 16 | lo)
    }

    fn slice(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

/// Decodes a possibly compressed name starting at the cursor.
fn decode_name(cur: &mut Cursor<'_>) -> Result<DomainName, WireError> {
    let mut name = String::new();
    let mut pos = cur.pos;
    let mut jumped = false;
    let mut hops = 0;
    loop {
        let len = *cur.bytes.get(pos).ok_or(WireError::Truncated)? as usize;
        if len & 0xC0 == 0xC0 {
            // Compression pointer.
            let lo = *cur.bytes.get(pos + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len & 0x3F) << 8) | lo;
            if !jumped {
                cur.pos = pos + 2;
                jumped = true;
            }
            hops += 1;
            if hops > 32 {
                return Err(WireError::PointerLoop);
            }
            if target >= pos {
                // Forward pointers are invalid and could loop.
                return Err(WireError::PointerLoop);
            }
            pos = target;
            continue;
        }
        if len == 0 {
            if !jumped {
                cur.pos = pos + 1;
            }
            break;
        }
        let start = pos + 1;
        let end = start + len;
        let raw = cur.bytes.get(start..end).ok_or(WireError::Truncated)?;
        let label = std::str::from_utf8(raw).map_err(|_| WireError::BadName)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(label);
        pos = end;
    }
    if name.is_empty() {
        return Ok(DomainName::root());
    }
    DomainName::parse(&name).map_err(|_| WireError::BadName)
}

/// Decodes one record; returns `None` for unknown types (skipped), matching
/// how a measurement client tolerates records it does not understand.
fn decode_record(cur: &mut Cursor<'_>) -> Result<Option<Record>, WireError> {
    let name = decode_name(cur)?;
    let rtype = cur.u16()?;
    let _class = cur.u16()?;
    let ttl = cur.u32()?;
    let rdlen = cur.u16()? as usize;
    match RecordType::from_code(rtype) {
        Some(RecordType::A) => {
            let raw = cur.slice(rdlen)?;
            if raw.len() != 4 {
                return Err(WireError::Truncated);
            }
            let ip = Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3]);
            Ok(Some(Record {
                name,
                ttl,
                data: RecordData::A(ip),
            }))
        }
        Some(RecordType::Ns) | Some(RecordType::Cname) => {
            let end = cur.pos + rdlen;
            let target = decode_name(cur)?;
            if cur.pos > end {
                return Err(WireError::Truncated);
            }
            cur.pos = end;
            let data = if rtype == RecordType::Ns.code() {
                RecordData::Ns(target)
            } else {
                RecordData::Cname(target)
            };
            Ok(Some(Record { name, ttl, data }))
        }
        None => {
            cur.slice(rdlen)?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn roundtrip(msg: &Message) -> Message {
        decode(&encode(msg)).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, name("www.example.com"), RecordType::A);
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn response_with_all_sections() {
        let q = Message::query(7, name("example.com"), RecordType::A);
        let mut r = Message::response_to(&q);
        r.authoritative = true;
        r.answers.push(Record {
            name: name("example.com"),
            ttl: 300,
            data: RecordData::A("192.0.2.1".parse().unwrap()),
        });
        r.authorities.push(Record {
            name: name("example.com"),
            ttl: 3600,
            data: RecordData::Ns(name("ns1.example.com")),
        });
        r.additionals.push(Record {
            name: name("ns1.example.com"),
            ttl: 3600,
            data: RecordData::A("192.0.2.53".parse().unwrap()),
        });
        let decoded = roundtrip(&r);
        assert_eq!(decoded, r);
        assert!(decoded.authoritative);
        assert!(decoded.is_response);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, name("a.example.com"), RecordType::A);
        let mut r = Message::response_to(&q);
        for i in 0..5 {
            r.answers.push(Record {
                name: name("a.example.com"),
                ttl: 60,
                data: RecordData::A(Ipv4Addr::new(10, 0, 0, i)),
            });
        }
        let encoded = encode(&r);
        // Without compression each repeat costs 15 name bytes; with pointers
        // each subsequent record's name costs 2.
        assert!(encoded.len() < 120, "len = {}", encoded.len());
        assert_eq!(decode(&encoded).unwrap(), r);
    }

    #[test]
    fn cname_rdata_roundtrip() {
        let q = Message::query(2, name("alias.example.com"), RecordType::A);
        let mut r = Message::response_to(&q);
        r.answers.push(Record {
            name: name("alias.example.com"),
            ttl: 60,
            data: RecordData::Cname(name("canonical.example.com")),
        });
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn root_name_roundtrip() {
        let q = Message::query(3, DomainName::root(), RecordType::Ns);
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn rcode_roundtrip() {
        let q = Message::query(4, name("missing.example"), RecordType::A);
        let mut r = Message::response_to(&q);
        r.rcode = Rcode::NxDomain;
        assert_eq!(roundtrip(&r).rcode, Rcode::NxDomain);
    }

    #[test]
    fn truncated_input_rejected() {
        let q = Message::query(5, name("example.com"), RecordType::A);
        let enc = encode(&q);
        for cut in [0, 5, 11, enc.len() - 1] {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn pointer_loop_rejected() {
        // Hand-crafted message whose question name points at itself.
        let mut raw = vec![
            0x00, 0x01, // id
            0x00, 0x00, // flags
            0x00, 0x01, // qdcount
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // other counts
        ];
        raw.extend_from_slice(&[0xC0, 0x0C]); // pointer to offset 12 (itself)
        raw.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // qtype/qclass
        assert!(matches!(decode(&raw), Err(WireError::PointerLoop)));
    }

    #[test]
    fn unknown_record_types_are_skipped() {
        // Build a response with a TXT-ish record (type 16) by hand after a
        // valid A record; the TXT must be skipped, the A kept.
        let q = Message::query(9, name("x.y"), RecordType::A);
        let mut r = Message::response_to(&q);
        r.answers.push(Record {
            name: name("x.y"),
            ttl: 1,
            data: RecordData::A("1.2.3.4".parse().unwrap()),
        });
        let mut enc = BytesMut::from(&encode(&r)[..]);
        // Patch ancount to 2 and append a type-16 record.
        enc[6..8].copy_from_slice(&2u16.to_be_bytes());
        enc.put_u8(0); // root owner name
        enc.put_u16(16); // TXT
        enc.put_u16(1); // IN
        enc.put_u32(0); // ttl
        enc.put_u16(3); // rdlength
        enc.put_slice(b"abc");
        let decoded = decode(&enc).unwrap();
        assert_eq!(decoded.answers.len(), 1);
        assert_eq!(
            decoded.answers[0].data,
            RecordData::A("1.2.3.4".parse().unwrap())
        );
    }
}
