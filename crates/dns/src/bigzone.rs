//! High-volume authoritative data structures.
//!
//! [`crate::zone::Zone`] favors generality (arbitrary CNAME chains, nested
//! delegations) at `O(records)` cost on some paths, which is fine for unit
//! tests and small zones but not for a synthetic `.com` holding hundreds of
//! thousands of delegations. This module provides two `O(1)`-per-query
//! responders used by the world deployment:
//!
//! * [`DelegationTable`] — a TLD registry: every query for `x.<tld>` (or
//!   deeper) is answered with a referral to the registered domain's
//!   nameservers plus glue.
//! * [`HostTable`] — a hosting provider's authoritative data: A records for
//!   sites and nameserver hosts, NS sets per domain.
//!
//! Both produce wire [`Message`]s directly so rack servers can serve
//! thousands of zones from one thread.

use crate::name::DomainName;
use crate::wire::{Message, Rcode, Record, RecordData, RecordType};
use crate::zone::DEFAULT_TTL;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A registry delegation: nameserver names plus glue addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delegation {
    /// Nameserver host names.
    pub ns: Vec<DomainName>,
    /// Glue: `(ns_name, address)` pairs.
    pub glue: Vec<(DomainName, Ipv4Addr)>,
}

/// A TLD registry with `O(1)` referral lookup.
#[derive(Debug, Clone)]
pub struct DelegationTable {
    origin: DomainName,
    children: HashMap<DomainName, Delegation>,
}

impl DelegationTable {
    /// Creates a registry for `origin` (e.g. `com`).
    pub fn new(origin: DomainName) -> Self {
        DelegationTable {
            origin,
            children: HashMap::new(),
        }
    }

    /// The registry's zone apex.
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// Registers `domain` (a direct child of the origin) with a delegation.
    pub fn register(&mut self, domain: DomainName, delegation: Delegation) {
        debug_assert!(
            domain.is_within(&self.origin) && domain.num_labels() == self.origin.num_labels() + 1,
            "{domain} must be a direct child of {}",
            self.origin
        );
        self.children.insert(domain, delegation);
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when no domain is registered.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Answers a query: a referral for names at or below a registered
    /// domain, NXDOMAIN for unregistered names in-zone, ServFail otherwise.
    pub fn respond(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        let Some(q) = query.questions.first() else {
            resp.rcode = Rcode::FormErr;
            return resp;
        };
        if !q.name.is_within(&self.origin) {
            resp.rcode = Rcode::ServFail;
            return resp;
        }
        if q.name == self.origin {
            // Queries for the TLD apex itself: NoData (we keep apex NS out
            // of scope; the root's glue is what matters).
            resp.authoritative = true;
            return resp;
        }
        // The registered domain is the child truncated to origin + 1 labels.
        let extra = q.name.num_labels() - self.origin.num_labels();
        let mut registered = q.name.clone();
        for _ in 1..extra {
            registered = registered.parent().expect("has labels");
        }
        match self.children.get(&registered) {
            Some(d) => {
                resp.authorities =
                    d.ns.iter()
                        .map(|ns| Record {
                            name: registered.clone(),
                            ttl: DEFAULT_TTL,
                            data: RecordData::Ns(ns.clone()),
                        })
                        .collect();
                resp.additionals = d
                    .glue
                    .iter()
                    .map(|(name, ip)| Record {
                        name: name.clone(),
                        ttl: DEFAULT_TTL,
                        data: RecordData::A(*ip),
                    })
                    .collect();
                resp
            }
            None => {
                resp.authoritative = true;
                resp.rcode = Rcode::NxDomain;
                resp
            }
        }
    }
}

/// A hosting provider's authoritative answers with `O(1)` lookup.
#[derive(Debug, Clone, Default)]
pub struct HostTable {
    a: HashMap<DomainName, Vec<Ipv4Addr>>,
    ns: HashMap<DomainName, Vec<DomainName>>,
}

impl HostTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an A record.
    pub fn add_a(&mut self, name: DomainName, ip: Ipv4Addr) {
        let set = self.a.entry(name).or_default();
        if !set.contains(&ip) {
            set.push(ip);
        }
    }

    /// Sets the NS set for a domain.
    pub fn set_ns(&mut self, name: DomainName, ns: Vec<DomainName>) {
        self.ns.insert(name, ns);
    }

    /// Number of names with A records.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when no A record is stored.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Registered A addresses for `name` (exact match).
    pub fn lookup_a(&self, name: &DomainName) -> Option<&[Ipv4Addr]> {
        self.a.get(name).map(Vec::as_slice)
    }

    /// Answers a query authoritatively: A and NS supported, everything the
    /// table does not know is NXDOMAIN.
    pub fn respond(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        resp.authoritative = true;
        let Some(q) = query.questions.first() else {
            resp.rcode = Rcode::FormErr;
            return resp;
        };
        match q.qtype {
            RecordType::A => {
                if let Some(addrs) = self.a.get(&q.name) {
                    resp.answers = addrs
                        .iter()
                        .map(|&ip| Record {
                            name: q.name.clone(),
                            ttl: DEFAULT_TTL,
                            data: RecordData::A(ip),
                        })
                        .collect();
                    return resp;
                }
            }
            RecordType::Ns => {
                if let Some(ns) = self.ns.get(&q.name) {
                    resp.answers = ns
                        .iter()
                        .map(|n| Record {
                            name: q.name.clone(),
                            ttl: DEFAULT_TTL,
                            data: RecordData::Ns(n.clone()),
                        })
                        .collect();
                    return resp;
                }
            }
            RecordType::Cname => {}
        }
        if self.a.contains_key(&q.name) || self.ns.contains_key(&q.name) {
            // NoData: exists with another type.
            return resp;
        }
        resp.rcode = Rcode::NxDomain;
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn registry() -> DelegationTable {
        let mut t = DelegationTable::new(n("com"));
        t.register(
            n("example.com"),
            Delegation {
                ns: vec![n("ns1.prov.net")],
                glue: vec![(n("ns1.prov.net"), ip("203.0.113.53"))],
            },
        );
        t
    }

    #[test]
    fn referral_for_registered_domain() {
        let t = registry();
        let q = Message::query(1, n("example.com"), RecordType::A);
        let r = t.respond(&q);
        assert_eq!(r.rcode, Rcode::NoError);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.additionals.len(), 1);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn deep_names_refer_to_registered_parent() {
        let t = registry();
        let q = Message::query(1, n("a.b.example.com"), RecordType::A);
        let r = t.respond(&q);
        assert_eq!(r.authorities[0].name, n("example.com"));
    }

    #[test]
    fn unregistered_is_nxdomain() {
        let t = registry();
        let q = Message::query(1, n("missing.com"), RecordType::A);
        assert_eq!(t.respond(&q).rcode, Rcode::NxDomain);
    }

    #[test]
    fn out_of_zone_is_servfail() {
        let t = registry();
        let q = Message::query(1, n("example.org"), RecordType::A);
        assert_eq!(t.respond(&q).rcode, Rcode::ServFail);
    }

    #[test]
    fn host_table_answers() {
        let mut h = HostTable::new();
        h.add_a(n("example.com"), ip("203.0.113.10"));
        h.set_ns(n("example.com"), vec![n("ns1.prov.net")]);
        h.add_a(n("ns1.prov.net"), ip("203.0.113.53"));

        let a = h.respond(&Message::query(1, n("example.com"), RecordType::A));
        assert_eq!(a.answers.len(), 1);
        assert!(a.authoritative);

        let ns = h.respond(&Message::query(2, n("example.com"), RecordType::Ns));
        assert_eq!(ns.answers[0].data, RecordData::Ns(n("ns1.prov.net")));

        let miss = h.respond(&Message::query(3, n("nope.com"), RecordType::A));
        assert_eq!(miss.rcode, Rcode::NxDomain);

        // NoData: name exists, type missing.
        let nodata = h.respond(&Message::query(4, n("ns1.prov.net"), RecordType::Ns));
        assert_eq!(nodata.rcode, Rcode::NoError);
        assert!(nodata.answers.is_empty());
    }

    #[test]
    fn duplicate_a_deduped() {
        let mut h = HostTable::new();
        h.add_a(n("x.com"), ip("1.1.1.1"));
        h.add_a(n("x.com"), ip("1.1.1.1"));
        assert_eq!(h.lookup_a(&n("x.com")).unwrap().len(), 1);
    }
}
