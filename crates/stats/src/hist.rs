//! Fixed-width histograms and empirical CDFs (Figures 11 and 12).

use serde::{Deserialize, Serialize};

/// A fixed-bin-width histogram over `[lo, hi)` (the final bin is closed on
/// the right so `hi` itself is counted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Upper bound of the last bin.
    pub hi: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Count per bin.
    pub counts: Vec<u64>,
    /// Values outside `[lo, hi]` (recorded, not binned).
    pub out_of_range: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// Panics if `bins == 0` or `hi <= lo` (caller bug).
    pub fn new(lo: f64, hi: f64, bins: usize, values: &[f64]) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        let bin_width = (hi - lo) / bins as f64;
        let mut counts = vec![0u64; bins];
        let mut out_of_range = 0;
        for &v in values {
            if v.is_nan() || v < lo || v > hi {
                out_of_range += 1;
                continue;
            }
            let idx = (((v - lo) / bin_width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            lo,
            hi,
            bin_width,
            counts,
            out_of_range,
        }
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(bin_start, count)` pairs, for rendering.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + i as f64 * self.bin_width, c))
            .collect()
    }
}

/// Empirical CDF: returns sorted `(value, cumulative_fraction)` points.
///
/// NaNs are dropped. Empty input yields an empty curve.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Evaluates the empirical CDF at `x`: fraction of values `<= x`.
pub fn ecdf_at(values: &[f64], x: f64) -> f64 {
    let n = values.iter().filter(|v| !v.is_nan()).count();
    if n == 0 {
        return 0.0;
    }
    let le = values.iter().filter(|&&v| !v.is_nan() && v <= x).count();
    le as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let h = Histogram::new(0.0, 1.0, 4, &[0.1, 0.3, 0.3, 0.9, 1.0]);
        assert_eq!(h.counts, vec![1, 2, 0, 2]); // 1.0 lands in the last bin
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range, 0);
    }

    #[test]
    fn out_of_range_tracked() {
        let h = Histogram::new(0.0, 1.0, 2, &[-0.5, 0.5, 2.0, f64::NAN]);
        assert_eq!(h.total(), 1);
        assert_eq!(h.out_of_range, 3);
    }

    #[test]
    fn bins_start_points() {
        let h = Histogram::new(0.0, 0.6, 3, &[]);
        let starts: Vec<f64> = h.bins().iter().map(|b| b.0).collect();
        assert!((starts[0] - 0.0).abs() < 1e-12);
        assert!((starts[1] - 0.2).abs() < 1e-12);
        assert!((starts[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ecdf_properties() {
        let points = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points[2], (3.0, 1.0));
        // Monotone in both coordinates.
        assert!(points
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn ecdf_at_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf_at(&v, 0.5), 0.0);
        assert_eq!(ecdf_at(&v, 2.0), 0.5);
        assert_eq!(ecdf_at(&v, 10.0), 1.0);
        assert_eq!(ecdf_at(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0, &[]);
    }
}
