//! Minimal scoped-thread parallel map.
//!
//! The analysis layer fans the same pure computation over many independent
//! inputs (150 countries × 5 layers of centralization scores, thousands of
//! bootstrap replicates). This module provides just enough parallelism for
//! that: a work-stealing-ish map over a slice using `std::thread::scope`, an
//! atomic cursor instead of static chunking (so a slow item does not idle
//! the other threads), and results returned in input order so callers stay
//! deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on threads when the caller does not choose one.
const MAX_DEFAULT_THREADS: usize = 8;

/// A sensible default thread count: available parallelism, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Applies `f` to every element of `items` using up to `threads` scoped
/// threads, returning results in input order.
///
/// `f` must be pure with respect to ordering: results are identical to
/// `items.iter().map(f).collect()` no matter how the work interleaves.
/// With `threads <= 1` (or a single item) the map runs inline.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indices(items.len(), threads, |i| f(&items[i]))
}

/// Index-space variant of [`par_map`]: applies `f` to `0..n` in parallel,
/// returning results in index order.
pub fn par_map_indices<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    // Workers pull the next index from a shared cursor, collect (index,
    // result) pairs locally, and the results are scattered back into input
    // order at the end. No unsafe, no per-item locking.
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });

    let pairs = collected.into_inner().unwrap();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in pairs {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 8] {
            assert_eq!(par_map(&items, threads, |x| x * x), seq);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[5u32], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items at the front are much slower; the atomic cursor should let
        // other threads drain the rest rather than idling.
        let items: Vec<u32> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u32>>());
    }
}
