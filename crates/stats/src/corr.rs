//! Pearson and Spearman correlation with two-sided p-values.
//!
//! The paper reports Pearson's `rho` throughout (e.g. `rho = 0.90` between
//! centralization and XL-GP share) with significance statements like
//! `p << 0.05`, and interprets magnitudes with Akoglu's bands: `< 0.30`
//! poor, `0.30-0.60` fair, `0.60-0.80` moderate, `> 0.80` strong.

use crate::special::t_test_two_sided;
use serde::{Deserialize, Serialize};

/// A correlation estimate with its two-sided p-value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Correlation {
    /// The correlation coefficient in `[-1, 1]`.
    pub rho: f64,
    /// Two-sided p-value under the t-distribution null.
    pub p_value: f64,
    /// Number of paired observations.
    pub n: usize,
}

impl Correlation {
    /// Akoglu interpretation band of `|rho|`.
    pub fn strength(&self) -> CorrelationStrength {
        CorrelationStrength::classify(self.rho)
    }

    /// Whether the correlation is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Interpretation bands for correlation coefficients (Akoglu 2018), the
/// guideline the paper follows (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelationStrength {
    /// `|rho| < 0.30`.
    Poor,
    /// `0.30 <= |rho| < 0.60`.
    Fair,
    /// `0.60 <= |rho| < 0.80`.
    Moderate,
    /// `|rho| >= 0.80`.
    Strong,
}

impl CorrelationStrength {
    /// Classifies a coefficient by magnitude.
    pub fn classify(rho: f64) -> Self {
        let a = rho.abs();
        if a < 0.30 {
            CorrelationStrength::Poor
        } else if a < 0.60 {
            CorrelationStrength::Fair
        } else if a < 0.80 {
            CorrelationStrength::Moderate
        } else {
            CorrelationStrength::Strong
        }
    }
}

/// Pearson product-moment correlation between two equal-length samples.
///
/// Returns `None` when fewer than 3 pairs are given or either sample has
/// zero variance (the coefficient is undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<Correlation> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let rho = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let df = n - 2.0;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        t_test_two_sided(t, df)
    };
    Some(Correlation {
        rho,
        p_value,
        n: x.len(),
    })
}

/// Spearman rank correlation: Pearson over average ranks (ties averaged).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<Correlation> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based); ties get the mean of the ranks they span.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs in rank input"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 averaged.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.rho - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-12);
        assert_eq!(c.strength(), CorrelationStrength::Strong);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_has_large_p() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 3.0, 2.5, 1.5, 2.2];
        let c = pearson(&x, &y).unwrap();
        assert!(c.rho.abs() < 0.5);
        assert!(c.p_value > 0.05);
        assert!(!c.significant_at(0.05));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0]).is_none()); // too short
        assert!(pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_none()); // mismatch
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none()); // zero var
    }

    #[test]
    fn known_p_value_magnitude() {
        // n = 150, rho = 0.9 -> t ~ 25, p astronomically small.
        let n = 150;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 20.0 } else { -20.0 })
            .collect();
        let c = pearson(&x, &y).unwrap();
        assert!(c.rho > 0.8);
        assert!(c.p_value < 1e-10, "p = {}", c.p_value);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // cubic, monotone
        let s = spearman(&x, &y).unwrap();
        assert!((s.rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn strength_bands() {
        assert_eq!(
            CorrelationStrength::classify(0.19),
            CorrelationStrength::Poor
        );
        assert_eq!(
            CorrelationStrength::classify(-0.45),
            CorrelationStrength::Fair
        );
        assert_eq!(
            CorrelationStrength::classify(-0.72),
            CorrelationStrength::Moderate
        );
        assert_eq!(
            CorrelationStrength::classify(0.90),
            CorrelationStrength::Strong
        );
    }
}
