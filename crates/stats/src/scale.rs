//! Min-max feature scaling (§5.2: "we calculate the usage and endemicity
//! ratio for each provider, then apply min-max scaling and cluster").

/// Scales each column of a row-major feature matrix to `[0, 1]`.
///
/// A constant column maps to all zeros (no information). Rows must all have
/// the same width; panics otherwise (caller bug).
pub fn min_max_scale_columns(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let width = first.len();
    assert!(
        rows.iter().all(|r| r.len() == width),
        "all feature rows must have the same width"
    );
    let mut mins = vec![f64::INFINITY; width];
    let mut maxs = vec![f64::NEG_INFINITY; width];
    for row in rows {
        for (j, &v) in row.iter().enumerate() {
            mins[j] = mins[j].min(v);
            maxs[j] = maxs[j].max(v);
        }
    }
    rows.iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, &v)| {
                    let span = maxs[j] - mins[j];
                    if span == 0.0 {
                        0.0
                    } else {
                        (v - mins[j]) / span
                    }
                })
                .collect()
        })
        .collect()
}

/// Scales a single vector to `[0, 1]`; constant input maps to zeros.
pub fn min_max_scale(xs: &[f64]) -> Vec<f64> {
    min_max_scale_columns(&xs.iter().map(|&x| vec![x]).collect::<Vec<_>>())
        .into_iter()
        .map(|r| r[0])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let scaled = min_max_scale_columns(&rows);
        assert_eq!(scaled[0], vec![0.0, 0.0]);
        assert_eq!(scaled[1], vec![0.5, 0.5]);
        assert_eq!(scaled[2], vec![1.0, 1.0]);
    }

    #[test]
    fn constant_column_is_zeroed() {
        let rows = vec![vec![7.0, 1.0], vec![7.0, 2.0]];
        let scaled = min_max_scale_columns(&rows);
        assert_eq!(scaled[0][0], 0.0);
        assert_eq!(scaled[1][0], 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(min_max_scale_columns(&[]).is_empty());
        assert!(min_max_scale(&[]).is_empty());
    }

    #[test]
    fn vector_helper() {
        assert_eq!(min_max_scale(&[2.0, 4.0, 6.0]), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn ragged_rows_panic() {
        let _ = min_max_scale_columns(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
