//! Affinity propagation clustering (Frey & Dueck, *Science* 2007).
//!
//! The paper clusters providers by (min-max scaled) usage and endemicity
//! ratio using affinity propagation (§5.2), which selects exemplars by
//! passing "responsibility" and "availability" messages between points. It
//! does not require choosing the number of clusters up front — the
//! *preference* (self-similarity) controls cluster granularity.
//!
//! This implementation uses the standard negative squared Euclidean
//! similarity, median preference by default, damped message updates, and
//! stops when the exemplar set is stable for `convergence_iter` sweeps.

use serde::{Deserialize, Serialize};

/// Configuration for [`affinity_propagation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityConfig {
    /// Damping factor in `[0.5, 1.0)`; larger is more stable but slower.
    pub damping: f64,
    /// Maximum message-passing sweeps.
    pub max_iter: usize,
    /// Stop after the exemplar set is unchanged for this many sweeps.
    pub convergence_iter: usize,
    /// Self-similarity (preference). `None` uses the median pairwise
    /// similarity, the classic default that yields a moderate number of
    /// clusters.
    pub preference: Option<f64>,
    /// Threads for the message-passing sweeps; `0` picks
    /// [`crate::par::default_threads`]. Results are byte-identical at any
    /// thread count (each row/column is updated serially by one thread).
    pub threads: usize,
    /// Run the original untiled sweeps instead of the cache-tiled ones.
    /// Kept as the measured "before" for benchmarks; the tiled sweeps
    /// perform the identical floating-point operations in the identical
    /// per-element order, so both modes produce byte-identical
    /// [`Clustering`]s (pinned by tests).
    pub baseline_sweeps: bool,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig {
            damping: 0.7,
            max_iter: 400,
            convergence_iter: 20,
            preference: None,
            threads: 0,
            baseline_sweeps: false,
        }
    }
}

/// Below this point count a sweep is cheaper than spawning threads
/// (~100µs of flops vs ~8 scoped spawns per phase), so the sweeps run
/// inline. Parallel and serial paths are byte-identical either way.
const PAR_MIN_POINTS: usize = 384;

/// Applies `f` to each `n`-wide row of `m` (row index, row slice), fanning
/// contiguous row blocks across scoped threads. Every row is processed
/// serially by exactly one thread, so the result is byte-identical to the
/// `threads == 1` loop no matter how blocks land.
fn for_each_row(m: &mut [f64], n: usize, threads: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    let rows = m.len() / n;
    if threads <= 1 || rows <= 1 {
        for (i, row) in m.chunks_mut(n).enumerate() {
            f(i, row);
        }
        return;
    }
    let block = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (b, chunk) in m.chunks_mut(block * n).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, row) in chunk.chunks_mut(n).enumerate() {
                    f(b * block + j, row);
                }
            });
        }
    });
}

/// Rows per cache tile. One tile of `s` touches `TILE_ROWS` distinct
/// cache lines per matrix column step, which stays inside L1; the tiled
/// sweeps turn both phases' stride-`n` gathers into streaming passes.
const TILE_ROWS: usize = 64;

/// Applies `f` to contiguous [`TILE_ROWS`]-row tiles of `m` (first row
/// index, tile slice), distributing tile runs across scoped threads. Tile
/// boundaries never change any value — each matrix element is computed
/// independently from the previous sweep's state — so partitioning is
/// purely a cache/parallelism decision.
fn for_each_tile(m: &mut [f64], n: usize, threads: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    let mut tiles: Vec<(usize, &mut [f64])> = m
        .chunks_mut(TILE_ROWS * n)
        .enumerate()
        .map(|(t, chunk)| (t * TILE_ROWS, chunk))
        .collect();
    if threads <= 1 || tiles.len() <= 1 {
        for (row0, tile) in tiles {
            f(row0, tile);
        }
        return;
    }
    let per = tiles.len().div_ceil(threads);
    std::thread::scope(|scope| {
        while !tiles.is_empty() {
            let batch: Vec<_> = tiles.drain(..per.min(tiles.len())).collect();
            let f = &f;
            scope.spawn(move || {
                for (row0, tile) in batch {
                    f(row0, tile);
                }
            });
        }
    });
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// For each input point, the index of its exemplar point.
    pub exemplar_of: Vec<usize>,
    /// The distinct exemplar indices (cluster centers), ascending.
    pub exemplars: Vec<usize>,
    /// Sweeps executed before convergence (or `max_iter`).
    pub iterations: usize,
    /// Whether the exemplar set converged before `max_iter`.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.exemplars.len()
    }

    /// Cluster label (0-based, dense) per point.
    pub fn labels(&self) -> Vec<usize> {
        self.exemplar_of
            .iter()
            .map(|e| {
                self.exemplars
                    .binary_search(e)
                    .expect("exemplar_of entries are exemplars")
            })
            .collect()
    }

    /// Members of each cluster, indexed like [`Clustering::exemplars`].
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.exemplars.len()];
        for (i, label) in self.labels().into_iter().enumerate() {
            out[label].push(i);
        }
        out
    }
}

/// Negative squared Euclidean distance, the standard AP similarity.
fn similarity(a: &[f64], b: &[f64]) -> f64 {
    -a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Clusters `points` (row-major feature vectors) with affinity propagation.
///
/// Returns `None` for empty input. A single point trivially clusters with
/// itself. Memory is `O(n^2)`; intended for up to a few thousand points
/// (cluster the provider universe, not the website universe).
pub fn affinity_propagation(points: &[Vec<f64>], config: &AffinityConfig) -> Option<Clustering> {
    let n = points.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(Clustering {
            exemplar_of: vec![0],
            exemplars: vec![0],
            iterations: 0,
            converged: true,
        });
    }
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1.0)"
    );
    // All-identical input is degenerate for message passing (every pairwise
    // similarity ties); it is trivially one cluster.
    if points.iter().all(|p| p == &points[0]) {
        return Some(Clustering {
            exemplar_of: vec![0; n],
            exemplars: vec![0],
            iterations: 0,
            converged: true,
        });
    }

    // Similarity matrix.
    let mut s = vec![0.0f64; n * n];
    let mut off_diag: Vec<f64> = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for k in 0..n {
            if i != k {
                let v = similarity(&points[i], &points[k]);
                s[i * n + k] = v;
                off_diag.push(v);
            }
        }
    }
    let preference = config.preference.unwrap_or_else(|| {
        off_diag.sort_by(|a, b| a.partial_cmp(b).expect("similarities are finite"));
        let m = off_diag.len();
        if m == 0 {
            0.0
        } else {
            (off_diag[(m - 1) / 2] + off_diag[m / 2]) / 2.0
        }
    });
    for k in 0..n {
        s[k * n + k] = preference;
    }
    // Tiny deterministic jitter to break symmetric ties (standard trick;
    // keeps e.g. two identical points from oscillating).
    for (idx, v) in s.iter_mut().enumerate() {
        let noise = ((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64;
        *v += noise * 1e-12;
    }

    // `r` is row-major (r(i,k) = r[i*n+k]); availabilities are stored
    // column-major (a(i,k) = a_t[k*n+i]) so BOTH phases hand contiguous
    // `chunks_mut` blocks to worker threads: the responsibility phase owns
    // rows of `r`, the availability phase owns columns of `a` (= rows of
    // `a_t`). The diagonal lands at index `k*n+k` in either layout.
    let mut r = vec![0.0f64; n * n];
    let mut a_t = vec![0.0f64; n * n];
    let lam = config.damping;
    // `threads == 0` (auto) stays serial below the spawn-amortization
    // threshold; an explicit thread count is always honored.
    let threads = match config.threads {
        0 if n < PAR_MIN_POINTS => 1,
        0 => crate::par::default_threads(),
        t => t,
    };
    let mut stable_sweeps = 0;
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..config.max_iter {
        iterations = it + 1;
        // Responsibilities: r(i,k) = s(i,k) - max_{k' != k} (a(i,k') + s(i,k')).
        // Rows are independent given `a_t`; each thread updates whole rows.
        if config.baseline_sweeps {
            let a_t = &a_t;
            let s = &s;
            for_each_row(&mut r, n, threads, |i, r_row| {
                // Find top-2 of a(i,k') + s(i,k').
                let mut best = f64::NEG_INFINITY;
                let mut second = f64::NEG_INFINITY;
                let mut best_k = usize::MAX;
                for k in 0..n {
                    let v = a_t[k * n + i] + s[i * n + k];
                    if v > best {
                        second = best;
                        best = v;
                        best_k = k;
                    } else if v > second {
                        second = v;
                    }
                }
                for (k, rv) in r_row.iter_mut().enumerate() {
                    let max_other = if k == best_k { second } else { best };
                    let new_r = s[i * n + k] - max_other;
                    *rv = lam * *rv + (1.0 - lam) * new_r;
                }
            });
        } else {
            // Tiled: for each (row-tile, k-tile) pair, first transpose the
            // tile of `a_t` into a row-major scratch (contiguous reads from
            // `a_t`, L1-resident writes), then scan each row's k-run as two
            // zipped contiguous slices. Per row, k still advances 0..n in
            // order, so best/second/best_k evolve exactly as in the
            // baseline and the damped update computes the same floats.
            let a_t = &a_t;
            let s = &s;
            for_each_tile(&mut r, n, threads, |i0, tile| {
                let rows = tile.len() / n;
                let mut best = vec![f64::NEG_INFINITY; rows];
                let mut second = vec![f64::NEG_INFINITY; rows];
                let mut best_k = vec![usize::MAX; rows];
                let mut a_tile = vec![0.0f64; rows * TILE_ROWS];
                let mut v_run = [0.0f64; TILE_ROWS];
                for k0 in (0..n).step_by(TILE_ROWS) {
                    let kt = TILE_ROWS.min(n - k0);
                    for dk in 0..kt {
                        let a_run = &a_t[(k0 + dk) * n + i0..(k0 + dk) * n + i0 + rows];
                        for (j, &av) in a_run.iter().enumerate() {
                            a_tile[j * TILE_ROWS + dk] = av;
                        }
                    }
                    for j in 0..rows {
                        let s_run = &s[(i0 + j) * n + k0..(i0 + j) * n + k0 + kt];
                        let a_run = &a_tile[j * TILE_ROWS..j * TILE_ROWS + kt];
                        // Branch-free sum and max over the run, then a
                        // serial top-2 refinement only when the run can
                        // actually change best/second. Skipping a run whose
                        // max is <= second is exact: the baseline scan
                        // would have left (best, second, best_k) untouched
                        // for every such element.
                        for ((vd, &av), &sv) in v_run[..kt].iter_mut().zip(a_run).zip(s_run) {
                            *vd = av + sv;
                        }
                        let run_max = v_run[..kt].iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
                        if run_max <= second[j] {
                            continue;
                        }
                        let (mut b1, mut b2, mut bk) = (best[j], second[j], best_k[j]);
                        for (dk, &v) in v_run[..kt].iter().enumerate() {
                            if v > b1 {
                                b2 = b1;
                                b1 = v;
                                bk = k0 + dk;
                            } else if v > b2 {
                                b2 = v;
                            }
                        }
                        best[j] = b1;
                        second[j] = b2;
                        best_k[j] = bk;
                    }
                }
                for (j, r_row) in tile.chunks_mut(n).enumerate() {
                    let s_row = &s[(i0 + j) * n..(i0 + j + 1) * n];
                    let (b1, b2, bk) = (best[j], second[j], best_k[j]);
                    // The best_k element is the only one whose subtrahend
                    // differs; compute the whole row against `best` without
                    // a branch, then redo that one slot from its saved old
                    // value against `second`.
                    let old_rbk = r_row[bk];
                    for (rv, &sv) in r_row.iter_mut().zip(s_row) {
                        *rv = lam * *rv + (1.0 - lam) * (sv - b1);
                    }
                    r_row[bk] = lam * old_rbk + (1.0 - lam) * (s_row[bk] - b2);
                }
            });
        }
        // Availabilities: columns are independent given `r`; each thread
        // updates whole columns (contiguous rows of `a_t`).
        if config.baseline_sweeps {
            let r = &r;
            for_each_row(&mut a_t, n, threads, |k, a_col| {
                let mut pos_sum = 0.0;
                for i in 0..n {
                    if i != k {
                        pos_sum += r[i * n + k].max(0.0);
                    }
                }
                let rkk = r[k * n + k];
                for (i, av) in a_col.iter_mut().enumerate() {
                    let new_a = if i == k {
                        pos_sum
                    } else {
                        let without_i = pos_sum - r[i * n + k].max(0.0);
                        (rkk + without_i).min(0.0)
                    };
                    *av = lam * *av + (1.0 - lam) * new_a;
                }
            });
        } else {
            // Tiled: the positive-sum pass streams `r` row-slabs instead
            // of gathering stride-n columns, accumulating every column of
            // the tile at once; the diagonal term each column skips is
            // handled by splitting that one row's run, never by a branch
            // in the inner loop. Each column's sum still accumulates over
            // i = 0..n in order, so the float result is identical. The
            // same pass transposes the slab into `rt` so the update pass
            // reads each column contiguously; the i == k slot is the only
            // one with a different formula, so the update runs branch-free
            // over the whole column and then redoes that one slot from its
            // saved old value.
            let r = &r;
            for_each_tile(&mut a_t, n, threads, |k0, tile| {
                let cols = tile.len() / n;
                let mut pos = vec![0.0f64; cols];
                let mut rt = vec![0.0f64; cols * n];
                for i in 0..n {
                    let r_row = &r[i * n + k0..i * n + k0 + cols];
                    for (j, &rv) in r_row.iter().enumerate() {
                        rt[j * n + i] = rv;
                    }
                    if i >= k0 && i < k0 + cols {
                        let d = i - k0;
                        for (pj, &rv) in pos[..d].iter_mut().zip(&r_row[..d]) {
                            *pj += rv.max(0.0);
                        }
                        for (pj, &rv) in pos[d + 1..].iter_mut().zip(&r_row[d + 1..]) {
                            *pj += rv.max(0.0);
                        }
                    } else {
                        for (pj, &rv) in pos.iter_mut().zip(r_row) {
                            *pj += rv.max(0.0);
                        }
                    }
                }
                for (j, a_col) in tile.chunks_mut(n).enumerate() {
                    let k = k0 + j;
                    let rkk = r[k * n + k];
                    let pos_sum = pos[j];
                    let rt_col = &rt[j * n..(j + 1) * n];
                    let old_ak = a_col[k];
                    for (av, &rv) in a_col.iter_mut().zip(rt_col) {
                        let new_a = (rkk + (pos_sum - rv.max(0.0))).min(0.0);
                        *av = lam * *av + (1.0 - lam) * new_a;
                    }
                    a_col[k] = lam * old_ak + (1.0 - lam) * pos_sum;
                }
            });
        }
        // Current exemplars.
        let exemplars: Vec<usize> = (0..n)
            .filter(|&k| r[k * n + k] + a_t[k * n + k] > 0.0)
            .collect();
        if !exemplars.is_empty() && exemplars == last_exemplars {
            stable_sweeps += 1;
            if stable_sweeps >= config.convergence_iter {
                converged = true;
                break;
            }
        } else {
            stable_sweeps = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars: Vec<usize> = (0..n)
        .filter(|&k| r[k * n + k] + a_t[k * n + k] > 0.0)
        .collect();
    if exemplars.is_empty() {
        // Degenerate run (e.g. max_iter too small): fall back to the point
        // with the best self-evidence so every caller gets a valid result.
        let best = (0..n)
            .max_by(|&x, &y| {
                (r[x * n + x] + a_t[x * n + x])
                    .partial_cmp(&(r[y * n + y] + a_t[y * n + y]))
                    .expect("messages are finite")
            })
            .expect("n > 0");
        exemplars.push(best);
    }
    // Assign each point to the most similar exemplar; exemplars to themselves.
    let exemplar_of: Vec<usize> = (0..n)
        .map(|i| {
            if exemplars.binary_search(&i).is_ok() {
                return i;
            }
            *exemplars
                .iter()
                .max_by(|&&x, &&y| {
                    s[i * n + x]
                        .partial_cmp(&s[i * n + y])
                        .expect("similarities are finite")
                })
                .expect("at least one exemplar")
        })
        .collect();

    Some(Clustering {
        exemplar_of,
        exemplars,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_points() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0 + 0.013 * i as f64]);
        }
        for i in 0..8 {
            pts.push(vec![1.0 + 0.01 * i as f64, 1.0 - 0.008 * i as f64]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blob_points();
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        assert!(c.converged, "should converge on well-separated blobs");
        assert_eq!(c.num_clusters(), 2, "exemplars: {:?}", c.exemplars);
        let labels = c.labels();
        // All of the first blob shares a label; all of the second shares the
        // other.
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert!(labels[8..].iter().all(|&l| l == labels[8]));
        assert_ne!(labels[0], labels[8]);
    }

    #[test]
    fn single_point() {
        let c = affinity_propagation(&[vec![1.0, 2.0]], &AffinityConfig::default()).unwrap();
        assert_eq!(c.exemplars, vec![0]);
        assert_eq!(c.exemplar_of, vec![0]);
        assert!(c.converged);
    }

    #[test]
    fn empty_input() {
        assert!(affinity_propagation(&[], &AffinityConfig::default()).is_none());
    }

    #[test]
    fn identical_points_form_one_cluster() {
        let pts = vec![vec![0.5, 0.5]; 6];
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        assert_eq!(c.num_clusters(), 1, "{:?}", c.exemplars);
    }

    #[test]
    fn low_preference_fewer_clusters() {
        let pts = two_blob_points();
        let tight = affinity_propagation(
            &pts,
            &AffinityConfig {
                preference: Some(-100.0),
                ..AffinityConfig::default()
            },
        )
        .unwrap();
        let loose = affinity_propagation(
            &pts,
            &AffinityConfig {
                preference: Some(-0.0001),
                ..AffinityConfig::default()
            },
        )
        .unwrap();
        assert!(tight.num_clusters() <= loose.num_clusters());
        assert!(loose.num_clusters() >= 2);
    }

    #[test]
    fn members_partition_points() {
        let pts = two_blob_points();
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, pts.len());
        // Each exemplar belongs to its own cluster.
        for (label, &ex) in c.exemplars.iter().enumerate() {
            assert!(members[label].contains(&ex));
        }
    }

    /// Deterministic pseudo-random points (no RNG dependency in tests):
    /// xorshift over the index, mapped into [0, 1)³.
    fn synthetic_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 11) as f64 / (1u64 << 53) as f64
                };
                vec![next(), next(), next()]
            })
            .collect()
    }

    #[test]
    fn parallel_sweeps_match_serial_exactly() {
        // The whole Clustering — exemplars, per-point assignment, iteration
        // count, convergence flag — must be byte-identical between the
        // serial reference and any parallel thread count. n = 400 exceeds
        // PAR_MIN_POINTS so the auto path is genuinely parallel too.
        for n in [2usize, 17, 150, 400] {
            let pts = synthetic_points(n);
            let serial = affinity_propagation(
                &pts,
                &AffinityConfig {
                    threads: 1,
                    ..AffinityConfig::default()
                },
            )
            .unwrap();
            for threads in [2usize, 3, 8] {
                let par = affinity_propagation(
                    &pts,
                    &AffinityConfig {
                        threads,
                        ..AffinityConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
            let auto = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
            assert_eq!(serial, auto, "n={n} auto");
        }
    }

    #[test]
    fn tiled_sweeps_match_baseline_exactly() {
        // The cache-tiled sweeps must reproduce the original loops
        // bit-for-bit at every point count — including sizes straddling a
        // tile boundary — serially and across thread counts.
        for n in [2usize, 17, 63, 64, 65, 150, 400] {
            let pts = synthetic_points(n);
            let baseline = affinity_propagation(
                &pts,
                &AffinityConfig {
                    threads: 1,
                    baseline_sweeps: true,
                    ..AffinityConfig::default()
                },
            )
            .unwrap();
            for threads in [1usize, 2, 3, 8] {
                let tiled = affinity_propagation(
                    &pts,
                    &AffinityConfig {
                        threads,
                        ..AffinityConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(baseline, tiled, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_validated() {
        let _ = affinity_propagation(
            &[vec![0.0], vec![1.0]],
            &AffinityConfig {
                damping: 1.5,
                ..AffinityConfig::default()
            },
        );
    }
}
