//! Affinity propagation clustering (Frey & Dueck, *Science* 2007).
//!
//! The paper clusters providers by (min-max scaled) usage and endemicity
//! ratio using affinity propagation (§5.2), which selects exemplars by
//! passing "responsibility" and "availability" messages between points. It
//! does not require choosing the number of clusters up front — the
//! *preference* (self-similarity) controls cluster granularity.
//!
//! This implementation uses the standard negative squared Euclidean
//! similarity, median preference by default, damped message updates, and
//! stops when the exemplar set is stable for `convergence_iter` sweeps.

use serde::{Deserialize, Serialize};

/// Configuration for [`affinity_propagation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityConfig {
    /// Damping factor in `[0.5, 1.0)`; larger is more stable but slower.
    pub damping: f64,
    /// Maximum message-passing sweeps.
    pub max_iter: usize,
    /// Stop after the exemplar set is unchanged for this many sweeps.
    pub convergence_iter: usize,
    /// Self-similarity (preference). `None` uses the median pairwise
    /// similarity, the classic default that yields a moderate number of
    /// clusters.
    pub preference: Option<f64>,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig {
            damping: 0.7,
            max_iter: 400,
            convergence_iter: 20,
            preference: None,
        }
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// For each input point, the index of its exemplar point.
    pub exemplar_of: Vec<usize>,
    /// The distinct exemplar indices (cluster centers), ascending.
    pub exemplars: Vec<usize>,
    /// Sweeps executed before convergence (or `max_iter`).
    pub iterations: usize,
    /// Whether the exemplar set converged before `max_iter`.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.exemplars.len()
    }

    /// Cluster label (0-based, dense) per point.
    pub fn labels(&self) -> Vec<usize> {
        self.exemplar_of
            .iter()
            .map(|e| {
                self.exemplars
                    .binary_search(e)
                    .expect("exemplar_of entries are exemplars")
            })
            .collect()
    }

    /// Members of each cluster, indexed like [`Clustering::exemplars`].
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.exemplars.len()];
        for (i, label) in self.labels().into_iter().enumerate() {
            out[label].push(i);
        }
        out
    }
}

/// Negative squared Euclidean distance, the standard AP similarity.
fn similarity(a: &[f64], b: &[f64]) -> f64 {
    -a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// Clusters `points` (row-major feature vectors) with affinity propagation.
///
/// Returns `None` for empty input. A single point trivially clusters with
/// itself. Memory is `O(n^2)`; intended for up to a few thousand points
/// (cluster the provider universe, not the website universe).
pub fn affinity_propagation(points: &[Vec<f64>], config: &AffinityConfig) -> Option<Clustering> {
    let n = points.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(Clustering {
            exemplar_of: vec![0],
            exemplars: vec![0],
            iterations: 0,
            converged: true,
        });
    }
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1.0)"
    );
    // All-identical input is degenerate for message passing (every pairwise
    // similarity ties); it is trivially one cluster.
    if points.iter().all(|p| p == &points[0]) {
        return Some(Clustering {
            exemplar_of: vec![0; n],
            exemplars: vec![0],
            iterations: 0,
            converged: true,
        });
    }

    // Similarity matrix.
    let mut s = vec![0.0f64; n * n];
    let mut off_diag: Vec<f64> = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for k in 0..n {
            if i != k {
                let v = similarity(&points[i], &points[k]);
                s[i * n + k] = v;
                off_diag.push(v);
            }
        }
    }
    let preference = config.preference.unwrap_or_else(|| {
        off_diag.sort_by(|a, b| a.partial_cmp(b).expect("similarities are finite"));
        let m = off_diag.len();
        if m == 0 {
            0.0
        } else {
            (off_diag[(m - 1) / 2] + off_diag[m / 2]) / 2.0
        }
    });
    for k in 0..n {
        s[k * n + k] = preference;
    }
    // Tiny deterministic jitter to break symmetric ties (standard trick;
    // keeps e.g. two identical points from oscillating).
    for (idx, v) in s.iter_mut().enumerate() {
        let noise = ((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64;
        *v += noise * 1e-12;
    }

    let mut r = vec![0.0f64; n * n];
    let mut a = vec![0.0f64; n * n];
    let lam = config.damping;
    let mut stable_sweeps = 0;
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..config.max_iter {
        iterations = it + 1;
        // Responsibilities: r(i,k) = s(i,k) - max_{k' != k} (a(i,k') + s(i,k')).
        for i in 0..n {
            // Find top-2 of a(i,k') + s(i,k').
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            let mut best_k = usize::MAX;
            for k in 0..n {
                let v = a[i * n + k] + s[i * n + k];
                if v > best {
                    second = best;
                    best = v;
                    best_k = k;
                } else if v > second {
                    second = v;
                }
            }
            for k in 0..n {
                let max_other = if k == best_k { second } else { best };
                let new_r = s[i * n + k] - max_other;
                r[i * n + k] = lam * r[i * n + k] + (1.0 - lam) * new_r;
            }
        }
        // Availabilities.
        for k in 0..n {
            let mut pos_sum = 0.0;
            for i in 0..n {
                if i != k {
                    pos_sum += r[i * n + k].max(0.0);
                }
            }
            let rkk = r[k * n + k];
            for i in 0..n {
                let new_a = if i == k {
                    pos_sum
                } else {
                    let without_i = pos_sum - r[i * n + k].max(0.0);
                    (rkk + without_i).min(0.0)
                };
                a[i * n + k] = lam * a[i * n + k] + (1.0 - lam) * new_a;
            }
        }
        // Current exemplars.
        let exemplars: Vec<usize> = (0..n)
            .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
            .collect();
        if !exemplars.is_empty() && exemplars == last_exemplars {
            stable_sweeps += 1;
            if stable_sweeps >= config.convergence_iter {
                converged = true;
                break;
            }
        } else {
            stable_sweeps = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars: Vec<usize> = (0..n)
        .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
        .collect();
    if exemplars.is_empty() {
        // Degenerate run (e.g. max_iter too small): fall back to the point
        // with the best self-evidence so every caller gets a valid result.
        let best = (0..n)
            .max_by(|&x, &y| {
                (r[x * n + x] + a[x * n + x])
                    .partial_cmp(&(r[y * n + y] + a[y * n + y]))
                    .expect("messages are finite")
            })
            .expect("n > 0");
        exemplars.push(best);
    }
    // Assign each point to the most similar exemplar; exemplars to themselves.
    let exemplar_of: Vec<usize> = (0..n)
        .map(|i| {
            if exemplars.binary_search(&i).is_ok() {
                return i;
            }
            *exemplars
                .iter()
                .max_by(|&&x, &&y| {
                    s[i * n + x]
                        .partial_cmp(&s[i * n + y])
                        .expect("similarities are finite")
                })
                .expect("at least one exemplar")
        })
        .collect();

    Some(Clustering {
        exemplar_of,
        exemplars,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_points() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0 + 0.013 * i as f64]);
        }
        for i in 0..8 {
            pts.push(vec![1.0 + 0.01 * i as f64, 1.0 - 0.008 * i as f64]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blob_points();
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        assert!(c.converged, "should converge on well-separated blobs");
        assert_eq!(c.num_clusters(), 2, "exemplars: {:?}", c.exemplars);
        let labels = c.labels();
        // All of the first blob shares a label; all of the second shares the
        // other.
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert!(labels[8..].iter().all(|&l| l == labels[8]));
        assert_ne!(labels[0], labels[8]);
    }

    #[test]
    fn single_point() {
        let c = affinity_propagation(&[vec![1.0, 2.0]], &AffinityConfig::default()).unwrap();
        assert_eq!(c.exemplars, vec![0]);
        assert_eq!(c.exemplar_of, vec![0]);
        assert!(c.converged);
    }

    #[test]
    fn empty_input() {
        assert!(affinity_propagation(&[], &AffinityConfig::default()).is_none());
    }

    #[test]
    fn identical_points_form_one_cluster() {
        let pts = vec![vec![0.5, 0.5]; 6];
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        assert_eq!(c.num_clusters(), 1, "{:?}", c.exemplars);
    }

    #[test]
    fn low_preference_fewer_clusters() {
        let pts = two_blob_points();
        let tight = affinity_propagation(
            &pts,
            &AffinityConfig {
                preference: Some(-100.0),
                ..AffinityConfig::default()
            },
        )
        .unwrap();
        let loose = affinity_propagation(
            &pts,
            &AffinityConfig {
                preference: Some(-0.0001),
                ..AffinityConfig::default()
            },
        )
        .unwrap();
        assert!(tight.num_clusters() <= loose.num_clusters());
        assert!(loose.num_clusters() >= 2);
    }

    #[test]
    fn members_partition_points() {
        let pts = two_blob_points();
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, pts.len());
        // Each exemplar belongs to its own cluster.
        for (label, &ex) in c.exemplars.iter().enumerate() {
            assert!(members[label].contains(&ex));
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_validated() {
        let _ = affinity_propagation(
            &[vec![0.0], vec![1.0]],
            &AffinityConfig {
                damping: 1.5,
                ..AffinityConfig::default()
            },
        );
    }
}
