//! Seeded bootstrap confidence intervals.
//!
//! The paper reports point estimates; a toolkit release should also say
//! how stable they are under toplist resampling. [`bootstrap_ci`]
//! resamples observations with replacement and returns a percentile
//! interval for any statistic — used by `examples/uncertainty.rs` to
//! attach intervals to per-country centralization scores.
//!
//! Replicates are independent by construction: replicate `r` draws from its
//! own index stream seeded by `mix(seed, r)`, so the interval is identical
//! whether replicates run sequentially or spread across threads. The
//! resampling itself is by *index* — [`bootstrap_ci_indexed`] hands the
//! statistic a borrowing [`Resample`] view and never clones an item;
//! [`bootstrap_ci`] keeps the slice-based signature by gathering into one
//! scratch buffer per thread, reused across that thread's replicates.
//!
//! Index draws come from a SplitMix64 stream, not a cryptographic RNG:
//! resampling needs seeded reproducibility and throughput (a suite run
//! draws tens of millions of indices), and SplitMix64 passes the
//! statistical bar for percentile intervals by a wide margin.

use crate::par::par_map_indices;
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Bootstrap replicates used.
    pub replicates: usize,
}

impl BootstrapCi {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value falls inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// One bootstrap resample, viewed through its index vector: item `i` of the
/// resample is `items[idx[i]]`. No items are cloned.
pub struct Resample<'a, T> {
    items: &'a [T],
    idx: &'a [u32],
}

impl<'a, T> Resample<'a, T> {
    /// Number of drawn items (equals the original sample size).
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the resample is empty.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The `i`-th drawn item.
    pub fn get(&self, i: usize) -> &'a T {
        &self.items[self.idx[i] as usize]
    }

    /// Iterates over the drawn items, repeats included.
    pub fn iter(&self) -> impl Iterator<Item = &'a T> + '_ {
        self.idx.iter().map(move |&i| &self.items[i as usize])
    }
}

/// Decorrelates per-replicate seeds (SplitMix64 finalizer).
fn replicate_seed(seed: u64, r: u64) -> u64 {
    let mut x = seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One replicate's index stream: SplitMix64 outputs mapped to `0..n` by
/// the multiply-shift bound. The mapping's bias is under `n / 2^64` per
/// draw — unmeasurable at bootstrap sample sizes — and it avoids the
/// rejection loop a modulo-free uniform range needs.
struct IndexStream {
    state: u64,
}

impl IndexStream {
    fn new(seed: u64) -> Self {
        IndexStream { state: seed }
    }

    fn next_below(&mut self, n: usize) -> u32 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x as u128 * n as u128) >> 64) as u32
    }
}

fn draw_indices(stream: &mut IndexStream, n: usize, idx: &mut Vec<u32>) {
    idx.clear();
    for _ in 0..n {
        idx.push(stream.next_below(n));
    }
}

fn percentile_interval(point: f64, mut stats: Vec<f64>, level: f64) -> BootstrapCi {
    percentile_interval_slice(point, &mut stats, level)
}

fn valid(n_items: usize, replicates: usize, level: f64) -> bool {
    n_items > 0 && replicates > 0 && level > 0.0 && level < 1.0
}

/// Number of replicates to hand each parallel worker at a time. Large
/// enough to amortize scheduling, small enough to balance uneven statistic
/// costs.
const REPLICATE_CHUNK: usize = 32;

/// Percentile bootstrap for `statistic` over `items`.
///
/// * `level` — confidence level in `(0, 1)`, e.g. `0.95`.
/// * `replicates` — number of resamples (hundreds suffice for reporting).
///
/// Deterministic for a given `seed`, independent of thread count. Returns
/// `None` for an empty sample, a degenerate level, or zero replicates.
pub fn bootstrap_ci<T: Clone + Sync, F: Fn(&[T]) -> f64 + Sync>(
    items: &[T],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if !valid(items.len(), replicates, level) {
        return None;
    }
    let point = statistic(items);
    let n = items.len();
    let chunks = replicates.div_ceil(REPLICATE_CHUNK);
    let threads = crate::par::default_threads().min(chunks);
    let stats: Vec<f64> = par_map_indices(chunks, threads, |c| {
        // Per-chunk scratch buffers, reused across the chunk's replicates.
        let mut idx: Vec<u32> = Vec::with_capacity(n);
        let mut resample: Vec<T> = Vec::with_capacity(n);
        let lo = c * REPLICATE_CHUNK;
        let hi = (lo + REPLICATE_CHUNK).min(replicates);
        (lo..hi)
            .map(|r| {
                let mut stream = IndexStream::new(replicate_seed(seed, r as u64));
                draw_indices(&mut stream, n, &mut idx);
                resample.clear();
                resample.extend(idx.iter().map(|&i| items[i as usize].clone()));
                statistic(&resample)
            })
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    Some(percentile_interval(point, stats, level))
}

/// Clone-free percentile bootstrap: the statistic reads each resample
/// through a borrowing [`Resample`] view instead of a gathered slice.
///
/// Draws the *same* index streams as [`bootstrap_ci`] for a given `seed`,
/// so the two agree exactly when the statistics agree.
pub fn bootstrap_ci_indexed<T: Sync, F: Fn(&Resample<'_, T>) -> f64 + Sync>(
    items: &[T],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if !valid(items.len(), replicates, level) {
        return None;
    }
    let n = items.len();
    let identity: Vec<u32> = (0..n as u32).collect();
    let point = statistic(&Resample {
        items,
        idx: &identity,
    });
    let chunks = replicates.div_ceil(REPLICATE_CHUNK);
    let threads = crate::par::default_threads().min(chunks);
    let stats: Vec<f64> = par_map_indices(chunks, threads, |c| {
        let mut idx: Vec<u32> = Vec::with_capacity(n);
        let lo = c * REPLICATE_CHUNK;
        let hi = (lo + REPLICATE_CHUNK).min(replicates);
        (lo..hi)
            .map(|r| {
                let mut stream = IndexStream::new(replicate_seed(seed, r as u64));
                draw_indices(&mut stream, n, &mut idx);
                statistic(&Resample { items, idx: &idx })
            })
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    Some(percentile_interval(point, stats, level))
}

/// Reusable scratch for [`bootstrap_ci_indexed_scratch`]: the index
/// buffer, the replicate statistics, and the identity permutation all live
/// here, so a per-country CI loop allocates nothing after its first call.
#[derive(Debug, Default)]
pub struct BootstrapScratch {
    idx: Vec<u32>,
    stats: Vec<f64>,
    identity: Vec<u32>,
}

impl BootstrapScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`bootstrap_ci_indexed`] with caller-provided scratch, run serially on
/// the calling thread.
///
/// Draws the same per-replicate index streams as the parallel entry points
/// (replicate `r` is always seeded by `mix(seed, r)`), and the percentile
/// sort is order-independent, so for a given statistic the interval is
/// **identical** to [`bootstrap_ci_indexed`]'s. Use this inside loops that
/// are already parallel at a coarser grain (e.g. one CI per country): the
/// coarse loop keeps the cores busy and each call stays allocation-free.
pub fn bootstrap_ci_indexed_scratch<T, F: Fn(&Resample<'_, T>) -> f64>(
    items: &[T],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Option<BootstrapCi> {
    if !valid(items.len(), replicates, level) {
        return None;
    }
    let n = items.len();
    scratch.identity.clear();
    scratch.identity.extend(0..n as u32);
    let point = statistic(&Resample {
        items,
        idx: &scratch.identity,
    });
    scratch.stats.clear();
    for r in 0..replicates {
        let mut stream = IndexStream::new(replicate_seed(seed, r as u64));
        draw_indices(&mut stream, n, &mut scratch.idx);
        scratch.stats.push(statistic(&Resample {
            items,
            idx: &scratch.idx,
        }));
    }
    Some(percentile_interval_slice(point, &mut scratch.stats, level))
}

/// The bootstrap ran out of budget before finishing its replicates.
///
/// Carries no partial interval on purpose: a truncated replicate set is a
/// *different* (narrower-tailed) estimator, so callers either get the
/// exact seeded interval or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapAborted;

/// [`bootstrap_ci_indexed_scratch`] that polls `should_abort` every
/// [`REPLICATE_CHUNK`] replicates and bails with [`BootstrapAborted`]
/// instead of running to completion.
///
/// Replicate `r` is seeded by `mix(seed, r)` regardless of who runs it, so
/// when this variant *does* complete its interval is bit-identical to
/// [`bootstrap_ci_indexed`]'s — a request under deadline pressure never
/// serves different numbers, it either serves the canonical ones or sheds.
pub fn bootstrap_ci_indexed_abortable<T, F: Fn(&Resample<'_, T>) -> f64>(
    items: &[T],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
    should_abort: &mut dyn FnMut() -> bool,
) -> Result<Option<BootstrapCi>, BootstrapAborted> {
    if !valid(items.len(), replicates, level) {
        return Ok(None);
    }
    if should_abort() {
        return Err(BootstrapAborted);
    }
    let n = items.len();
    scratch.identity.clear();
    scratch.identity.extend(0..n as u32);
    let point = statistic(&Resample {
        items,
        idx: &scratch.identity,
    });
    scratch.stats.clear();
    for r in 0..replicates {
        if r % REPLICATE_CHUNK == 0 && r > 0 && should_abort() {
            return Err(BootstrapAborted);
        }
        let mut stream = IndexStream::new(replicate_seed(seed, r as u64));
        draw_indices(&mut stream, n, &mut scratch.idx);
        scratch.stats.push(statistic(&Resample {
            items,
            idx: &scratch.idx,
        }));
    }
    Ok(Some(percentile_interval_slice(
        point,
        &mut scratch.stats,
        level,
    )))
}

fn percentile_interval_slice(point: f64, stats: &mut [f64], level: f64) -> BootstrapCi {
    let replicates = stats.len();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let idx =
        |q: f64| -> usize { ((q * (replicates - 1) as f64).round() as usize).min(replicates - 1) };
    BootstrapCi {
        point,
        lo: stats[idx(alpha)],
        hi: stats[idx(1.0 - alpha)],
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&data, mean, 500, 0.95, 42).unwrap();
        assert!(ci.contains(ci.point));
        assert!(ci.contains(4.5), "{ci:?}");
        assert!(ci.width() < 1.0, "{ci:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, mean, 200, 0.9, 7).unwrap();
        let b = bootstrap_ci(&data, mean, 200, 0.9, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 200, 0.9, 8).unwrap();
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn indexed_agrees_with_cloning() {
        let data: Vec<f64> = (0..120).map(|i| ((i * 17) % 31) as f64).collect();
        let cloned = bootstrap_ci(&data, mean, 300, 0.95, 11).unwrap();
        let indexed = bootstrap_ci_indexed(
            &data,
            |rs| rs.iter().sum::<f64>() / rs.len() as f64,
            300,
            0.95,
            11,
        )
        .unwrap();
        assert_eq!(cloned, indexed);
    }

    /// The abortable variant is bit-identical to the parallel path when it
    /// completes, aborts promptly when the budget is already spent, and
    /// honors a mid-run abort without returning a truncated interval.
    #[test]
    fn abortable_variant_identical_or_aborted() {
        let data: Vec<f64> = (0..80).map(|i| ((i * 19) % 29) as f64).collect();
        let stat = |rs: &Resample<'_, f64>| rs.iter().sum::<f64>() / rs.len() as f64;
        let mut scratch = BootstrapScratch::new();
        let parallel = bootstrap_ci_indexed(&data, stat, 300, 0.95, 9).unwrap();
        let completed =
            bootstrap_ci_indexed_abortable(&data, stat, 300, 0.95, 9, &mut scratch, &mut || false)
                .unwrap();
        assert_eq!(completed, Some(parallel));

        assert_eq!(
            bootstrap_ci_indexed_abortable(&data, stat, 300, 0.95, 9, &mut scratch, &mut || true),
            Err(BootstrapAborted)
        );

        // Abort after the first poll window: never a partial interval.
        let mut polls = 0u32;
        let aborted =
            bootstrap_ci_indexed_abortable(&data, stat, 10_000, 0.95, 9, &mut scratch, &mut || {
                polls += 1;
                polls > 1
            });
        assert_eq!(aborted, Err(BootstrapAborted));

        // Degenerate inputs still report "no interval", not an abort.
        assert_eq!(
            bootstrap_ci_indexed_abortable(&data, stat, 0, 0.95, 9, &mut scratch, &mut || true),
            Ok(None)
        );
    }

    /// The scratch variant must be bit-identical to the parallel indexed
    /// path: same index streams per replicate, order-independent sort.
    #[test]
    fn scratch_variant_is_identical_to_indexed() {
        let data: Vec<f64> = (0..90).map(|i| ((i * 13) % 23) as f64).collect();
        let stat = |rs: &Resample<'_, f64>| rs.iter().sum::<f64>() / rs.len() as f64;
        let mut scratch = BootstrapScratch::new();
        for seed in [1u64, 7, 42] {
            let parallel = bootstrap_ci_indexed(&data, stat, 250, 0.95, seed).unwrap();
            let serial =
                bootstrap_ci_indexed_scratch(&data, stat, 250, 0.95, seed, &mut scratch).unwrap();
            assert_eq!(parallel, serial, "seed {seed}");
        }
        assert!(
            bootstrap_ci_indexed_scratch(&data, stat, 0, 0.95, 0, &mut scratch).is_none(),
            "degenerate inputs still rejected"
        );
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let data = vec![3.0; 30];
        let ci = bootstrap_ci(&data, mean, 100, 0.95, 1).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn wider_level_wider_interval() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 400, 0.80, 5).unwrap();
        let wide = bootstrap_ci(&data, mean, 400, 0.99, 5).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn invalid_inputs() {
        let data = vec![1.0];
        assert!(bootstrap_ci::<f64, _>(&[], mean, 100, 0.95, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 0, 0.95, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 100, 1.0, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 100, 0.0, 0).is_none());
        assert!(bootstrap_ci_indexed(&data, |rs| rs.get(0) * 1.0, 0, 0.95, 0).is_none());
    }
}
