//! Seeded bootstrap confidence intervals.
//!
//! The paper reports point estimates; a toolkit release should also say
//! how stable they are under toplist resampling. [`bootstrap_ci`]
//! resamples observations with replacement and returns a percentile
//! interval for any statistic — used by `examples/uncertainty.rs` to
//! attach intervals to per-country centralization scores.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Bootstrap replicates used.
    pub replicates: usize,
}

impl BootstrapCi {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value falls inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Percentile bootstrap for `statistic` over `items`.
///
/// * `level` — confidence level in `(0, 1)`, e.g. `0.95`.
/// * `replicates` — number of resamples (hundreds suffice for reporting).
///
/// Deterministic for a given `seed`. Returns `None` for an empty sample,
/// a degenerate level, or zero replicates.
pub fn bootstrap_ci<T: Clone, F: Fn(&[T]) -> f64>(
    items: &[T],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if items.is_empty() || replicates == 0 || !(0.0..1.0).contains(&level) || level <= 0.0 {
        return None;
    }
    let point = statistic(items);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = Vec::with_capacity(items.len());
    for _ in 0..replicates {
        resample.clear();
        for _ in 0..items.len() {
            resample.push(items[rng.random_range(0..items.len())].clone());
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| -> usize {
        ((q * (replicates - 1) as f64).round() as usize).min(replicates - 1)
    };
    Some(BootstrapCi {
        point,
        lo: stats[idx(alpha)],
        hi: stats[idx(1.0 - alpha)],
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn interval_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&data, mean, 500, 0.95, 42).unwrap();
        assert!(ci.contains(ci.point));
        assert!(ci.contains(4.5), "{ci:?}");
        assert!(ci.width() < 1.0, "{ci:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, mean, 200, 0.9, 7).unwrap();
        let b = bootstrap_ci(&data, mean, 200, 0.9, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, mean, 200, 0.9, 8).unwrap();
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let data = vec![3.0; 30];
        let ci = bootstrap_ci(&data, mean, 100, 0.95, 1).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn wider_level_wider_interval() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 400, 0.80, 5).unwrap();
        let wide = bootstrap_ci(&data, mean, 400, 0.99, 5).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn invalid_inputs() {
        let data = vec![1.0];
        assert!(bootstrap_ci::<f64, _>(&[], mean, 100, 0.95, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 0, 0.95, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 100, 1.0, 0).is_none());
        assert!(bootstrap_ci(&data, mean, 100, 0.0, 0).is_none());
    }
}
