//! Descriptive statistics: mean, variance, median, quantiles.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divide by `n`); `None` for an empty slice.
///
/// The paper reports population-style variances (e.g. "var = 0.003" for
/// hosting scores), so this is the default.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divide by `n - 1`); `None` if fewer than two values.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two central values for even lengths).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`; `None` for empty input or
/// out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Index of the median element (lower median) of a value slice — used by
/// the paper to identify e.g. "the median country". Ties broken by index.
pub fn median_index(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs"));
    Some(idx[(xs.len() - 1) / 2])
}

/// A compact five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub var: f64,
    /// Minimum value.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample; `None` if empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            var: variance(xs)?,
            min,
            median: median(xs)?,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert!((sample_variance(&xs).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(median_index(&[]), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantiles() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(0.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.25), Some(1.0));
        assert_eq!(quantile(&xs, 0.1), Some(0.4));
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&xs, -0.1), None);
    }

    #[test]
    fn median_index_points_at_lower_median() {
        let xs = [10.0, 5.0, 7.0];
        assert_eq!(median_index(&xs), Some(2)); // 7.0
        let even = [10.0, 5.0, 7.0, 1.0];
        assert_eq!(median_index(&even), Some(1)); // lower median 5.0
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.median, 4.0);
    }
}
