//! # webdep-stats
//!
//! Statistics substrate for the `webdep` toolkit: the numerical machinery
//! the paper's analysis relies on but that is not itself a dependence
//! metric.
//!
//! * [`describe`] — means, variances, medians, quantiles.
//! * [`corr`] — Pearson and Spearman correlation with two-sided p-values
//!   (computed via the incomplete beta function, no external stats crate).
//! * [`jaccard`] — set similarity, used for the §5.4 top-list churn analysis.
//! * [`scale`] — min-max feature scaling used before clustering (§5.2).
//! * [`hist`] — fixed-width histograms and empirical CDFs (Figures 11, 12).
//! * [`bootstrap`] — seeded percentile bootstrap confidence intervals.
//! * [`par`] — scoped-thread parallel map with deterministic output order,
//!   used to spread country tables and bootstrap replicates across cores.
//! * [`affinity`] — affinity propagation clustering (Frey & Dueck 2007),
//!   the algorithm the paper uses to find provider classes.
//! * [`kmeans`] — k-means++ baseline clustering for comparison.
//! * [`special`] — ln-gamma / incomplete beta special functions backing the
//!   p-values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod bootstrap;
pub mod corr;
pub mod describe;
pub mod hist;
pub mod jaccard;
pub mod kmeans;
pub mod par;
pub mod scale;
pub mod special;

pub use affinity::{affinity_propagation, AffinityConfig, Clustering};
pub use bootstrap::{
    bootstrap_ci, bootstrap_ci_indexed, bootstrap_ci_indexed_abortable,
    bootstrap_ci_indexed_scratch, BootstrapAborted, BootstrapCi, BootstrapScratch, Resample,
};
pub use corr::{pearson, spearman, Correlation, CorrelationStrength};
pub use describe::Summary;
pub use jaccard::jaccard_index;
pub use par::{par_map, par_map_indices};
pub use scale::min_max_scale_columns;
