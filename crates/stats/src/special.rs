//! Special functions backing the correlation p-values: natural log of the
//! gamma function and the regularized incomplete beta function.
//!
//! Implementations follow the classic Lanczos approximation and the
//! continued-fraction expansion of the incomplete beta (Numerical Recipes
//! style), accurate to well beyond what two-sided p-value reporting needs.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Valid for `x > 0`; panics otherwise.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `x` in `[0, 1]`,
/// `a, b > 0`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-14;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value for a Student-t statistic `t` with `df` degrees of
/// freedom, via `I_x(df/2, 1/2)` with `x = df / (df + t^2)`.
pub fn t_test_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let x = 0.3;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1, 1) = x (uniform CDF).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_reference_value() {
        // I_0.5(2, 2) = 0.5 by symmetry.
        assert!((incomplete_beta(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        // I_0.25(2, 2) = 3x^2 - 2x^3 at x = 0.25 -> 0.15625.
        assert!((incomplete_beta(2.0, 2.0, 0.25) - 0.15625).abs() < 1e-10);
    }

    #[test]
    fn t_test_matches_known_quantiles() {
        // t = 0 -> p = 1.
        assert!((t_test_two_sided(0.0, 10.0) - 1.0).abs() < 1e-12);
        // Large |t| -> p near 0.
        assert!(t_test_two_sided(50.0, 10.0) < 1e-10);
        // t = 2.228, df = 10 is the classic 5% two-sided critical value.
        let p = t_test_two_sided(2.228, 10.0);
        assert!((p - 0.05).abs() < 1e-3, "{p}");
        // Infinite t: p = 0.
        assert_eq!(t_test_two_sided(f64::INFINITY, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "x must be in [0, 1]")]
    fn incomplete_beta_rejects_bad_x() {
        let _ = incomplete_beta(1.0, 1.0, 1.5);
    }
}
