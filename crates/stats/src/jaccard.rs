//! Jaccard set similarity, used in §5.4 to quantify top-list churn between
//! the May-2023 and May-2025 measurements (Russia ~0.4, global mean ~0.37).

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard index `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
///
/// Two empty sets are identical by convention (returns 1.0).
pub fn jaccard_index<T: Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard index over iterators of items (collects into sets first).
pub fn jaccard_of<I, J, T>(a: I, b: J) -> f64
where
    I: IntoIterator<Item = T>,
    J: IntoIterator<Item = T>,
    T: Hash + Eq,
{
    let sa: HashSet<T> = a.into_iter().collect();
    let sb: HashSet<T> = b.into_iter().collect();
    jaccard_index(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard_of(["a", "b"], ["b", "a"]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard_of(["a"], ["b"]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {a,b,c} vs {b,c,d}: 2 / 4.
        assert_eq!(jaccard_of(["a", "b", "c"], ["b", "c", "d"]), 0.5);
    }

    #[test]
    fn empty_conventions() {
        let e: HashSet<&str> = HashSet::new();
        let s: HashSet<&str> = ["x"].into_iter().collect();
        assert_eq!(jaccard_index(&e, &e), 1.0);
        assert_eq!(jaccard_index(&e, &s), 0.0);
    }

    #[test]
    fn duplicates_ignored() {
        assert_eq!(jaccard_of(["a", "a", "b"], ["a", "b", "b"]), 1.0);
    }
}
