//! k-means++ baseline clustering.
//!
//! The paper uses affinity propagation; k-means is included as the obvious
//! baseline so the choice can be ablated (see the `fig06_provider_classes`
//! bench and `examples/provider_classes.rs`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centroid per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label per input point.
    pub labels: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Runs k-means++ with Lloyd iterations until assignment is stable or
/// `max_iter` sweeps pass. Deterministic for a given `seed`.
///
/// Returns `None` if `k == 0` or there are fewer points than `k`.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> Option<KMeansResult> {
    if k == 0 || points.len() < k {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total == 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(points[rng.random_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }

    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k > 0");
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, &v) in sums[l].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
            // An empty cluster keeps its old centroid.
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| sq_dist(p, &centroids[l]))
        .sum();
    Some(KMeansResult {
        centroids,
        labels,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        let r = kmeans(&pts, 2, 42, 100).unwrap();
        // Points at even indices share a label; odd another.
        let l0 = r.labels[0];
        let l1 = r.labels[1];
        assert_ne!(l0, l1);
        for (i, &l) in r.labels.iter().enumerate() {
            assert_eq!(l, if i % 2 == 0 { l0 } else { l1 });
        }
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let a = kmeans(&pts, 3, 7, 50).unwrap();
        let b = kmeans(&pts, 3, 7, 50).unwrap();
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans(&[], 1, 0, 10).is_none());
        assert!(kmeans(&[vec![1.0]], 2, 0, 10).is_none());
        assert!(kmeans(&[vec![1.0]], 0, 0, 10).is_none());
        // k equal to n: every point its own cluster is permissible.
        let pts = vec![vec![0.0], vec![10.0]];
        let r = kmeans(&pts, 2, 0, 10).unwrap();
        assert_ne!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn identical_points() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let r = kmeans(&pts, 2, 3, 10).unwrap();
        assert_eq!(r.labels.len(), 5);
        assert!(r.inertia < 1e-12);
    }
}
