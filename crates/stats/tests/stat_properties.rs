//! Property tests for the statistics substrate.

use proptest::prelude::*;
use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
use webdep_stats::bootstrap::bootstrap_ci;
use webdep_stats::corr::{average_ranks, pearson, spearman};
use webdep_stats::describe::{mean, median, quantile, variance};
use webdep_stats::hist::{ecdf, Histogram};
use webdep_stats::kmeans::kmeans;
use webdep_stats::scale::min_max_scale_columns;

proptest! {
    /// Pearson is symmetric, bounded, and invariant to affine transforms.
    #[test]
    fn pearson_invariants(
        xs in prop::collection::vec(-100.0f64..100.0, 4..40),
        a in 0.1f64..10.0,
        b in -50.0f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 1.5 - 3.0).collect();
        if let Some(c) = pearson(&xs, &ys) {
            prop_assert!((c.rho - 1.0).abs() < 1e-9, "perfect line: {}", c.rho);
        }
        let zs: Vec<f64> = xs.iter().enumerate().map(|(i, x)| x + ((i * 37) % 11) as f64).collect();
        if let (Some(f), Some(r)) = (pearson(&xs, &zs), pearson(&zs, &xs)) {
            prop_assert!((f.rho - r.rho).abs() < 1e-12, "symmetry");
            prop_assert!((-1.0..=1.0).contains(&f.rho));
            // Affine transform of one side leaves |rho| fixed.
            let ws: Vec<f64> = zs.iter().map(|z| a * z + b).collect();
            if let Some(t) = pearson(&xs, &ws) {
                prop_assert!((t.rho - f.rho).abs() < 1e-9, "affine invariance");
            }
        }
    }

    /// Spearman equals Pearson on ranks and is monotone-invariant.
    #[test]
    fn spearman_monotone_invariance(xs in prop::collection::vec(-50.0f64..50.0, 4..30)) {
        let cubes: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        if let (Some(s1), Some(s2)) = (spearman(&xs, &cubes), spearman(&xs, &xs)) {
            prop_assert!((s1.rho - s2.rho).abs() < 1e-9);
        }
    }

    /// Average ranks are a permutation-invariant relabeling summing to
    /// n(n+1)/2.
    #[test]
    fn ranks_sum(xs in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let ranks = average_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantile_monotone(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.50).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert_eq!(median(&xs).unwrap(), q50);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= q25 && q75 <= hi);
        prop_assert!(variance(&xs).unwrap() >= 0.0);
        let _ = mean(&xs);
    }

    /// Histograms conserve mass; the ECDF ends at 1.
    #[test]
    fn histogram_mass(xs in prop::collection::vec(0.0f64..1.0, 0..200), bins in 1usize..20) {
        let h = Histogram::new(0.0, 1.0, bins, &xs);
        prop_assert_eq!(h.total() + h.out_of_range, xs.len() as u64);
        let curve = ecdf(&xs);
        if let Some(&(_, last)) = curve.last() {
            prop_assert!((last - 1.0).abs() < 1e-12);
        }
    }

    /// Min-max scaling maps into [0,1] and preserves column order.
    #[test]
    fn minmax_preserves_order(col in prop::collection::vec(-100.0f64..100.0, 2..40)) {
        let rows: Vec<Vec<f64>> = col.iter().map(|&v| vec![v]).collect();
        let scaled = min_max_scale_columns(&rows);
        for w in scaled.windows(2).zip(rows.windows(2)) {
            let (s, r) = w;
            prop_assert_eq!(s[0][0] < s[1][0], r[0][0] < r[1][0]);
            prop_assert!((0.0..=1.0).contains(&s[0][0]));
        }
    }

    /// k-means labels are a partition with k' <= k non-empty clusters, and
    /// inertia never increases with more clusters (same seed family).
    #[test]
    fn kmeans_partition(pts_raw in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 6..40)) {
        let pts: Vec<Vec<f64>> = pts_raw.iter().map(|&(a, b)| vec![a, b]).collect();
        let k2 = kmeans(&pts, 2, 9, 50).unwrap();
        prop_assert_eq!(k2.labels.len(), pts.len());
        prop_assert!(k2.labels.iter().all(|&l| l < 2));
        let k5 = kmeans(&pts, 5.min(pts.len()), 9, 50).unwrap();
        // More clusters cannot be dramatically worse.
        prop_assert!(k5.inertia <= k2.inertia * 1.5 + 1e-9);
    }

    /// Affinity propagation always returns a valid clustering on
    /// well-formed inputs.
    #[test]
    fn affinity_valid(pts_raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..25)) {
        let pts: Vec<Vec<f64>> = pts_raw.iter().map(|&(a, b)| vec![a, b]).collect();
        let c = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
        prop_assert!(!c.exemplars.is_empty());
        prop_assert_eq!(c.exemplar_of.len(), pts.len());
        for &e in &c.exemplar_of {
            prop_assert!(c.exemplars.contains(&e));
        }
        // Exemplars map to themselves.
        for &e in &c.exemplars {
            prop_assert_eq!(c.exemplar_of[e], e);
        }
    }

    /// Bootstrap intervals contain the point estimate for the mean.
    #[test]
    fn bootstrap_contains_point(xs in prop::collection::vec(-10.0f64..10.0, 2..60)) {
        let stat = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let ci = bootstrap_ci(&xs, stat, 100, 0.99, 3).unwrap();
        prop_assert!(ci.lo <= ci.hi);
        // 99% percentile interval over the resampling distribution should
        // cover the full-sample mean except in pathological tiny samples.
        prop_assert!(ci.lo - 1e-9 <= ci.point + (ci.width() + 1.0) && ci.hi + 1e-9 >= ci.point - (ci.width() + 1.0));
    }
}
