//! Websites and toplists: the CrUX stand-in.
//!
//! A [`Site`] is one website with its ground-truth dependencies. Countries
//! reference sites by index into the world's site table; a country's
//! toplist mixes a share of the shared *global pool* (the same popular
//! sites appear in many countries, exactly like the real CrUX data) with
//! country-local sites.

use serde::{Deserialize, Serialize};

/// One website and its ground-truth layer assignments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Registered domain, e.g. `kalomi123.com`.
    pub domain: String,
    /// TLD id (into `Universe::tlds`).
    pub tld: u32,
    /// Hosting provider id.
    pub hosting: u32,
    /// DNS provider id.
    pub dns: u32,
    /// CA id securing the site.
    pub ca: u32,
    /// Content language tag.
    pub language: String,
    /// True for global-pool sites shared across countries.
    pub is_global: bool,
}

/// Deterministic, allocation-light domain name generator.
///
/// Names look like `<syllables><counter>.<tld>`; the counter guarantees
/// global uniqueness, the syllables keep them humane in reports.
#[derive(Debug)]
pub struct DomainForge {
    counter: u64,
}

const SYLLABLES: [&str; 16] = [
    "ka", "lo", "mi", "ve", "tor", "zan", "pel", "ri", "su", "den", "fa", "gu", "hab", "nor",
    "qui", "bex",
];

impl DomainForge {
    /// Creates a forge; `start` offsets the counter so snapshots can avoid
    /// colliding with each other.
    pub fn new(start: u64) -> Self {
        DomainForge { counter: start }
    }

    /// Produces the next domain under `tld_label`.
    pub fn next(&mut self, tld_label: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        let s1 = SYLLABLES[(n % 16) as usize];
        let s2 = SYLLABLES[((n / 16) % 16) as usize];
        let s3 = SYLLABLES[((n / 256) % 16) as usize];
        format!("{s1}{s2}{s3}{n}.{tld_label}")
    }

    /// How many names have been issued.
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

/// Expands an owner count table into a per-slot assignment: owner `o` with
/// count `k` occupies `k` consecutive slots, largest owners first. The
/// result has `sum(counts)` entries.
pub fn expand_counts(owners_counts: &[(u32, u64)]) -> Vec<u32> {
    let mut sorted: Vec<(u32, u64)> = owners_counts.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: u64 = sorted.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total as usize);
    for (owner, count) in sorted {
        out.extend(std::iter::repeat_n(owner, count as usize));
    }
    out
}

/// A deterministic in-place shuffle (xorshift-based Fisher–Yates), used to
/// decorrelate layer assignments without pulling in a full RNG.
pub fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn forge_unique_names() {
        let mut f = DomainForge::new(0);
        let names: HashSet<String> = (0..10_000).map(|_| f.next("com")).collect();
        assert_eq!(names.len(), 10_000);
        assert_eq!(f.issued(), 10_000);
        assert!(names.iter().all(|n| n.ends_with(".com")));
    }

    #[test]
    fn forge_offset_does_not_collide() {
        let mut a = DomainForge::new(0);
        let mut b = DomainForge::new(1_000_000);
        let sa: HashSet<String> = (0..1000).map(|_| a.next("net")).collect();
        let sb: HashSet<String> = (0..1000).map(|_| b.next("net")).collect();
        assert!(sa.is_disjoint(&sb));
    }

    #[test]
    fn names_are_valid_dns() {
        let mut f = DomainForge::new(77);
        for _ in 0..100 {
            let d = f.next("io");
            assert!(webdep_dns::DomainName::parse(&d).is_ok(), "{d}");
        }
    }

    #[test]
    fn expand_counts_layout() {
        let slots = expand_counts(&[(7, 1), (3, 3), (5, 2)]);
        assert_eq!(slots, vec![3, 3, 3, 5, 5, 7]);
    }

    #[test]
    fn expand_empty() {
        assert!(expand_counts(&[]).is_empty());
        assert!(expand_counts(&[(1, 0)]).is_empty());
    }

    #[test]
    fn shuffle_deterministic_and_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        seeded_shuffle(&mut a, 42);
        seeded_shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.sort_unstable();
        assert_eq!(c, (0..100).collect::<Vec<u32>>());
        let mut d: Vec<u32> = (0..100).collect();
        seeded_shuffle(&mut d, 43);
        assert_ne!(a, d);
    }
}
