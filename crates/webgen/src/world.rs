//! World generation: calibrated per-country toplists over a shared global
//! site pool.
//!
//! For every country and layer, assembly proceeds in four steps:
//!
//! 1. **Shape** — solve for an anonymous count vector hitting the paper's
//!    reported centralization score ([`crate::calibrate::solve_counts`]),
//!    with the top-provider share anchored by §5/§6/§7/Appendix B quotes.
//! 2. **Identity** — assign providers to ranks with a budgeted greedy that
//!    honors the country's insularity target and the §5.3 cross-border
//!    dependence map (`assign_identities`).
//! 3. **Mixture** — subtract the contribution of the country's share of
//!    the global site pool (those sites' dependencies are fixed world-wide)
//!    and re-adjust the remainder so the *total* still hits the target
//!    ([`crate::calibrate::adjust_to_target`]).
//! 4. **Materialize** — expand counts into concrete [`Site`]s; hosting and
//!    DNS are expanded in the same order so the Cloudflare blocks overlap,
//!    reproducing the paper's observation that hosting and DNS are bundled.

use crate::calibrate::{adjust_to_target, solve_counts};
use crate::country::{CountryRecord, Layer};
use crate::depmap;
use crate::paper_data::COUNTRIES;
use crate::provider::TldKind;
use crate::toplist::{expand_counts, seeded_shuffle, DomainForge, Site};
use crate::universe::Universe;
use std::collections::HashMap;

/// World generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every derived decision is a pure function of it.
    pub seed: u64,
    /// Sites per country toplist (the paper uses 10,000).
    pub sites_per_country: u32,
    /// Size of the shared global site pool.
    pub global_pool_size: u32,
    /// Regional-provider tail scale in `(0, 1]` (1.0 = paper's ~12k).
    pub tail_scale: f64,
    /// Approximate provider pool size per country/layer distribution.
    pub pool_target: usize,
}

impl WorldConfig {
    /// Full paper scale: 150 x 10k sites, ~12k providers.
    pub fn paper() -> Self {
        WorldConfig {
            seed: 42,
            sites_per_country: 10_000,
            global_pool_size: 30_000,
            tail_scale: 1.0,
            pool_target: 420,
        }
    }

    /// Small scale for integration tests and examples (seconds, not
    /// minutes).
    pub fn small() -> Self {
        WorldConfig {
            seed: 42,
            sites_per_country: 1_000,
            global_pool_size: 3_000,
            tail_scale: 0.10,
            pool_target: 140,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> Self {
        WorldConfig {
            seed: 42,
            sites_per_country: 300,
            global_pool_size: 900,
            tail_scale: 0.04,
            pool_target: 60,
        }
    }
}

/// A fully generated world: sites, toplists, and the entity universe.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// Provider / CA / TLD universe.
    pub universe: Universe,
    /// All unique sites.
    pub sites: Vec<Site>,
    /// Per-country toplists (indexed like [`COUNTRIES`]); entries are
    /// indices into `sites`, rank order.
    pub toplists: Vec<Vec<u32>>,
    /// The global top list (first `sites_per_country` global-pool sites).
    pub global_top: Vec<u32>,
    /// Snapshot label, e.g. `2023-05`.
    pub label: String,
}

/// A candidate group for identity assignment: a site budget and an ordered
/// candidate list.
struct Group {
    budget_sites: f64,
    candidates: Vec<u32>,
    next: usize,
}

impl Group {
    fn new(budget_share: f64, total: u64, candidates: Vec<u32>) -> Self {
        Group {
            budget_sites: budget_share * total as f64,
            candidates,
            next: 0,
        }
    }

    fn has_candidates(&self) -> bool {
        self.next < self.candidates.len()
    }
}

/// Assigns owners to a sorted (nonincreasing) anonymous count vector.
///
/// `counts[0]` goes to `head`; each subsequent rank goes to the group with
/// the largest remaining budget that still has candidates (ties and
/// exhausted budgets fall through to whichever group has the most unused
/// candidates). Every owner is used at most once.
fn assign_identities(counts: &[u64], head: u32, groups: Vec<Group>) -> Vec<(u32, u64)> {
    assign_identities_pinned(counts, head, &[], groups)
}

/// [`assign_identities`] with pinned owners for the ranks right behind the
/// head — used for the paper's dominant runner-up anchors
/// (SuperHosting.BG, UAB, Asseco) and the quoted TLD decompositions
/// (e.g. Kyrgyzstan: .com 29%, .ru 22%, .kg 12%).
fn assign_identities_pinned(
    counts: &[u64],
    head: u32,
    pinned: &[u32],
    mut groups: Vec<Group>,
) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = Vec::with_capacity(counts.len());
    // Deduplicate candidates across groups (and exclude the pinned owners)
    // so an owner cannot be assigned twice.
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    seen.insert(head);
    seen.extend(pinned.iter().copied());
    for g in &mut groups {
        g.candidates.retain(|c| seen.insert(*c));
    }
    out.push((head, counts[0]));
    let mut rest = &counts[1..];
    for &owner in pinned {
        let Some((&c1, tail)) = rest.split_first() else {
            break;
        };
        out.push((owner, c1));
        rest = tail;
    }
    for &count in rest {
        let pick = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.has_candidates())
            .max_by(|(_, a), (_, b)| {
                a.budget_sites
                    .partial_cmp(&b.budget_sites)
                    .expect("budgets are finite")
            })
            .map(|(i, _)| i);
        let Some(gi) = pick else {
            break; // ran out of owners; the remaining ranks are dropped
        };
        let g = &mut groups[gi];
        let owner = g.candidates[g.next];
        g.next += 1;
        g.budget_sites -= count as f64;
        out.push((owner, count));
    }
    out
}

/// Computes per-owner counts among a set of already-assigned sites.
fn tally<F: Fn(&Site) -> u32>(sites: &[Site], picks: &[u32], key: F) -> HashMap<u32, u64> {
    let mut m: HashMap<u32, u64> = HashMap::new();
    for &idx in picks {
        *m.entry(key(&sites[idx as usize])).or_insert(0) += 1;
    }
    m
}

/// Mixes the fixed global-pool contribution into the assigned target
/// counts and returns per-owner *local* counts summing to `local_total`.
fn mix_with_global(
    target_s: f64,
    assigned: Vec<(u32, u64)>,
    global_contrib: &HashMap<u32, u64>,
    local_total: u64,
) -> Vec<(u32, u64)> {
    // Owner-indexed combined counts, floored by the global contribution.
    let mut owners: Vec<u32> = assigned.iter().map(|&(o, _)| o).collect();
    for &o in global_contrib.keys() {
        if !owners.contains(&o) {
            owners.push(o);
        }
    }
    let idx_of: HashMap<u32, usize> = owners.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut combined = vec![0u64; owners.len()];
    for &(o, c) in &assigned {
        combined[idx_of[&o]] = c;
    }
    let mut floors = vec![0u64; owners.len()];
    for (&o, &c) in global_contrib {
        floors[idx_of[&o]] = c;
        if combined[idx_of[&o]] < c {
            combined[idx_of[&o]] = c;
        }
    }
    // Re-balance the total to local_total + global_total.
    let global_total: u64 = global_contrib.values().sum();
    let want_total = local_total + global_total;
    let mut have: u64 = combined.iter().sum();
    // Shed surplus *proportionally* to each owner's local slack so the
    // assigned shape (head, dependence budgets) survives the rebalance.
    if have > want_total {
        let surplus = have - want_total;
        let total_slack: u64 = combined.iter().zip(&floors).map(|(&c, &f)| c - f).sum();
        debug_assert!(total_slack >= surplus, "floors exceed the site budget");
        let mut cut_left = surplus;
        for i in 0..combined.len() {
            let slack = combined[i] - floors[i];
            let cut = ((slack as u128 * surplus as u128 / total_slack.max(1) as u128) as u64)
                .min(cut_left);
            combined[i] -= cut;
            cut_left -= cut;
        }
        // Rounding leftovers: take single sites from the largest slack.
        while cut_left > 0 {
            let i = (0..combined.len())
                .filter(|&i| combined[i] > floors[i])
                .max_by_key(|&i| combined[i] - floors[i])
                .expect("surplus implies slack somewhere");
            combined[i] -= 1;
            cut_left -= 1;
        }
        have = want_total;
    }
    // Grow a deficit on the head (index of max) — rare.
    if have < want_total {
        let i = (0..combined.len())
            .max_by_key(|&i| combined[i])
            .expect("non-empty");
        combined[i] += want_total - have;
    }
    adjust_to_target(&mut combined, &floors, target_s);
    owners
        .into_iter()
        .zip(combined)
        .zip(floors)
        .map(|((o, c), f)| (o, c - f))
        .filter(|&(_, c)| c > 0)
        .collect()
}

/// Cheap deterministic per-country hash for pool-size jitter etc.
fn country_hash(seed: u64, code: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in code.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl World {
    /// Index of a country code in [`COUNTRIES`] order.
    pub fn country_index(code: &str) -> Option<usize> {
        COUNTRIES.iter().position(|c| c.code == code)
    }

    /// Generates the world.
    pub fn generate(config: WorldConfig) -> World {
        let universe = Universe::build(config.tail_scale);
        let mut forge = DomainForge::new(0);
        let mut sites: Vec<Site> = Vec::new();

        // ---- Global pool ----
        let g = config.global_pool_size as u64;
        let pool = |s: f64| (config.pool_target as f64 * (0.8 + s)).round() as usize;
        let cf = universe.provider_by_name("Cloudflare").expect("exists");
        let le = universe.ca_by_name("Let's Encrypt").expect("exists");
        let com = universe.tld_by_label("com").expect("exists");

        // Regional mix candidates: each country's largest providers,
        // round-robin so the pool touches many countries.
        let mut regional_rr: Vec<u32> = Vec::new();
        for slot in 0..4 {
            for c in &COUNTRIES {
                if let Some(list) = universe.regional_by_country.get(c.code) {
                    if let Some(&id) = list.get(slot) {
                        regional_rr.push(id);
                    }
                }
            }
        }

        let s_host_global = 0.14;
        let host_counts = solve_counts(
            s_host_global,
            g,
            pool(s_host_global),
            depmap::head_share_for_score(s_host_global),
        );
        let host_assign = assign_identities(
            &host_counts,
            cf,
            vec![
                Group::new(0.72, g, universe.global_hosting.clone()),
                Group::new(0.28, g, regional_rr.clone()),
            ],
        );
        let s_dns_global = 0.13;
        let dns_counts = solve_counts(
            s_dns_global,
            g,
            pool(s_dns_global),
            depmap::head_share_for_score(s_dns_global),
        );
        let dns_regional_rr: Vec<u32> = regional_rr
            .iter()
            .copied()
            .filter(|&id| universe.provider(id).offers_dns)
            .collect();
        let dns_assign = assign_identities(
            &dns_counts,
            cf,
            vec![
                Group::new(0.74, g, universe.global_dns.clone()),
                Group::new(0.26, g, dns_regional_rr.clone()),
            ],
        );
        let s_ca_global = 0.19;
        let ca_counts = solve_counts(
            s_ca_global,
            g,
            30,
            depmap::head_share_for_score(s_ca_global),
        );
        // The seven large global CAs (plus the two medium ones) carry ~98%
        // of the web (§7.1); the regional tail is a rounding error in the
        // global pool.
        let big_cas: Vec<u32> = [
            "DigiCert",
            "Sectigo",
            "Google Trust Services",
            "Amazon Trust Services",
            "GlobalSign",
            "GoDaddy",
            "Entrust",
            "IdenTrust",
        ]
        .iter()
        .filter_map(|n| universe.ca_by_name(n))
        .collect();
        // The pool's small CA tail draws from the *small* regional CAs:
        // large regional authorities (Asseco, SECOM, TWCA, ...) live in
        // their home markets, not on globally popular sites (§7.2).
        let ca_tail: Vec<u32> = universe
            .cas
            .iter()
            .filter(|ca| ca.tier != crate::provider::ProviderTier::LargeRegional)
            .map(|ca| ca.id)
            .collect();
        let ca_assign = assign_identities(
            &ca_counts,
            le,
            vec![Group::new(0.985, g, big_cas), Group::new(0.015, g, ca_tail)],
        );
        // Global sites skew hard to .com — this is why the paper's Figure 12
        // notes the global top list is *not* representative of TLD
        // centralization.
        let s_tld_global = 0.50;
        let tld_counts = solve_counts(s_tld_global, g, 40, 0.70);
        let tld_assign = assign_identities(
            &tld_counts,
            com,
            vec![Group::new(
                1.0,
                g,
                (0..universe.tlds.len() as u32).collect(),
            )],
        );

        let mut host_slots = expand_counts(&host_assign);
        let mut dns_slots = expand_counts(&dns_assign);
        let mut ca_slots = expand_counts(&ca_assign);
        let mut tld_slots = expand_counts(&tld_assign);
        // Decouple TLD from providers a little (global sites on Cloudflare
        // are not exclusively .com), but keep hosting/DNS aligned.
        seeded_shuffle(&mut tld_slots, config.seed ^ 0x7777);
        // Mild decorrelation of the DNS tail (heads still overlap).
        let keep = (dns_slots.len() as f64 * 0.8) as usize;
        seeded_shuffle(&mut dns_slots[keep..], config.seed ^ 0x8888);
        // Pool *rank* must not correlate with provider (rank 1 is not
        // Cloudflare's first customer) — apply one common permutation to
        // all attribute slots so countries picking the pool top get a
        // representative provider mixture while hosting/DNS stay aligned.
        let mut perm: Vec<u32> = (0..g as u32).collect();
        seeded_shuffle(&mut perm, config.seed ^ 0x9999);
        host_slots = perm.iter().map(|&i| host_slots[i as usize]).collect();
        dns_slots = perm.iter().map(|&i| dns_slots[i as usize]).collect();
        ca_slots = perm.iter().map(|&i| ca_slots[i as usize]).collect();
        tld_slots = perm.iter().map(|&i| tld_slots[i as usize]).collect();

        for i in 0..g as usize {
            let tld = tld_slots[i];
            let domain = forge.next(&universe.tld(tld).label);
            sites.push(Site {
                domain,
                tld,
                hosting: host_slots[i],
                dns: dns_slots[i],
                ca: ca_slots[i],
                language: "en".to_string(),
                is_global: true,
            });
        }

        // The global toplist: pool order is rank order.
        let global_top: Vec<u32> =
            (0..config.sites_per_country.min(config.global_pool_size)).collect();

        // ---- Per-country toplists ----
        let mut toplists: Vec<Vec<u32>> = Vec::with_capacity(COUNTRIES.len());
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let toplist =
                Self::generate_country(&config, &universe, country, ci, &mut forge, &mut sites);
            toplists.push(toplist);
        }

        World {
            config,
            universe,
            sites,
            toplists,
            global_top,
            label: "2023-05".to_string(),
        }
    }

    /// Generates one country's toplist, appending its local sites.
    fn generate_country(
        config: &WorldConfig,
        universe: &Universe,
        country: &CountryRecord,
        country_idx: usize,
        forge: &mut DomainForge,
        sites: &mut Vec<Site>,
    ) -> Vec<u32> {
        let c_total = config.sites_per_country as u64;
        let h = country_hash(config.seed, country.code);
        let s_host = country.paper_score(Layer::Hosting);
        let local_share = depmap::default_local_share(country);

        // Global-pool fraction: centralized countries lean on global sites,
        // highly insular ones on local content.
        let f_g = (0.30 + 0.9 * s_host - 0.35 * local_share).clamp(0.12, 0.60);
        let n_g = ((f_g * c_total as f64) as u64).min(config.global_pool_size as u64);
        let n_local = c_total - n_g;

        // Global picks: every country carries the global head (the top
        // half of its quota comes straight from the pool top — google.com
        // is popular everywhere), then a country-phased stride through the
        // rest of the pool.
        let phase = (h % 2) as u32;
        let half = (n_g / 2) as u32;
        let picks: Vec<u32> = (0..n_g as u32)
            .map(|k| {
                if k < half {
                    return k;
                }
                let idx = half + (k - half) * 2 + phase;
                if (idx as u64) < config.global_pool_size as u64 {
                    idx
                } else {
                    k
                }
            })
            .collect();

        let pool_jitter = |base: usize| {
            let v = (h >> 8) % 40;
            (base as u64 * (80 + v) / 100) as usize
        };

        // --- layer assembly helper ---
        let assemble = |layer: Layer,
                        head: u32,
                        pins: Vec<(u32, f64)>,
                        groups: Vec<Group>,
                        pool_size: usize,
                        picks_tally: &HashMap<u32, u64>|
         -> Vec<(u32, u64)> {
            let target = country.paper_score(layer);
            let mut head_share = depmap::head_share(country, layer);
            let counts;
            let mut owners: Vec<u32> = Vec::new();
            if pins.is_empty() {
                counts = solve_counts(target, c_total, pool_size.max(8), head_share);
            } else {
                // Keep pins sorted by share so pinned ranks stay ordered,
                // and shrink shares front-to-back until the fixed heads fit
                // under the target score.
                let mut pins = pins;
                pins.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                let mut pin_sq: f64 = pins.iter().map(|&(_, s)| s * s).sum();
                let budget = target * 0.985;
                if pin_sq > budget {
                    let scale = (budget * 0.9 / pin_sq).sqrt();
                    for p in &mut pins {
                        p.1 *= scale;
                    }
                    pin_sq = pins.iter().map(|&(_, s)| s * s).sum();
                }
                let head_max = (budget - pin_sq).max(0.0004).sqrt();
                head_share = head_share.min(head_max).max(0.02);
                let mut heads = vec![head_share];
                heads.extend(pins.iter().map(|&(_, s)| s));
                owners = pins.iter().map(|&(o, _)| o).collect();
                counts =
                    crate::calibrate::solve_counts_multi(target, c_total, pool_size.max(8), &heads);
            }
            let assigned = assign_identities_pinned(&counts, head, &owners, groups);
            mix_with_global(target, assigned, picks_tally, n_local)
        };

        // Candidate lists.
        let cf = universe.provider_by_name("Cloudflare").expect("exists");
        let amazon = universe.provider_by_name("Amazon").expect("exists");
        let host_head = if country.code == "JP" { amazon } else { cf };
        let local_candidates: Vec<u32> = universe
            .regional_by_country
            .get(country.code)
            .cloned()
            .unwrap_or_default();
        let deps = depmap::foreign_deps(country.code);
        let foreign_budget: f64 = deps.iter().map(|(_, s)| s).sum();

        // Filler: other countries' small providers, phased by country so
        // different countries pull different tails (this is what gives the
        // XS-RP class its one-country endemicity).
        let mut filler: Vec<u32> = Vec::new();
        let n_countries = COUNTRIES.len();
        for step in 0..6 {
            for k in 0..n_countries {
                let cc = COUNTRIES[(country_idx + 37 * (k + 1)) % n_countries].code;
                if cc == country.code {
                    continue;
                }
                if let Some(list) = universe.regional_by_country.get(cc) {
                    // Take from the back: the XS tail.
                    let back = list.len().saturating_sub(1 + step + (h as usize + k) % 3);
                    if let Some(&id) = list.get(back) {
                        filler.push(id);
                    }
                }
            }
        }

        let head_share_host = depmap::head_share(country, Layer::Hosting);
        let global_budget = (1.0 - head_share_host - local_share - foreign_budget - 0.04).max(0.05);

        // Hosting.
        let mut host_groups = vec![Group::new(local_share, c_total, local_candidates.clone())];
        for &(tcc, share) in &deps {
            host_groups.push(Group::new(
                share,
                c_total,
                universe
                    .regional_by_country
                    .get(tcc)
                    .cloned()
                    .unwrap_or_default(),
            ));
        }
        host_groups.push(Group::new(
            global_budget,
            c_total,
            universe.global_hosting.clone(),
        ));
        host_groups.push(Group::new(0.04, c_total, filler.clone()));
        let picks_host = {
            let mut m = HashMap::new();
            for &p in &picks {
                *m.entry(sites[p as usize].hosting).or_insert(0) += 1;
            }
            m
        };
        let host_pins: Vec<(u32, f64)> = depmap::second_anchor(country.code, Layer::Hosting)
            .and_then(|(name, share)| universe.provider_by_name(name).map(|id| (id, share)))
            .into_iter()
            .collect();
        let host_local = assemble(
            Layer::Hosting,
            host_head,
            host_pins,
            host_groups,
            pool_jitter(config.pool_target),
            &picks_host,
        );

        // DNS: same budgets over DNS-capable providers; managed DNS rises.
        let mut dns_global = universe.global_dns.clone();
        // Promote NSONE / UltraDNS into the global head (top-10 in 100+
        // countries per §6.2).
        for name in ["Neustar UltraDNS", "NSONE"] {
            if let Some(id) = universe.provider_by_name(name) {
                if let Some(pos) = dns_global.iter().position(|&x| x == id) {
                    dns_global.remove(pos);
                    dns_global.insert(2.min(dns_global.len()), id);
                }
            }
        }
        let dns_local: Vec<u32> = local_candidates
            .iter()
            .copied()
            .filter(|&id| universe.provider(id).offers_dns)
            .collect();
        let mut dns_groups = vec![Group::new(local_share, c_total, dns_local)];
        for &(tcc, share) in &deps {
            dns_groups.push(Group::new(
                share,
                c_total,
                universe
                    .regional_by_country
                    .get(tcc)
                    .map(|l| {
                        l.iter()
                            .copied()
                            .filter(|&id| universe.provider(id).offers_dns)
                            .collect()
                    })
                    .unwrap_or_default(),
            ));
        }
        dns_groups.push(Group::new(global_budget, c_total, dns_global));
        dns_groups.push(Group::new(
            0.04,
            c_total,
            filler
                .iter()
                .copied()
                .filter(|&id| universe.provider(id).offers_dns)
                .collect(),
        ));
        let picks_dns = {
            let mut m = HashMap::new();
            for &p in &picks {
                *m.entry(sites[p as usize].dns).or_insert(0) += 1;
            }
            m
        };
        let dns_local_counts = assemble(
            Layer::Dns,
            host_head,
            Vec::new(),
            dns_groups,
            pool_jitter(config.pool_target),
            &picks_dns,
        );

        // CA: Let's Encrypt head, the big 7 + regional usage table.
        let le = universe.ca_by_name("Let's Encrypt").expect("exists");
        let mut ca_groups: Vec<Group> = Vec::new();
        let mut regional_ca_budget = 0.0;
        for (ca_name, share) in depmap::ca_regional_usage(country.code) {
            if let Some(id) = universe.ca_by_name(ca_name) {
                regional_ca_budget += share;
                ca_groups.push(Group::new(share, c_total, vec![id]));
            }
        }
        let big: Vec<u32> = [
            "DigiCert",
            "Sectigo",
            "Google Trust Services",
            "Amazon Trust Services",
            "GlobalSign",
            "GoDaddy",
            "Entrust",
            "IdenTrust",
        ]
        .iter()
        .filter_map(|n| universe.ca_by_name(n))
        .collect();
        let ca_head_share = depmap::head_share(country, Layer::Ca);
        ca_groups.push(Group::new(
            (1.0 - ca_head_share - regional_ca_budget - 0.015).max(0.05),
            c_total,
            big,
        ));
        // Tail CAs: beyond the global authorities, regional CA usage stays
        // geographically close (§7.2: "use of regional CAs is concentrated
        // in their home country") — the filler offers only same-continent
        // CAs, rotated per country.
        let mut ca_filler: Vec<u32> = universe
            .cas
            .iter()
            .filter(|ca| crate::deploy::continent_of_country(&ca.country) == country.continent)
            .map(|ca| ca.id)
            .collect();
        if ca_filler.is_empty() {
            ca_filler = (0..universe.cas.len() as u32).collect();
        }
        let rot = (h % ca_filler.len() as u64) as usize;
        ca_filler.rotate_left(rot);
        ca_groups.push(Group::new(0.015, c_total, ca_filler));
        let picks_ca = {
            let mut m = HashMap::new();
            for &p in &picks {
                *m.entry(sites[p as usize].ca).or_insert(0) += 1;
            }
            m
        };
        let ca_pins: Vec<(u32, f64)> = depmap::second_anchor(country.code, Layer::Ca)
            .and_then(|(name, share)| universe.ca_by_name(name).map(|id| (id, share)))
            .into_iter()
            .collect();
        let ca_pool = 14 + (h % 12) as usize;
        let ca_local_counts = assemble(Layer::Ca, le, ca_pins, ca_groups, ca_pool, &picks_ca);

        // TLD.
        let com = universe.tld_by_label("com").expect("exists");
        let own_cc = universe
            .tld_by_label(&country.code.to_ascii_lowercase())
            .expect("every country has a ccTLD");
        let cc_headed = depmap::CCTLD_HEADED.contains(&country.code);
        let tld_head = if cc_headed { own_cc } else { com };
        let mut tld_groups: Vec<Group> = Vec::new();
        // The non-head of {com, ccTLD}.
        let second_share = if cc_headed {
            depmap::COM_SHARE_ANCHORS
                .iter()
                .find(|&&(cc, _)| cc == country.code)
                .map(|&(_, s)| s)
                .unwrap_or(0.25)
        } else {
            depmap::CCTLD_SHARE_ANCHORS
                .iter()
                .find(|&&(cc, _)| cc == country.code)
                .map(|&(_, s)| s)
                .unwrap_or(0.12)
        };
        let tld_second = if cc_headed { com } else { own_cc };
        let tdeps = depmap::tld_foreign_deps(country.code);
        // Large quoted shares are *pinned* head ranks (the paper's numbers
        // decompose the score, e.g. KG: .com 29% + .ru 22% + .kg 12%);
        // small ones stay budget groups.
        let mut tld_pins: Vec<(u32, f64)> = vec![(tld_second, second_share)];
        for &(tcc, share) in &tdeps {
            if let Some(id) = universe.tld_by_label(&tcc.to_ascii_lowercase()) {
                if share >= 0.07 {
                    tld_pins.push((id, share));
                } else {
                    tld_groups.push(Group::new(share, c_total, vec![id]));
                }
            }
        }
        // Global TLDs, then other ccTLDs as filler.
        let global_tlds: Vec<u32> = universe
            .tlds
            .iter()
            .filter(|t| t.kind == TldKind::Global)
            .map(|t| t.id)
            .collect();
        let mut all_cc: Vec<u32> = universe
            .tlds
            .iter()
            .filter(|t| matches!(t.kind, TldKind::Cc(_)))
            .map(|t| t.id)
            .collect();
        // Rotate so the "other ccTLD" tail differs per country.
        let cc_rot = (h % all_cc.len().max(1) as u64) as usize;
        all_cc.rotate_left(cc_rot);
        let tld_head_share = depmap::head_share(country, Layer::Tld);
        let tdep_budget: f64 = tdeps.iter().map(|(_, s)| s).sum();
        tld_groups.push(Group::new(
            (1.0 - tld_head_share - second_share - tdep_budget - 0.03).max(0.05),
            c_total,
            global_tlds,
        ));
        tld_groups.push(Group::new(0.03, c_total, all_cc));
        let picks_tld = {
            let mut m = HashMap::new();
            for &p in &picks {
                *m.entry(sites[p as usize].tld).or_insert(0) += 1;
            }
            m
        };
        let tld_pool = 22 + (h % 16) as usize;
        let tld_local_counts = assemble(
            Layer::Tld,
            tld_head,
            tld_pins,
            tld_groups,
            tld_pool,
            &picks_tld,
        );

        // ---- Materialize local sites ----
        let pad = |mut slots: Vec<u32>, fallback: u32| -> Vec<u32> {
            // Mixture rounding can leave a few slots short; pad with the
            // layer's head owner.
            while (slots.len() as u64) < n_local {
                slots.push(fallback);
            }
            slots.truncate(n_local as usize);
            slots
        };
        let host_slots = pad(expand_counts(&host_local), host_head);
        let dns_slots = pad(expand_counts(&dns_local_counts), host_head);
        let ca_slots = pad(expand_counts(&ca_local_counts), le);
        let tld_slots = pad(expand_counts(&tld_local_counts), tld_head);

        let language = depmap::language_of(country.code);
        let base_index = sites.len() as u32;
        for i in 0..n_local as usize {
            let tld = tld_slots[i];
            let domain = forge.next(&universe.tld(tld).label);
            sites.push(Site {
                domain,
                tld,
                hosting: host_slots[i],
                dns: dns_slots[i],
                ca: ca_slots[i],
                language: language.clone(),
                is_global: false,
            });
        }

        // Afghanistan's Persian-language coupling (§5.3.3): Persian sites
        // are preferentially the Iran-hosted ones.
        if country.code == "AF" {
            let want_persian = (depmap::AF_PERSIAN_FRACTION * c_total as f64) as usize;
            let mut marked = 0;
            // Pass 1: Iranian-hosted local sites become Persian.
            for i in 0..n_local as usize {
                if marked >= (want_persian as f64 * depmap::AF_PERSIAN_IRAN_HOSTED) as usize {
                    break;
                }
                let s = &mut sites[(base_index + i as u32) as usize];
                if universe.provider(s.hosting).country == "IR" {
                    s.language = "fa".to_string();
                    marked += 1;
                }
            }
            // Pass 2: top up with non-Iranian-hosted sites.
            for i in 0..n_local as usize {
                if marked >= want_persian {
                    break;
                }
                let s = &mut sites[(base_index + i as u32) as usize];
                if s.language != "fa" {
                    s.language = "fa".to_string();
                    marked += 1;
                }
            }
        }

        // Toplist: interleave global picks and local sites with a fixed
        // stride so global sites dominate the head of the ranking.
        let mut toplist: Vec<u32> = Vec::with_capacity(c_total as usize);
        let mut gi = 0usize;
        let mut li = 0u32;
        for rank in 0..c_total {
            let take_global =
                gi < picks.len() && (li as u64 >= n_local || rank as f64 * f_g >= gi as f64);
            if take_global {
                toplist.push(picks[gi]);
                gi += 1;
            } else {
                toplist.push(base_index + li);
                li += 1;
            }
        }
        toplist
    }

    /// Ground-truth per-owner counts for a country's layer.
    pub fn layer_counts(&self, country_idx: usize, layer: Layer) -> Vec<(u32, u64)> {
        let key = |s: &Site| match layer {
            Layer::Hosting => s.hosting,
            Layer::Dns => s.dns,
            Layer::Ca => s.ca,
            Layer::Tld => s.tld,
        };
        let m = tally(&self.sites, &self.toplists[country_idx], key);
        let mut v: Vec<(u32, u64)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Ground-truth centralization score for a country's layer.
    pub fn achieved_score(&self, country_idx: usize, layer: Layer) -> f64 {
        let counts: Vec<u64> = self
            .layer_counts(country_idx, layer)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        webdep_core::centralization::centralization_score_counts_ref(&counts).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn generates_all_toplists() {
        let w = world();
        assert_eq!(w.toplists.len(), 150);
        for (i, t) in w.toplists.iter().enumerate() {
            assert_eq!(
                t.len(),
                w.config.sites_per_country as usize,
                "country {}",
                COUNTRIES[i].code
            );
        }
        assert!(!w.global_top.is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = World::generate(WorldConfig::tiny());
        let b = World::generate(WorldConfig::tiny());
        assert_eq!(a.sites.len(), b.sites.len());
        assert_eq!(a.sites[..50], b.sites[..50]);
        assert_eq!(a.toplists[0], b.toplists[0]);
    }

    #[test]
    fn domains_unique() {
        let w = world();
        let mut names: Vec<&str> = w.sites.iter().map(|s| s.domain.as_str()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn scores_close_to_paper_targets() {
        // Tiny scale is coarse; check a tolerance that scales with C and
        // assert the big orderings hold.
        let w = world();
        let th = World::country_index("TH").unwrap();
        let ir = World::country_index("IR").unwrap();
        let us = World::country_index("US").unwrap();
        let s_th = w.achieved_score(th, Layer::Hosting);
        let s_ir = w.achieved_score(ir, Layer::Hosting);
        let s_us = w.achieved_score(us, Layer::Hosting);
        assert!(s_th > s_us && s_us > s_ir, "{s_th} {s_us} {s_ir}");
        assert!((s_th - 0.3548).abs() < 0.06, "{s_th}");
        assert!((s_ir - 0.0411).abs() < 0.04, "{s_ir}");
    }

    #[test]
    fn cloudflare_heads_almost_everywhere() {
        let w = world();
        let cf = w.universe.provider_by_name("Cloudflare").unwrap();
        let amazon = w.universe.provider_by_name("Amazon").unwrap();
        for (ci, c) in COUNTRIES.iter().enumerate() {
            let counts = w.layer_counts(ci, Layer::Hosting);
            let head = counts[0].0;
            if c.code == "JP" {
                assert_eq!(head, amazon, "JP should be Amazon-headed");
            } else {
                assert_eq!(
                    head,
                    cf,
                    "{} head {}",
                    c.code,
                    w.universe.provider(head).name
                );
            }
        }
    }

    #[test]
    fn tm_depends_on_russia() {
        let w = world();
        let tm = World::country_index("TM").unwrap();
        let counts = w.layer_counts(tm, Layer::Hosting);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        let ru_share: f64 = counts
            .iter()
            .filter(|&&(id, _)| w.universe.provider(id).country == "RU")
            .map(|&(_, c)| c as f64)
            .sum::<f64>()
            / total as f64;
        assert!(
            (0.18..0.45).contains(&ru_share),
            "RU share in TM: {ru_share}"
        );
    }

    #[test]
    fn us_hosting_is_insular() {
        let w = world();
        let us = World::country_index("US").unwrap();
        let counts = w.layer_counts(us, Layer::Hosting);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        let us_share: f64 = counts
            .iter()
            .filter(|&&(id, _)| w.universe.provider(id).country == "US")
            .map(|&(_, c)| c as f64)
            .sum::<f64>()
            / total as f64;
        assert!(us_share > 0.75, "US insularity {us_share}");
    }

    #[test]
    fn afghan_persian_sites_lean_on_iran() {
        let w = world();
        let af = World::country_index("AF").unwrap();
        let toplist = &w.toplists[af];
        let persian: Vec<&Site> = toplist
            .iter()
            .map(|&i| &w.sites[i as usize])
            .filter(|s| s.language == "fa")
            .collect();
        let frac = persian.len() as f64 / toplist.len() as f64;
        assert!((0.2..0.45).contains(&frac), "persian fraction {frac}");
        let ir_hosted = persian
            .iter()
            .filter(|s| w.universe.provider(s.hosting).country == "IR")
            .count();
        let ir_frac = ir_hosted as f64 / persian.len().max(1) as f64;
        assert!(ir_frac > 0.35, "IR-hosted persian {ir_frac}");
    }

    #[test]
    fn us_tld_is_com_headed_and_germany_cc_headed() {
        let w = world();
        let us = World::country_index("US").unwrap();
        let de = World::country_index("DE").unwrap();
        let com = w.universe.tld_by_label("com").unwrap();
        let de_tld = w.universe.tld_by_label("de").unwrap();
        assert_eq!(w.layer_counts(us, Layer::Tld)[0].0, com);
        assert_eq!(w.layer_counts(de, Layer::Tld)[0].0, de_tld);
        // US .com share ~77%.
        let counts = w.layer_counts(us, Layer::Tld);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        let com_share = counts[0].1 as f64 / total as f64;
        assert!((0.65..0.85).contains(&com_share), "{com_share}");
    }

    #[test]
    fn ca_universe_use_is_bounded() {
        let w = world();
        for ci in [0usize, 50, 100, 149] {
            let counts = w.layer_counts(ci, Layer::Ca);
            assert!(counts.len() <= 45);
            // Let's Encrypt or another L-GP heads every country.
            let head_ca = w.universe.ca(counts[0].0);
            assert_eq!(
                head_ca.tier,
                crate::provider::ProviderTier::LargeGlobal,
                "{}: {}",
                COUNTRIES[ci].code,
                head_ca.name
            );
        }
    }

    #[test]
    fn dominant_regional_runner_up_anchored() {
        // §5.2: SuperHosting.BG and UAB come second behind Cloudflare with
        // a large share, without outranking it.
        let w = world();
        for (code, provider) in [("BG", "SuperHosting.BG"), ("LT", "UAB Interneto vizija")] {
            let ci = World::country_index(code).unwrap();
            let counts = w.layer_counts(ci, Layer::Hosting);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            let cf = w.universe.provider_by_name("Cloudflare").unwrap();
            let anchor = w.universe.provider_by_name(provider).unwrap();
            assert_eq!(counts[0].0, cf, "{code} head must stay Cloudflare");
            assert_eq!(
                counts[1].0,
                anchor,
                "{code} rank 2 must be {provider}, got {}",
                w.universe.provider(counts[1].0).name
            );
            let share = counts[1].1 as f64 / total as f64;
            assert!(
                (0.10..0.30).contains(&share),
                "{code} runner-up share {share}"
            );
        }
    }

    #[test]
    fn asseco_anchored_in_poland_and_iran() {
        let w = world();
        let asseco = w.universe.ca_by_name("Asseco").unwrap();
        for code in ["PL", "IR"] {
            let ci = World::country_index(code).unwrap();
            let counts = w.layer_counts(ci, Layer::Ca);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            let share = counts
                .iter()
                .find(|&&(id, _)| id == asseco)
                .map(|&(_, c)| c as f64 / total as f64)
                .unwrap_or(0.0);
            assert!(
                (0.08..0.30).contains(&share),
                "{code}: Asseco share {share}"
            );
        }
    }

    #[test]
    fn coverage_stays_under_the_papers_bound() {
        // §5.1: 90% of websites are hosted by fewer than 206 providers in
        // every country.
        let w = world();
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let counts: Vec<u64> = w
                .layer_counts(ci, Layer::Hosting)
                .into_iter()
                .map(|(_, c)| c)
                .collect();
            let d = webdep_core::CountDist::from_counts(counts).unwrap();
            assert!(
                d.providers_to_cover(0.90) < 206,
                "{}: {}",
                country.code,
                d.providers_to_cover(0.90)
            );
        }
    }

    #[test]
    fn global_sites_shared_across_countries() {
        let w = world();
        let us = World::country_index("US").unwrap();
        let de = World::country_index("DE").unwrap();
        let us_globals: std::collections::HashSet<u32> = w.toplists[us]
            .iter()
            .copied()
            .filter(|&i| w.sites[i as usize].is_global)
            .collect();
        let de_globals: std::collections::HashSet<u32> = w.toplists[de]
            .iter()
            .copied()
            .filter(|&i| w.sites[i as usize].is_global)
            .collect();
        assert!(!us_globals.is_empty() && !de_globals.is_empty());
        let shared = us_globals.intersection(&de_globals).count();
        assert!(shared > 0, "countries must share popular global sites");
    }
}
