//! Deployment: put a generated [`World`] on the simulated internet.
//!
//! Deployment builds everything the measurement pipeline will probe:
//!
//! * **Addressing** — every provider gets a `/20` per continent of
//!   presence; anycast providers announce theirs via anycast; eyeball
//!   prefixes per continent host the vantage points.
//! * **DNS** — a root zone delegating every TLD, registry servers holding
//!   each TLD's delegations (with glue), and provider "racks" answering
//!   authoritatively for the sites they serve. CDN providers answer
//!   GeoDNS-style: the A record depends on the querier's continent,
//!   which is what makes the §3.4 vantage-point experiment meaningful.
//! * **TLS** — every site has a leaf certificate chained to its CA's
//!   intermediate and root, served by SNI from the hosting rack.
//! * **Enrichment databases** — pfx2as, AS→org, geolocation (with the
//!   paper's ~89.4% accuracy knob), anycast prefixes, and the CCADB-style
//!   issuer→owner map, all derived from the deployed addressing plan.
//!
//! One rack serves many providers (shared hosting). By default racks are
//! *inline responders*: stateless serving logic invoked on the querier's
//! thread, so a round trip costs a function call rather than two context
//! switches. With [`DeployConfig::inline_racks`] off, each rack is a
//! dedicated thread draining a shared endpoint (the original deployment),
//! and even the full ~12k-provider world needs only
//! `racks + registries + 1` threads. Both modes answer identically.

use crate::country::{Continent, CountryRecord};
use crate::world::World;
use bytes::Bytes;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use webdep_dns::bigzone::{Delegation, DelegationTable, HostTable};
use webdep_dns::name::DomainName;
use webdep_dns::server::AuthServer;
use webdep_dns::wire as dnswire;
use webdep_dns::zone::Zone;
use webdep_dns::DNS_PORT;
use webdep_geodb::{
    AnycastSet, AsOrgDb, CaOwner, CaOwnerDb, GeoDb, GeoDbBuilder, OrgRecord, PrefixTable,
};
use webdep_netsim::{
    Datagram, Endpoint, FaultPlan, FaultedReply, NetConfig, NetError, Network, Prefix, Region,
    ResponderSet, SharedEndpoint,
};
use webdep_tls::cert::{Certificate, CertificateChain};
use webdep_tls::handshake::{self, HandshakeMessage, ALERT_UNRECOGNIZED_NAME};
use webdep_tls::TLS_PORT;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Number of hosting racks.
    pub racks: usize,
    /// Country-level geolocation accuracy (paper: NetAcuity ~0.894).
    pub geo_accuracy: f64,
    /// Seed for the geolocation error process.
    pub seed: u64,
    /// Network packet-loss probability (failure injection for resolver /
    /// scanner retry testing).
    pub loss_rate: f64,
    /// Serve racks as inline responders on the sender's thread instead of
    /// dedicated rack threads. Rack serving logic is stateless, so both
    /// modes answer identically; inline skips the two context switches a
    /// threaded round trip costs. Disable to reproduce the original
    /// thread-per-rack deployment.
    pub inline_racks: bool,
    /// Deterministic fault plan. Whole-run outages apply at the transport
    /// to every non-protected server address — service ports only, so
    /// replies to vantage endpoints are never eaten (see
    /// [`FaultPlan::black_holes`]); per-query flaky faults apply only at
    /// the authoritative tier (hosting/DNS racks), keyed on
    /// `(server ip, qname or sni)` so retries meet the same fate on every
    /// worker schedule. The root server is always protected.
    pub faults: Option<Arc<FaultPlan>>,
    /// Per-provider site counts used to size serving pools. `None` counts
    /// `world.sites` at deploy time. An evolution loop pins the *base*
    /// epoch's counts ([`provider_site_counts`]) across every epoch's
    /// deployment so pool lengths — and therefore the serving IPs of
    /// unchanged sites — stay fixed while customers churn (real provider
    /// address plans do not reshuffle with customer counts). Required for
    /// `measure_delta`'s byte-identity contract.
    pub pool_sites: Option<Arc<Vec<u64>>>,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            racks: 16,
            geo_accuracy: 1.0,
            seed: 7,
            loss_rate: 0.0,
            inline_racks: true,
            faults: None,
            pool_sites: None,
        }
    }
}

/// Sites hosted per provider id — the pool-sizing census a continuous
/// evolution loop captures once from its base world and pins via
/// [`DeployConfig::pool_sites`] for every subsequent epoch.
pub fn provider_site_counts(world: &World) -> Vec<u64> {
    let mut counts = vec![0u64; world.universe.providers.len()];
    for s in &world.sites {
        counts[s.hosting as usize] += 1;
    }
    counts
}

/// Continent of a provider's HQ country (with fallbacks for HQ countries
/// outside the 150-country dataset).
pub fn continent_of_country(code: &str) -> Continent {
    if let Some(c) = CountryRecord::by_code(code) {
        return c.continent;
    }
    match code {
        "CN" => Continent::Asia,
        _ => Continent::NorthAmerica,
    }
}

/// Per-provider serving IP pools, one pool per continent (empty where the
/// provider has no presence).
#[derive(Debug, Clone, Default)]
pub struct ProviderPools {
    /// Pools indexed by continent index (see [`cont_index`]).
    pub pools: [Vec<Ipv4Addr>; 6],
    /// Primary nameserver addresses.
    pub ns_addrs: Vec<Ipv4Addr>,
}

/// Continent index used across deployment tables.
pub fn cont_index(c: Continent) -> usize {
    match c {
        Continent::NorthAmerica => 0,
        Continent::SouthAmerica => 1,
        Continent::Europe => 2,
        Continent::Africa => 3,
        Continent::Asia => 4,
        Continent::Oceania => 5,
    }
}

/// All continents in [`cont_index`] order.
pub const CONT_ORDER: [Continent; 6] = [
    Continent::NorthAmerica,
    Continent::SouthAmerica,
    Continent::Europe,
    Continent::Africa,
    Continent::Asia,
    Continent::Oceania,
];

/// The deployed world: live servers plus the enrichment databases.
pub struct DeployedWorld {
    /// The simulated network fabric.
    pub network: Network,
    /// Root nameserver addresses (resolver hints).
    pub roots: Vec<Ipv4Addr>,
    /// Prefix → origin ASN (pfx2as).
    pub pfx2as: Arc<PrefixTable<u32>>,
    /// ASN → organization.
    pub asorg: Arc<AsOrgDb>,
    /// IP → country.
    pub geodb: Arc<GeoDb>,
    /// Anycast prefixes.
    pub anycast: Arc<AnycastSet>,
    /// Certificate issuer → CA owner.
    pub caodb: Arc<CaOwnerDb>,
    /// Serving pools per provider (shared with rack threads).
    pub pools: Arc<Vec<ProviderPools>>,
    eyeball_prefixes: [Prefix; 6],
    vantage_counters: [AtomicU32; 6],
    racks: Vec<RackHandle>,
    responders: Vec<ResponderSet>,
    _root_server: AuthServer,
}

struct RackHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for RackHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-site record a DNS rack answers from.
struct SiteDnsEntry {
    hosting_provider: u32,
    /// Stable per-site hash selecting an IP within the pool.
    hash: u32,
}

/// CNAME edge host name for a CDN-served site
/// (`e<hash>.<provider-slug>.net`, the real-world `*.cdn.example.net`
/// pattern).
fn edge_name(slug: &str, hash: u32) -> DomainName {
    DomainName::parse(&format!("e{}.{slug}.net", hash % 64)).expect("edge names are valid")
}

/// A hosting/DNS rack's data.
struct RackData {
    /// Site domain → DNS answer recipe (sites whose *DNS provider* lives
    /// on this rack).
    site_a: HashMap<DomainName, SiteDnsEntry>,
    /// Domain → NS host names.
    site_ns: HashMap<DomainName, Vec<DomainName>>,
    /// Nameserver / infrastructure host A records.
    host_a: HostTable,
    /// SNI → leaf certificate (sites *hosted* on this rack).
    leaf_by_sni: HashMap<String, Certificate>,
    /// Shared CA (intermediate, root) certs, indexed by CA id.
    ca_certs: Arc<Vec<(Certificate, Certificate)>>,
    /// Shared provider pools for GeoDNS answers.
    pools: Arc<Vec<ProviderPools>>,
    /// Whether each provider is a CDN (GeoDNS) provider.
    provider_cdn: Arc<Vec<bool>>,
    /// Provider slugs (for CDN CNAME edge names).
    provider_slug: Arc<Vec<String>>,
    /// Eyeball prefixes for querier-continent detection.
    eyeballs: [Prefix; 6],
    /// Active fault plan for this deployment (authoritative tier only).
    faults: Option<Arc<FaultPlan>>,
}

impl RackData {
    fn querier_continent(&self, src: Ipv4Addr) -> usize {
        for (i, p) in self.eyeballs.iter().enumerate() {
            if p.contains(src) {
                return i;
            }
        }
        0 // default: North America (the paper's Stanford vantage)
    }

    fn serving_ip(&self, provider: u32, hash: u32, querier_cont: usize) -> Option<Ipv4Addr> {
        let pools = &self.pools[provider as usize].pools;
        let pool = if self.provider_cdn[provider as usize] && !pools[querier_cont].is_empty() {
            &pools[querier_cont]
        } else {
            // Non-CDN providers serve from their (single) home pool.
            pools.iter().find(|p| !p.is_empty())?
        };
        pool.get(hash as usize % pool.len()).copied()
    }

    fn respond_dns(&self, query: &dnswire::Message, src: Ipv4Addr) -> dnswire::Message {
        let mut resp = dnswire::Message::response_to(query);
        resp.authoritative = true;
        let Some(q) = query.questions.first() else {
            resp.rcode = dnswire::Rcode::FormErr;
            return resp;
        };
        match q.qtype {
            dnswire::RecordType::A => {
                if let Some(entry) = self.site_a.get(&q.name) {
                    let cont = self.querier_continent(src);
                    if let Some(ip) = self.serving_ip(entry.hosting_provider, entry.hash, cont) {
                        if self.provider_cdn[entry.hosting_provider as usize] {
                            // CDN sites answer like the real thing: a CNAME
                            // to the provider's edge host plus its address,
                            // exercising the resolver's CNAME path.
                            let edge = edge_name(
                                &self.provider_slug[entry.hosting_provider as usize],
                                entry.hash,
                            );
                            resp.answers.push(dnswire::Record {
                                name: q.name.clone(),
                                ttl: 300,
                                data: dnswire::RecordData::Cname(edge.clone()),
                            });
                            resp.answers.push(dnswire::Record {
                                name: edge,
                                ttl: 300,
                                data: dnswire::RecordData::A(ip),
                            });
                        } else {
                            resp.answers.push(dnswire::Record {
                                name: q.name.clone(),
                                ttl: 300,
                                data: dnswire::RecordData::A(ip),
                            });
                        }
                        return resp;
                    }
                }
                // Infrastructure hosts (nameservers).
                let host_resp = self.host_a.respond(query);
                if !host_resp.answers.is_empty() {
                    return host_resp;
                }
            }
            dnswire::RecordType::Ns => {
                if let Some(ns) = self.site_ns.get(&q.name) {
                    resp.answers = ns
                        .iter()
                        .map(|n| dnswire::Record {
                            name: q.name.clone(),
                            ttl: 3600,
                            data: dnswire::RecordData::Ns(n.clone()),
                        })
                        .collect();
                    return resp;
                }
            }
            dnswire::RecordType::Cname => {}
        }
        if self.site_a.contains_key(&q.name) || self.site_ns.contains_key(&q.name) {
            return resp; // NoData
        }
        resp.rcode = dnswire::Rcode::NxDomain;
        resp
    }

    fn respond_tls(&self, payload: &[u8], dst: Ipv4Addr) -> FaultedReply {
        let Ok(frames) = handshake::decode_flight(payload) else {
            return FaultedReply::swallowed();
        };
        let Some(HandshakeMessage::ClientHello { random, sni }) = frames.first() else {
            return FaultedReply::swallowed();
        };
        let flight = match self.leaf_by_sni.get(&sni.to_ascii_lowercase()) {
            Some(leaf) => {
                let (inter, root) = &self.ca_certs[leaf_ca_index(leaf)];
                let chain = CertificateChain {
                    certs: vec![leaf.clone(), inter.clone(), root.clone()],
                };
                handshake::encode_flight(&[
                    HandshakeMessage::ServerHello {
                        random: random.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        cipher: 0x1301,
                    },
                    HandshakeMessage::Certificate(chain),
                ])
            }
            None => handshake::encode_flight(&[HandshakeMessage::Alert(ALERT_UNRECOGNIZED_NAME)]),
        };
        match &self.faults {
            Some(plan) => webdep_tls::apply_tls_fault(plan, dst, sni, flight),
            None => FaultedReply::clean(flight),
        }
    }
}

/// CA index is encoded in the issuing cert id (see `Universe::build`).
fn leaf_ca_index(leaf: &Certificate) -> usize {
    (leaf.issuer_id - 100_000) as usize
}

/// One rack answer: DNS on port 53, TLS on 443. Pure in the rack data, so
/// it can run on a rack thread or inline on the querier's thread alike.
/// Any active fault plan is applied to the ready answer, keyed on the
/// server address the query was sent to; a [`FaultedReply`] delay is left
/// for the caller to charge where it belongs (see [`FaultedReply`]).
fn rack_respond(data: &RackData, dgram: &Datagram) -> FaultedReply {
    match dgram.dst.port {
        DNS_PORT => match dnswire::decode(&dgram.payload) {
            Ok(query) if !query.is_response => {
                let resp = data.respond_dns(&query, dgram.src.ip);
                match &data.faults {
                    Some(plan) => webdep_dns::apply_dns_fault(plan, dgram.dst.ip, &query, &resp),
                    None => FaultedReply::clean(dnswire::encode(&resp)),
                }
            }
            _ => FaultedReply::swallowed(),
        },
        TLS_PORT => data.respond_tls(&dgram.payload, dgram.dst.ip),
        _ => FaultedReply::swallowed(),
    }
}

/// Idle receive tick of threaded rack loops (also the upper bound on how
/// late a scheduled delayed reply can fire).
const RACK_TICK: Duration = Duration::from_millis(50);

fn rack_loop(endpoint: SharedEndpoint, data: RackData, stop: Arc<AtomicBool>) {
    // Delayed replies are scheduled, never slept: a rack thread serves many
    // clients, and one latency spike must not head-of-line-block the rest.
    let mut delayed: Vec<(
        Instant,
        webdep_netsim::SockAddr,
        webdep_netsim::SockAddr,
        Bytes,
    )> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                let (_, src, dst, payload) = delayed.swap_remove(i);
                let _ = endpoint.send_from(src, dst, payload);
            } else {
                i += 1;
            }
        }
        let tick = delayed
            .iter()
            .map(|(due, ..)| due.saturating_duration_since(now))
            .min()
            .map_or(RACK_TICK, |d| d.min(RACK_TICK));
        let dgram = match endpoint.recv_timeout(tick) {
            Ok(d) => d,
            Err(webdep_netsim::NetError::Timeout) => continue,
            Err(_) => break,
        };
        let reply = rack_respond(&data, &dgram);
        let Some(payload) = reply.payload else {
            continue;
        };
        match reply.delay {
            Some(d) => delayed.push((Instant::now() + d, dgram.dst, dgram.src, payload)),
            None => {
                let _ = endpoint.send_from(dgram.dst, dgram.src, payload);
            }
        }
    }
}

/// One registry answer: the TLD delegation table keyed by the server IP
/// the query was addressed to.
fn registry_respond(
    tables: &HashMap<Ipv4Addr, Arc<DelegationTable>>,
    dgram: &Datagram,
) -> Option<Bytes> {
    if dgram.dst.port != DNS_PORT {
        return None;
    }
    let table = tables.get(&dgram.dst.ip)?;
    let query = dnswire::decode(&dgram.payload).ok()?;
    if query.is_response {
        return None;
    }
    Some(dnswire::encode(&table.respond(&query)))
}

/// Registry rack: serves several TLD delegation tables keyed by server IP.
fn registry_loop(
    endpoint: SharedEndpoint,
    tables: HashMap<Ipv4Addr, Arc<DelegationTable>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        let dgram = match endpoint.recv_timeout(Duration::from_millis(50)) {
            Ok(d) => d,
            Err(webdep_netsim::NetError::Timeout) => continue,
            Err(_) => break,
        };
        if let Some(payload) = registry_respond(&tables, &dgram) {
            let _ = endpoint.send_from(dgram.dst, dgram.src, payload);
        }
    }
}

impl DeployedWorld {
    /// Deploys `world` onto a fresh network.
    pub fn deploy(world: &World, config: DeployConfig) -> DeployedWorld {
        // The root always answers: a whole-run outage of the single root
        // address would zero the measurement rather than degrade it, and
        // the fault model targets provider infrastructure.
        let root_ip = Ipv4Addr::new(198, 41, 0, 4);
        let faults = config.faults.clone().filter(|p| p.is_active()).map(|plan| {
            if plan.protected.contains(&root_ip) {
                plan
            } else {
                let mut p = (*plan).clone();
                p.protected.push(root_ip);
                Arc::new(p)
            }
        });
        let network = Network::new(NetConfig {
            loss_rate: config.loss_rate,
            seed: config.seed,
            faults: faults.clone(),
            ..NetConfig::default()
        });
        let universe = &world.universe;
        let n_providers = universe.providers.len();

        // ---- Addressing plan ----
        // Eyeballs: 100.<cont>.0.0/16.
        let eyeball_prefixes: [Prefix; 6] = std::array::from_fn(|i| {
            Prefix::new(Ipv4Addr::new(100, i as u8, 0, 0), 16).expect("static prefix")
        });

        let mut pfx2as = PrefixTable::new();
        let mut geo = GeoDbBuilder::new();
        let mut anycast = AnycastSet::new();
        let mut asorg = AsOrgDb::new();

        // Provider prefixes: /20s carved sequentially from 60.0.0.0.
        let mut next_p20: u32 = u32::from(Ipv4Addr::new(60, 0, 0, 0)) >> 12;

        // Sites per provider per continent decide pool sizes; a pinned
        // census overrides the live count so pool lengths survive churn.
        let sites_per_provider: Vec<u64> = match &config.pool_sites {
            Some(pinned) => {
                assert_eq!(
                    pinned.len(),
                    n_providers,
                    "pinned pool census must cover every provider"
                );
                pinned.to_vec()
            }
            None => provider_site_counts(world),
        };

        let mut pools: Vec<ProviderPools> = Vec::with_capacity(n_providers);
        for p in &universe.providers {
            let mut pp = ProviderPools::default();
            let home = continent_of_country(&p.country);
            let presence: Vec<Continent> = if p.cdn {
                CONT_ORDER.to_vec()
            } else {
                vec![home]
            };
            for cont in presence {
                let prefix = Prefix::new(Ipv4Addr::from(next_p20 << 12), 20).expect("aligned /20");
                next_p20 += 1;
                pfx2as.insert(prefix, p.asn);
                let geo_country = if p.cdn && cont != home {
                    cont.representative_country().to_string()
                } else {
                    p.country.clone()
                };
                geo.add_prefix(prefix, &geo_country);
                if p.anycast {
                    anycast.add(prefix);
                }
                // Serving pool: enough IPs that big providers share load,
                // small providers use a couple.
                let n_sites = sites_per_provider[p.id as usize];
                let pool_size = ((n_sites / 48).clamp(2, 192) + 2) as u64;
                let pool: Vec<Ipv4Addr> = (0..pool_size)
                    .map(|i| prefix.nth(i + 16).expect("/20 has room"))
                    .collect();
                pp.pools[cont_index(cont)] = pool;
                // Nameservers live in the home prefix.
                if (cont == home || p.anycast) && pp.ns_addrs.len() < 2 {
                    pp.ns_addrs.push(prefix.nth(2).expect("/20 has room"));
                    pp.ns_addrs.push(prefix.nth(3).expect("/20 has room"));
                }
            }
            if pp.ns_addrs.is_empty() {
                // Hosting-only presence still runs its own NS.
                let first = pp.pools.iter().find(|v| !v.is_empty()).expect("presence");
                pp.ns_addrs.push(first[0]);
            }
            asorg.add_org(OrgRecord {
                org_id: p.id,
                name: p.name.clone(),
                country: p.country.clone(),
            });
            asorg.map_asn(p.asn, p.id);
            pools.push(pp);
        }
        let pools = Arc::new(pools);
        let provider_cdn = Arc::new(
            universe
                .providers
                .iter()
                .map(|p| p.cdn)
                .collect::<Vec<bool>>(),
        );
        let provider_slug = Arc::new(
            universe
                .providers
                .iter()
                .map(|p| p.slug())
                .collect::<Vec<String>>(),
        );

        // Eyeball prefixes geolocate to each continent's representative.
        for (i, p) in eyeball_prefixes.iter().enumerate() {
            geo.add_prefix(*p, CONT_ORDER[i].representative_country());
        }

        // ---- CA certificates & ownership ----
        let mut caodb = CaOwnerDb::new();
        let mut ca_certs: Vec<(Certificate, Certificate)> = Vec::new();
        for ca in &universe.cas {
            caodb.add_owner(CaOwner {
                owner_id: ca.id,
                name: ca.name.clone(),
                country: ca.country.clone(),
            });
            caodb.map_issuer(ca.issuing_cert_id, ca.id);
            caodb.map_issuer(ca.root_cert_id, ca.id);
            let root = Certificate {
                serial: ca.root_cert_id as u64,
                subject: format!("{} Root", ca.name),
                san: vec![],
                issuer_id: ca.root_cert_id,
                issuer_name: format!("{} Root", ca.name),
                not_before: 0,
                not_after: u64::MAX,
                is_ca: true,
            };
            let inter = Certificate {
                serial: ca.issuing_cert_id as u64,
                subject: format!("{} Issuing CA", ca.name),
                san: vec![],
                issuer_id: ca.root_cert_id,
                issuer_name: root.subject.clone(),
                not_before: 0,
                not_after: u64::MAX,
                is_ca: true,
            };
            ca_certs.push((inter, root));
        }
        let ca_certs = Arc::new(ca_certs);

        // ---- Rack data ----
        let n_racks = config.racks.max(1);
        let rack_of = |provider: u32| (provider as usize) % n_racks;
        let mut rack_data: Vec<RackData> = (0..n_racks)
            .map(|_| RackData {
                site_a: HashMap::new(),
                site_ns: HashMap::new(),
                host_a: HostTable::new(),
                leaf_by_sni: HashMap::new(),
                ca_certs: Arc::clone(&ca_certs),
                pools: Arc::clone(&pools),
                provider_cdn: Arc::clone(&provider_cdn),
                provider_slug: Arc::clone(&provider_slug),
                eyeballs: eyeball_prefixes,
                faults: faults.clone(),
            })
            .collect();

        // Nameserver host names per provider.
        let ns_names: Vec<Vec<DomainName>> = universe
            .providers
            .iter()
            .map(|p| {
                let slug = p.slug();
                pools[p.id as usize]
                    .ns_addrs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        DomainName::parse(&format!("ns{}.{}.net", i + 1, slug))
                            .expect("slug names are valid")
                    })
                    .collect()
            })
            .collect();

        // Install nameserver A records on each DNS provider's rack.
        for p in &universe.providers {
            let rd = &mut rack_data[rack_of(p.id)];
            for (name, addr) in ns_names[p.id as usize]
                .iter()
                .zip(&pools[p.id as usize].ns_addrs)
            {
                rd.host_a.add_a(name.clone(), *addr);
            }
        }

        // Install sites: DNS data on the DNS provider's rack, TLS leaf on
        // the hosting provider's rack.
        let mut tld_tables: HashMap<u32, DelegationTable> = HashMap::new();
        for (site_idx, site) in world.sites.iter().enumerate() {
            let domain = DomainName::parse(&site.domain).expect("generated names are valid");
            let dns_rack = rack_of(site.dns);
            let hash = fxhash(&site.domain);
            rack_data[dns_rack].site_a.insert(
                domain.clone(),
                SiteDnsEntry {
                    hosting_provider: site.hosting,
                    hash,
                },
            );
            rack_data[dns_rack]
                .site_ns
                .insert(domain.clone(), ns_names[site.dns as usize].clone());

            // TLS leaf on the hosting rack.
            let ca = universe.ca(site.ca);
            let leaf = Certificate {
                serial: 1_000_000 + site_idx as u64,
                subject: site.domain.clone(),
                san: vec![site.domain.clone()],
                issuer_id: ca.issuing_cert_id,
                issuer_name: format!("{} Issuing CA", ca.name),
                not_before: 0,
                not_after: u64::MAX,
                is_ca: false,
            };
            rack_data[rack_of(site.hosting)]
                .leaf_by_sni
                .insert(site.domain.to_ascii_lowercase(), leaf);

            // Registry delegation.
            let table = tld_tables.entry(site.tld).or_insert_with(|| {
                let label = &universe.tld(site.tld).label;
                DelegationTable::new(DomainName::parse(label).expect("tld label"))
            });
            let glue: Vec<(DomainName, Ipv4Addr)> = ns_names[site.dns as usize]
                .iter()
                .cloned()
                .zip(pools[site.dns as usize].ns_addrs.iter().copied())
                .collect();
            table.register(
                domain,
                Delegation {
                    ns: ns_names[site.dns as usize].clone(),
                    glue,
                },
            );
        }

        // Register provider infrastructure domains (<slug>.net) so glueless
        // paths still resolve.
        if let Some(net_tld) = universe.tld_by_label("net") {
            let table = tld_tables.entry(net_tld).or_insert_with(|| {
                DelegationTable::new(DomainName::parse("net").expect("tld label"))
            });
            for p in &universe.providers {
                let slug_domain =
                    DomainName::parse(&format!("{}.net", p.slug())).expect("slug names are valid");
                let glue: Vec<(DomainName, Ipv4Addr)> = ns_names[p.id as usize]
                    .iter()
                    .cloned()
                    .zip(pools[p.id as usize].ns_addrs.iter().copied())
                    .collect();
                table.register(
                    slug_domain,
                    Delegation {
                        ns: ns_names[p.id as usize].clone(),
                        glue,
                    },
                );
            }
        }

        // ---- Spawn registry racks ----
        // TLD server IPs: 192.5.<i/250>.<i%250+1>.
        let mut racks: Vec<RackHandle> = Vec::new();
        let mut root_zone = Zone::new(DomainName::root());
        let registry_groups = 4usize;
        let mut registry_tables: Vec<HashMap<Ipv4Addr, Arc<DelegationTable>>> =
            vec![HashMap::new(); registry_groups];
        for (gi, (tld_id, table)) in tld_tables.into_iter().enumerate() {
            let i = gi as u32;
            let ip = Ipv4Addr::new(192, 5, (i / 250) as u8, (i % 250 + 1) as u8);
            let label = &universe.tld(tld_id).label;
            let tld_name = DomainName::parse(label).expect("tld label");
            let ns_host =
                DomainName::parse(&format!("ns.{label}-registry.net")).expect("registry host");
            root_zone.delegate(
                tld_name,
                std::slice::from_ref(&ns_host),
                &[(ns_host.clone(), ip)],
            );
            registry_tables[gi % registry_groups].insert(ip, Arc::new(table));
        }
        // Root server.
        let root_ep = network
            .bind(root_ip, DNS_PORT, Region::NORTH_AMERICA)
            .expect("root address free");
        let root_server = AuthServer::spawn(root_ep, vec![Arc::new(root_zone)]);
        geo.add_prefix(
            Prefix::new(Ipv4Addr::new(198, 41, 0, 0), 24).expect("static"),
            "US",
        );
        geo.add_prefix(
            Prefix::new(Ipv4Addr::new(192, 5, 0, 0), 16).expect("static"),
            "US",
        );

        let mut responders: Vec<ResponderSet> = Vec::new();
        for tables in registry_tables {
            if tables.is_empty() {
                continue;
            }
            let ips: Vec<Ipv4Addr> = tables.keys().copied().collect();
            if config.inline_racks {
                let set =
                    ResponderSet::new(&network, move |d: &Datagram| registry_respond(&tables, d));
                for ip in ips {
                    set.attach(ip, DNS_PORT, Region::NORTH_AMERICA)
                        .expect("registry address free");
                }
                responders.push(set);
            } else {
                let ep = SharedEndpoint::new(&network);
                for ip in ips {
                    ep.attach(ip, DNS_PORT, Region::NORTH_AMERICA)
                        .expect("registry address free");
                }
                let stop = Arc::new(AtomicBool::new(false));
                let stop2 = Arc::clone(&stop);
                let handle = std::thread::spawn(move || registry_loop(ep, tables, stop2));
                racks.push(RackHandle {
                    stop,
                    handle: Some(handle),
                });
            }
        }

        // ---- Spawn hosting racks ----
        for (ri, data) in rack_data.into_iter().enumerate() {
            // Attach every address of every provider on this rack, whatever
            // the attachment target (rack thread queue or inline responder).
            let attach_all = |attach: &dyn Fn(Ipv4Addr, u16, Region) -> Result<(), NetError>,
                              attach_anycast: &dyn Fn(
                Ipv4Addr,
                u16,
                Region,
            ) -> Result<(), NetError>| {
                for p in &universe.providers {
                    if rack_of(p.id) != ri {
                        continue;
                    }
                    let pp = &pools[p.id as usize];
                    for (ci, pool) in pp.pools.iter().enumerate() {
                        let region = CONT_ORDER[ci].region();
                        for &ip in pool {
                            if p.anycast {
                                // Anycast pools share addresses across
                                // continents; attach each once per region.
                                let _ = attach_anycast(ip, TLS_PORT, region);
                                let _ = attach_anycast(ip, DNS_PORT, region);
                            } else {
                                attach(ip, TLS_PORT, region)
                                    .expect("address plan is collision-free");
                                attach(ip, DNS_PORT, region)
                                    .expect("address plan is collision-free");
                            }
                        }
                    }
                    let home_region = continent_of_country(&p.country).region();
                    for &ns in &pp.ns_addrs {
                        if p.anycast {
                            for cont in CONT_ORDER {
                                let _ = attach_anycast(ns, DNS_PORT, cont.region());
                            }
                        } else {
                            // NS address may coincide with a pool address only
                            // for the tiny single-IP fallback; tolerate.
                            let _ = attach(ns, DNS_PORT, home_region);
                        }
                    }
                }
            };
            if config.inline_racks {
                let set = ResponderSet::new(&network, move |d: &Datagram| {
                    let reply = rack_respond(&data, d);
                    // An inline responder runs on the querier's own thread,
                    // so a Delay fault may simply sleep here: only this
                    // query is delayed, nobody is blocked behind it.
                    if let Some(wait) = reply.delay {
                        std::thread::sleep(wait);
                    }
                    reply.payload
                });
                attach_all(&|ip, port, r| set.attach(ip, port, r), &|ip, port, r| {
                    set.attach_anycast(ip, port, r)
                });
                responders.push(set);
            } else {
                let ep = SharedEndpoint::new(&network);
                attach_all(&|ip, port, r| ep.attach(ip, port, r), &|ip, port, r| {
                    ep.attach_anycast(ip, port, r)
                });
                let stop = Arc::new(AtomicBool::new(false));
                let stop2 = Arc::clone(&stop);
                let handle = std::thread::spawn(move || rack_loop(ep, data, stop2));
                racks.push(RackHandle {
                    stop,
                    handle: Some(handle),
                });
            }
        }

        let geodb = if config.geo_accuracy < 1.0 {
            let mut g = geo;
            g.with_accuracy(config.geo_accuracy, config.seed);
            g.build()
        } else {
            geo.build()
        };

        DeployedWorld {
            network,
            roots: vec![root_ip],
            pfx2as: Arc::new(pfx2as),
            asorg: Arc::new(asorg),
            geodb: Arc::new(geodb),
            anycast: Arc::new(anycast),
            caodb: Arc::new(caodb),
            pools,
            eyeball_prefixes,
            vantage_counters: std::array::from_fn(|_| AtomicU32::new(10)),
            racks,
            responders,
            _root_server: root_server,
        }
    }

    /// Binds a fresh vantage-point endpoint in `continent`'s eyeball
    /// prefix. Each call gets a unique address.
    pub fn vantage(&self, continent: Continent) -> Endpoint {
        let ci = cont_index(continent);
        let n = self.vantage_counters[ci].fetch_add(1, Ordering::Relaxed);
        let ip = self.eyeball_prefixes[ci]
            .nth(n as u64)
            .expect("eyeball prefix exhausted");
        self.network
            .bind(ip, 33000, continent.region())
            .expect("vantage addresses are unique")
    }

    /// Number of serving racks (registries + hosting), threaded or inline.
    pub fn num_racks(&self) -> usize {
        self.racks.len() + self.responders.len()
    }
}

/// FxHash-style string hash for stable IP selection.
fn fxhash(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use webdep_dns::resolver::{IterativeResolver, ResolverConfig};
    use webdep_tls::scanner::{Scanner, ScannerConfig};

    fn deployed() -> (World, DeployedWorld) {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        (world, dep)
    }

    #[test]
    fn resolves_and_scans_sites_end_to_end() {
        let (world, dep) = deployed();
        let vantage = dep.vantage(Continent::NorthAmerica);
        let mut resolver =
            IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
        let scan_ep = dep.vantage(Continent::NorthAmerica);
        let mut scanner = Scanner::new(scan_ep, ScannerConfig::default());

        // Probe a sample of sites from several countries.
        for &ci in &[0usize, 40, 80, 120] {
            for &site_idx in world.toplists[ci].iter().step_by(97).take(4) {
                let site = &world.sites[site_idx as usize];
                let name = webdep_dns::DomainName::parse(&site.domain).unwrap();
                let addrs = resolver
                    .resolve_a(&name)
                    .unwrap_or_else(|e| panic!("resolve {}: {e}", site.domain));
                assert!(!addrs.is_empty());
                // The serving IP belongs to the hosting provider's ASN.
                let (asn, _) = dep.pfx2as.lookup(addrs[0]).expect("IP in plan");
                let org = dep.asorg.org_of_asn(*asn).expect("org known");
                assert_eq!(
                    org.org_id,
                    site.hosting,
                    "{}: expected {} got {}",
                    site.domain,
                    world.universe.provider(site.hosting).name,
                    org.name
                );
                // TLS chain identifies the CA.
                let chain = scanner
                    .scan(addrs[0], &site.domain)
                    .unwrap_or_else(|e| panic!("scan {}: {e}", site.domain));
                assert_eq!(chain.validate(&site.domain, 1000), Ok(()));
                let owner = dep
                    .caodb
                    .owner_of_issuer(chain.leaf().unwrap().issuer_id)
                    .expect("issuer known");
                assert_eq!(owner.owner_id, site.ca);
            }
        }
    }

    #[test]
    fn ns_resolution_identifies_dns_provider() {
        let (world, dep) = deployed();
        let vantage = dep.vantage(Continent::Europe);
        let mut resolver =
            IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
        let site = &world.sites[world.toplists[10][3] as usize];
        let name = webdep_dns::DomainName::parse(&site.domain).unwrap();
        let ns = resolver.resolve_ns(&name).expect("NS resolves");
        assert!(!ns.is_empty());
        let ns_addr = resolver.resolve_a(&ns[0]).expect("NS A resolves");
        let (asn, _) = dep.pfx2as.lookup(ns_addr[0]).expect("NS IP in plan");
        let org = dep.asorg.org_of_asn(*asn).expect("org known");
        assert_eq!(org.org_id, site.dns);
    }

    #[test]
    fn cdn_sites_resolve_to_querier_continent() {
        let (world, dep) = deployed();
        // Find a Cloudflare-hosted site (CDN + anycast).
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let site = world
            .sites
            .iter()
            .find(|s| s.hosting == cf)
            .expect("Cloudflare hosts sites");
        let name = webdep_dns::DomainName::parse(&site.domain).unwrap();

        let mut answers = Vec::new();
        for cont in [Continent::NorthAmerica, Continent::Asia] {
            let vantage = dep.vantage(cont);
            let mut resolver =
                IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
            let addrs = resolver.resolve_a(&name).expect("resolves");
            let country = dep.geodb.country_of(addrs[0]).expect("geolocates");
            answers.push((addrs[0], country.to_string()));
        }
        // Same provider, different regional IPs.
        assert_ne!(answers[0].0, answers[1].0, "GeoDNS should differ");
        assert_eq!(answers[0].1, "US");
        assert_eq!(answers[1].1, "SG");
        for (ip, _) in &answers {
            let (asn, _) = dep.pfx2as.lookup(*ip).unwrap();
            assert_eq!(dep.asorg.org_of_asn(*asn).unwrap().org_id, cf);
        }
    }

    #[test]
    fn cdn_sites_answer_with_cname_chains() {
        let (world, dep) = deployed();
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let site = world
            .sites
            .iter()
            .find(|s| s.hosting == cf)
            .expect("Cloudflare hosts sites");
        // Raw stub query so the CNAME is visible (the iterative resolver
        // collapses it).
        let vantage = dep.vantage(Continent::NorthAmerica);
        let mut resolver =
            IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
        let name = webdep_dns::DomainName::parse(&site.domain).unwrap();
        let data = resolver
            .resolve(&name, webdep_dns::wire::RecordType::A, 0)
            .expect("resolves");
        assert!(
            data.iter()
                .any(|d| matches!(d, webdep_dns::wire::RecordData::A(_))),
            "terminal A records present"
        );
        // A regional (non-CDN) provider's site answers a bare A record; a
        // direct check that the CNAME is CDN-specific lives in the rack:
        let beget = world.universe.provider_by_name("Beget").unwrap();
        assert!(world.universe.provider(cf).cdn);
        assert!(!world.universe.provider(beget).cdn);
    }

    #[test]
    fn anycast_prefixes_flagged() {
        let (world, dep) = deployed();
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let pool = &dep.pools[cf as usize].pools[0];
        assert!(dep.anycast.contains(pool[0]));
        let hetzner = world.universe.provider_by_name("Hetzner").unwrap();
        let hpool = dep.pools[hetzner as usize]
            .pools
            .iter()
            .find(|p| !p.is_empty())
            .unwrap();
        assert!(!dep.anycast.contains(hpool[0]));
    }

    #[test]
    fn geolocation_reflects_hq_for_regional_providers() {
        let (world, dep) = deployed();
        let beget = world.universe.provider_by_name("Beget").unwrap();
        let pool = dep.pools[beget as usize]
            .pools
            .iter()
            .find(|p| !p.is_empty())
            .unwrap();
        assert_eq!(dep.geodb.country_of(pool[0]), Some("RU"));
    }

    #[test]
    fn fault_plan_degrades_racks_but_spares_root_and_registries() {
        use webdep_netsim::{FaultKind, FaultPlan};
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(
            &world,
            DeployConfig {
                faults: Some(Arc::new(FaultPlan::flaky(
                    5,
                    1.0,
                    1.0,
                    vec![FaultKind::ServFail],
                ))),
                ..DeployConfig::default()
            },
        );
        let site = &world.sites[world.toplists[0][0] as usize];
        let name = webdep_dns::DomainName::parse(&site.domain).unwrap();

        // Every rack answers SERVFAIL, so resolution fails — but quickly
        // (no timeouts): root and registry referrals still work, and the
        // authoritative servers answer, just unhelpfully.
        let vantage = dep.vantage(Continent::NorthAmerica);
        let mut resolver =
            IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
        let err = resolver.resolve_a(&name).unwrap_err();
        assert!(matches!(err, webdep_dns::resolver::ResolveError::ServFail));

        // TLS flights from the hosting rack become fatal alerts.
        let pool = dep.pools[site.hosting as usize]
            .pools
            .iter()
            .find(|p| !p.is_empty())
            .unwrap();
        let mut scanner = Scanner::new(
            dep.vantage(Continent::NorthAmerica),
            ScannerConfig::default(),
        );
        let err = scanner.scan(pool[0], &site.domain).unwrap_err();
        assert_eq!(
            err,
            webdep_tls::ScanError::Alert(webdep_tls::ALERT_INTERNAL_ERROR)
        );
    }

    #[test]
    fn outage_plan_black_holes_rack_servers() {
        use webdep_netsim::FaultPlan;
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(
            &world,
            DeployConfig {
                faults: Some(Arc::new(FaultPlan::outages(9, 1.0))),
                ..DeployConfig::default()
            },
        );
        // Every server address except the protected root is out; the
        // resolver gets referrals nowhere (registry IPs are out too) and
        // must conclude with a timeout rather than hang.
        let vantage = dep.vantage(Continent::Europe);
        let mut resolver = IterativeResolver::new(
            vantage,
            dep.roots.clone(),
            ResolverConfig {
                timeout: Duration::from_millis(20),
                retries: 0,
                ..ResolverConfig::default()
            },
        );
        let site = &world.sites[world.toplists[3][0] as usize];
        let name = webdep_dns::DomainName::parse(&site.domain).unwrap();
        let err = resolver.resolve_a(&name).unwrap_err();
        assert!(matches!(err, webdep_dns::resolver::ResolveError::Timeout));
    }

    #[test]
    fn unknown_domain_is_nxdomain() {
        let (_world, dep) = deployed();
        let vantage = dep.vantage(Continent::NorthAmerica);
        let mut resolver =
            IterativeResolver::new(vantage, dep.roots.clone(), ResolverConfig::default());
        let name = webdep_dns::DomainName::parse("definitely-not-generated.com").unwrap();
        let err = resolver.resolve_a(&name).unwrap_err();
        assert!(matches!(
            err,
            webdep_dns::resolver::ResolveError::NxDomain(_)
        ));
    }
}
