//! The provider / CA / TLD universe.
//!
//! Named entities anchor the paper's case studies (Cloudflare, Beget,
//! SuperHosting.BG, Asseco, ...); synthetic entities fill the tiers out to
//! the paper's observed universe sizes (Table 1: 2 XL-GP, 6 L-GP, 2
//! L-GP (R), 22 M-GP, 73 S-GP, 174 L-RP, 587 S-RP, 11,548 XS-RP). The
//! regional tail scales with [`crate::world::WorldConfig::tail_scale`] so
//! tests can run small worlds.

use crate::paper_data::COUNTRIES;
use crate::provider::{CaRecord, Provider, ProviderTier, TldKind, TldRecord};
use std::collections::HashMap;

/// The full entity universe for a generated world.
#[derive(Debug, Clone)]
pub struct Universe {
    /// All providers; index equals `Provider::id`.
    pub providers: Vec<Provider>,
    /// All certificate authorities; index equals `CaRecord::id`.
    pub cas: Vec<CaRecord>,
    /// All TLDs; index equals `TldRecord::id`.
    pub tlds: Vec<TldRecord>,
    /// Regional provider ids per country code, ordered large → small.
    pub regional_by_country: HashMap<String, Vec<u32>>,
    /// Global hosting provider ids in canonical (size) order, heads first.
    pub global_hosting: Vec<u32>,
    /// Global DNS provider ids in canonical order (includes managed DNS).
    pub global_dns: Vec<u32>,
}

/// Named global hosting/CDN providers: (name, country, tier, dns, cdn, anycast).
const NAMED_GLOBALS: &[(&str, &str, ProviderTier, bool, bool, bool)] = &[
    ("Cloudflare", "US", ProviderTier::XlGlobal, true, true, true),
    ("Amazon", "US", ProviderTier::XlGlobal, true, true, false),
    ("Google", "US", ProviderTier::LargeGlobal, true, true, true),
    ("Akamai", "US", ProviderTier::LargeGlobal, true, true, true),
    (
        "Microsoft",
        "US",
        ProviderTier::LargeGlobal,
        true,
        true,
        false,
    ),
    ("Fastly", "US", ProviderTier::LargeGlobal, false, true, true),
    (
        "GoDaddy",
        "US",
        ProviderTier::LargeGlobal,
        true,
        false,
        false,
    ),
    (
        "Unified Layer",
        "US",
        ProviderTier::LargeGlobal,
        true,
        false,
        false,
    ),
    (
        "OVH",
        "FR",
        ProviderTier::LargeGlobalRegional,
        true,
        false,
        false,
    ),
    (
        "Hetzner",
        "DE",
        ProviderTier::LargeGlobalRegional,
        true,
        false,
        false,
    ),
];

/// Named medium global providers: (name, country, dns).
const NAMED_MEDIUM: &[(&str, &str, bool)] = &[
    ("Incapsula", "US", true),
    ("DigitalOcean", "US", true),
    ("Linode", "US", true),
    ("Vultr", "US", false),
    ("Leaseweb", "NL", true),
    ("Contabo", "DE", false),
    ("Rackspace", "US", true),
    ("IONOS", "DE", true),
    ("Squarespace", "US", true),
    ("Shopify", "CA", false),
    ("Salesforce", "US", false),
    ("Oracle", "US", true),
    ("IBM Cloud", "US", true),
    ("Automattic", "US", true),
];

/// Named small global providers: (name, country).
const NAMED_SMALL: &[(&str, &str)] = &[
    ("Wix", "IL"),
    ("Netlify", "US"),
    ("Vercel", "US"),
    ("GitHub Pages", "US"),
    ("Heroku", "US"),
    ("Render", "US"),
    ("Weebly", "US"),
    ("Gcore", "LU"),
];

/// Managed DNS providers (DNS-only): (name, country, tier, anycast).
const NAMED_DNS_ONLY: &[(&str, &str, ProviderTier, bool)] = &[
    ("NSONE", "US", ProviderTier::LargeGlobal, true),
    ("Neustar UltraDNS", "US", ProviderTier::LargeGlobal, true),
    ("DNSimple", "US", ProviderTier::MediumGlobal, true),
    ("Sucuri", "US", ProviderTier::SmallGlobal, false),
    ("DNS Made Easy", "US", ProviderTier::MediumGlobal, true),
    ("ClouDNS", "BG", ProviderTier::SmallGlobal, false),
];

/// Named regional providers anchoring the case studies:
/// (name, country, tier, dns).
const NAMED_REGIONAL: &[(&str, &str, ProviderTier, bool)] = &[
    // Russia (CIS dependence, §5.3.3).
    ("Beget", "RU", ProviderTier::LargeRegional, true),
    ("Timeweb", "RU", ProviderTier::LargeRegional, true),
    ("Selectel", "RU", ProviderTier::LargeRegional, true),
    ("REG.RU", "RU", ProviderTier::LargeRegional, true),
    ("Yandex Cloud", "RU", ProviderTier::LargeRegional, true),
    // Bulgaria / Lithuania (single dominant regional, §5.2).
    ("SuperHosting.BG", "BG", ProviderTier::LargeRegional, true),
    (
        "UAB Interneto vizija",
        "LT",
        ProviderTier::LargeRegional,
        true,
    ),
    // Czechia (insular; used by Slovakia).
    ("WEDOS", "CZ", ProviderTier::LargeRegional, true),
    ("Forpsi", "CZ", ProviderTier::LargeRegional, true),
    ("Seznam.cz", "CZ", ProviderTier::LargeRegional, true),
    // Iran (least centralized; used by Afghanistan).
    ("ArvanCloud", "IR", ProviderTier::LargeRegional, true),
    ("ParsPack", "IR", ProviderTier::LargeRegional, true),
    ("Afranet", "IR", ProviderTier::LargeRegional, true),
    ("Iran Telecom", "IR", ProviderTier::LargeRegional, true),
    // France (administrative regions + former colonies).
    ("Online S.A.S", "FR", ProviderTier::LargeRegional, true),
    ("Gandi", "FR", ProviderTier::LargeRegional, true),
    ("Scaleway", "FR", ProviderTier::LargeRegional, true),
    // Germany (used in Austria).
    ("Strato", "DE", ProviderTier::LargeRegional, true),
    ("netcup", "DE", ProviderTier::LargeRegional, true),
    // Asia-Pacific large regionals.
    ("Alibaba", "CN", ProviderTier::LargeRegional, true),
    ("Tencent", "CN", ProviderTier::LargeRegional, true),
    ("Sakura Internet", "JP", ProviderTier::LargeRegional, true),
    ("NTT", "JP", ProviderTier::LargeRegional, true),
    ("Naver Cloud", "KR", ProviderTier::LargeRegional, true),
    ("KT Corporation", "KR", ProviderTier::LargeRegional, true),
    // Misc named tails used as examples in the paper.
    ("Loopia", "SE", ProviderTier::SmallRegional, true),
    ("Forthnet", "GR", ProviderTier::XsRegional, true),
];

/// CA owners: (name, country, tier). Counts match Table 3:
/// 7 L-GP, 2 M-GP, 11 L-RP, 10 S-RP, 15 XS-RP = 45 CAs.
const CAS: &[(&str, &str, ProviderTier)] = &[
    // Large global (the 7 that serve ~98% of the web).
    ("Let's Encrypt", "US", ProviderTier::LargeGlobal),
    ("DigiCert", "US", ProviderTier::LargeGlobal),
    ("Sectigo", "GB", ProviderTier::LargeGlobal),
    ("Google Trust Services", "US", ProviderTier::LargeGlobal),
    ("Amazon Trust Services", "US", ProviderTier::LargeGlobal),
    ("GlobalSign", "BE", ProviderTier::LargeGlobal),
    ("GoDaddy", "US", ProviderTier::LargeGlobal),
    // Medium global.
    ("Entrust", "CA", ProviderTier::MediumGlobal),
    ("IdenTrust", "US", ProviderTier::MediumGlobal),
    // Large regional.
    ("Asseco", "PL", ProviderTier::LargeRegional),
    ("SwissSign", "CH", ProviderTier::LargeRegional),
    ("Actalis", "IT", ProviderTier::LargeRegional),
    ("Buypass", "NO", ProviderTier::LargeRegional),
    ("HARICA", "GR", ProviderTier::LargeRegional),
    ("TWCA", "TW", ProviderTier::LargeRegional),
    ("SECOM", "JP", ProviderTier::LargeRegional),
    ("Cybertrust Japan", "JP", ProviderTier::LargeRegional),
    ("Certigna", "FR", ProviderTier::LargeRegional),
    ("Izenpe", "ES", ProviderTier::LargeRegional),
    ("Microsec", "HU", ProviderTier::LargeRegional),
    // Small regional.
    ("SSL.com", "US", ProviderTier::SmallRegional),
    ("Disig", "SK", ProviderTier::SmallRegional),
    ("ACCV", "ES", ProviderTier::SmallRegional),
    ("Telia", "FI", ProviderTier::SmallRegional),
    ("D-TRUST", "DE", ProviderTier::SmallRegional),
    ("Chunghwa Telecom", "TW", ProviderTier::SmallRegional),
    ("KICA", "KR", ProviderTier::SmallRegional),
    ("JPRS", "JP", ProviderTier::SmallRegional),
    ("GLOBALTRUST", "AT", ProviderTier::SmallRegional),
    ("Firmaprofesional", "ES", ProviderTier::SmallRegional),
    // Extra-small regional.
    ("TrustCor", "PA", ProviderTier::XsRegional),
    ("Camerfirma", "ES", ProviderTier::XsRegional),
    ("ANF", "ES", ProviderTier::XsRegional),
    ("OISTE", "CH", ProviderTier::XsRegional),
    ("NetLock", "HU", ProviderTier::XsRegional),
    ("Pos Digicert", "MY", ProviderTier::XsRegional),
    ("MSC Trustgate", "MY", ProviderTier::XsRegional),
    ("Kamu SM", "TR", ProviderTier::XsRegional),
    ("TurkTrust", "TR", ProviderTier::XsRegional),
    ("E-Tugra", "TR", ProviderTier::XsRegional),
    ("GDCA", "CN", ProviderTier::XsRegional),
    ("CFCA", "CN", ProviderTier::XsRegional),
    ("Serasa", "BR", ProviderTier::XsRegional),
    ("Certisign", "BR", ProviderTier::XsRegional),
    ("Sonera", "FI", ProviderTier::XsRegional),
];

/// Global (non-cc) TLD labels beyond `.com`.
const GLOBAL_TLDS: &[&str] = &[
    "net", "org", "io", "info", "biz", "top", "xyz", "online", "site", "app", "dev", "tv", "cc",
    "ai", "shop", "store", "blog", "cloud", "live", "pro",
];

impl Universe {
    /// Builds the universe. `tail_scale` in `(0, 1]` scales the regional
    /// provider tail (1.0 reproduces the paper's ~12k providers).
    pub fn build(tail_scale: f64) -> Universe {
        assert!(
            tail_scale > 0.0 && tail_scale <= 1.0,
            "tail_scale must be in (0, 1]"
        );
        let mut providers: Vec<Provider> = Vec::new();
        let mut regional_by_country: HashMap<String, Vec<u32>> = HashMap::new();
        let add = |providers: &mut Vec<Provider>,
                   name: String,
                   country: &str,
                   tier: ProviderTier,
                   dns: bool,
                   cdn: bool,
                   anycast: bool,
                   hosting: bool| {
            let id = providers.len() as u32;
            providers.push(Provider {
                id,
                name,
                country: country.to_string(),
                tier,
                asn: 1000 + id,
                offers_hosting: hosting,
                offers_dns: dns,
                cdn,
                anycast,
            });
            id
        };

        let mut global_hosting: Vec<u32> = Vec::new();
        let mut global_dns: Vec<u32> = Vec::new();

        for &(name, cc, tier, dns, cdn, anycast) in NAMED_GLOBALS {
            let id = add(
                &mut providers,
                name.to_string(),
                cc,
                tier,
                dns,
                cdn,
                anycast,
                true,
            );
            global_hosting.push(id);
            if dns {
                global_dns.push(id);
            }
        }
        for &(name, cc, dns) in NAMED_MEDIUM {
            let id = add(
                &mut providers,
                name.to_string(),
                cc,
                ProviderTier::MediumGlobal,
                dns,
                false,
                false,
                true,
            );
            global_hosting.push(id);
            if dns {
                global_dns.push(id);
            }
        }
        // Pad M-GP to 22 with synthetic names.
        for i in NAMED_MEDIUM.len()..22 {
            let id = add(
                &mut providers,
                format!("MidCloud {}", i + 1),
                ["US", "GB", "NL", "SG", "CA"][i % 5],
                ProviderTier::MediumGlobal,
                i % 2 == 0,
                false,
                false,
                true,
            );
            global_hosting.push(id);
            if i % 2 == 0 {
                global_dns.push(id);
            }
        }
        for &(name, cc) in NAMED_SMALL {
            let id = add(
                &mut providers,
                name.to_string(),
                cc,
                ProviderTier::SmallGlobal,
                true,
                false,
                false,
                true,
            );
            global_hosting.push(id);
            global_dns.push(id);
        }
        // Pad S-GP to 73.
        for i in NAMED_SMALL.len()..73 {
            let id = add(
                &mut providers,
                format!("GlobalHost {}", i + 1),
                ["US", "GB", "DE", "NL", "SG", "AU", "CA", "IE"][i % 8],
                ProviderTier::SmallGlobal,
                i % 3 != 0,
                false,
                false,
                true,
            );
            global_hosting.push(id);
            if i % 3 != 0 {
                global_dns.push(id);
            }
        }
        // Managed DNS (DNS-only, not in the hosting pool).
        for &(name, cc, tier, anycast) in NAMED_DNS_ONLY {
            let id = add(
                &mut providers,
                name.to_string(),
                cc,
                tier,
                true,
                false,
                anycast,
                false,
            );
            global_dns.push(id);
        }

        // Named regionals.
        for &(name, cc, tier, dns) in NAMED_REGIONAL {
            let id = add(
                &mut providers,
                name.to_string(),
                cc,
                tier,
                dns,
                false,
                false,
                true,
            );
            regional_by_country
                .entry(cc.to_string())
                .or_default()
                .push(id);
        }

        // Synthetic regional tails for each dataset country. Full-scale
        // counts per country: ~1 L-RP, 4 S-RP, 77 XS-RP (matching the
        // paper's 174 / 587 / 11,548 totals once named ones are included).
        let xs_per_country = ((77.0 * tail_scale).round() as usize).max(2);
        let s_per_country = ((4.0 * tail_scale).round() as usize).max(1);
        // Countries other countries depend on (§5.3.3) need a deep enough
        // provider bench to absorb those budgets even at small tail scales.
        const DEP_TARGETS: [&str; 5] = ["RU", "FR", "CZ", "DE", "IR"];
        for c in &COUNTRIES {
            let (xs_per_country, s_per_country) = if DEP_TARGETS.contains(&c.code) {
                (xs_per_country.max(14), s_per_country.max(4))
            } else {
                (xs_per_country, s_per_country)
            };
            let entry = regional_by_country.entry(c.code.to_string()).or_default();
            let named_large = providers
                .iter()
                .filter(|p| p.country == c.code && p.tier == ProviderTier::LargeRegional)
                .count();
            if named_large == 0 {
                let id = add(
                    &mut providers,
                    format!("{} Hosting", c.name),
                    c.code,
                    ProviderTier::LargeRegional,
                    true,
                    false,
                    false,
                    true,
                );
                entry.push(id);
            }
            for i in 0..s_per_country {
                let id = add(
                    &mut providers,
                    format!("{} Net {}", c.code, i + 1),
                    c.code,
                    ProviderTier::SmallRegional,
                    true,
                    false,
                    false,
                    true,
                );
                entry.push(id);
            }
            for i in 0..xs_per_country {
                let id = add(
                    &mut providers,
                    format!("{} Local {}", c.code, i + 1),
                    c.code,
                    ProviderTier::XsRegional,
                    i % 2 == 0,
                    false,
                    false,
                    true,
                );
                entry.push(id);
            }
        }
        // Order each country's regional list large -> small.
        for list in regional_by_country.values_mut() {
            list.sort_by_key(|&id| match providers[id as usize].tier {
                ProviderTier::LargeRegional => 0,
                ProviderTier::SmallRegional => 1,
                _ => 2,
            });
        }

        // CAs: issuing cert ids start at 100_000 to stay clear of provider
        // ids; roots at 200_000.
        let cas: Vec<CaRecord> = CAS
            .iter()
            .enumerate()
            .map(|(i, &(name, cc, tier))| CaRecord {
                id: i as u32,
                name: name.to_string(),
                country: cc.to_string(),
                tier,
                issuing_cert_id: 100_000 + i as u32,
                root_cert_id: 200_000 + i as u32,
            })
            .collect();

        // TLDs: com, globals, one ccTLD per dataset country.
        let mut tlds: Vec<TldRecord> = Vec::new();
        tlds.push(TldRecord {
            id: 0,
            label: "com".into(),
            kind: TldKind::Com,
        });
        for g in GLOBAL_TLDS {
            tlds.push(TldRecord {
                id: tlds.len() as u32,
                label: (*g).to_string(),
                kind: TldKind::Global,
            });
        }
        for c in &COUNTRIES {
            tlds.push(TldRecord {
                id: tlds.len() as u32,
                label: c.code.to_ascii_lowercase(),
                kind: TldKind::Cc(c.code.to_string()),
            });
        }

        Universe {
            providers,
            cas,
            tlds,
            regional_by_country,
            global_hosting,
            global_dns,
        }
    }

    /// Provider by id.
    pub fn provider(&self, id: u32) -> &Provider {
        &self.providers[id as usize]
    }

    /// CA by id.
    pub fn ca(&self, id: u32) -> &CaRecord {
        &self.cas[id as usize]
    }

    /// TLD by id.
    pub fn tld(&self, id: u32) -> &TldRecord {
        &self.tlds[id as usize]
    }

    /// The TLD id for a label.
    pub fn tld_by_label(&self, label: &str) -> Option<u32> {
        self.tlds.iter().find(|t| t.label == label).map(|t| t.id)
    }

    /// Id of a provider by exact name.
    pub fn provider_by_name(&self, name: &str) -> Option<u32> {
        self.providers.iter().find(|p| p.name == name).map(|p| p.id)
    }

    /// Id of a CA by exact name.
    pub fn ca_by_name(&self, name: &str) -> Option<u32> {
        self.cas.iter().find(|c| c.name == name).map(|c| c.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts_match_paper_tiers() {
        let u = Universe::build(1.0);
        let count = |tier: ProviderTier| u.providers.iter().filter(|p| p.tier == tier).count();
        assert_eq!(count(ProviderTier::XlGlobal), 2);
        assert_eq!(count(ProviderTier::LargeGlobalRegional), 2);
        assert_eq!(count(ProviderTier::MediumGlobal), 22 + 2); // + 2 managed DNS
        assert!(count(ProviderTier::LargeRegional) >= 150);
        assert!(count(ProviderTier::XsRegional) > 10_000);
        assert_eq!(u.cas.len(), 45);
        // CA tier counts from Table 3.
        let ca_count = |tier: ProviderTier| u.cas.iter().filter(|c| c.tier == tier).count();
        assert_eq!(ca_count(ProviderTier::LargeGlobal), 7);
        assert_eq!(ca_count(ProviderTier::MediumGlobal), 2);
        assert_eq!(ca_count(ProviderTier::LargeRegional), 11);
        assert_eq!(ca_count(ProviderTier::SmallRegional), 10);
        assert_eq!(ca_count(ProviderTier::XsRegional), 15);
    }

    #[test]
    fn small_scale_still_has_structure() {
        let u = Universe::build(0.05);
        // Named providers always exist.
        assert!(u.provider_by_name("Cloudflare").is_some());
        assert!(u.provider_by_name("Beget").is_some());
        assert!(u.provider_by_name("SuperHosting.BG").is_some());
        // Every dataset country has at least a few regional providers.
        for c in &COUNTRIES {
            let list = &u.regional_by_country[c.code];
            assert!(list.len() >= 3, "{}: {}", c.code, list.len());
        }
    }

    #[test]
    fn cloudflare_is_provider_zero_and_heads_pools() {
        let u = Universe::build(0.1);
        assert_eq!(u.provider_by_name("Cloudflare"), Some(0));
        assert_eq!(u.global_hosting[0], 0);
        assert_eq!(u.global_dns[0], 0);
        let cf = u.provider(0);
        assert!(cf.anycast && cf.cdn && cf.offers_dns);
        assert_eq!(cf.country, "US");
    }

    #[test]
    fn managed_dns_not_in_hosting_pool() {
        let u = Universe::build(0.1);
        let nsone = u.provider_by_name("NSONE").unwrap();
        assert!(!u.global_hosting.contains(&nsone));
        assert!(u.global_dns.contains(&nsone));
        assert!(!u.provider(nsone).offers_hosting);
    }

    #[test]
    fn tlds_cover_all_countries() {
        let u = Universe::build(0.1);
        assert_eq!(u.tld_by_label("com"), Some(0));
        assert!(u.tld_by_label("de").is_some());
        assert!(u.tld_by_label("kg").is_some());
        assert_eq!(u.tlds.len(), 1 + 20 + 150);
    }

    #[test]
    fn ids_are_dense() {
        let u = Universe::build(0.1);
        for (i, p) in u.providers.iter().enumerate() {
            assert_eq!(p.id as usize, i);
        }
        for (i, c) in u.cas.iter().enumerate() {
            assert_eq!(c.id as usize, i);
        }
        for (i, t) in u.tlds.iter().enumerate() {
            assert_eq!(t.id as usize, i);
        }
    }

    #[test]
    fn ca_names_unique() {
        let u = Universe::build(0.1);
        let mut names: Vec<&str> = u.cas.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn tld_labels_unique() {
        let u = Universe::build(0.05);
        let mut labels: Vec<&str> = u.tlds.iter().map(|t| t.label.as_str()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate TLD labels break the registry");
    }

    #[test]
    #[should_panic(expected = "tail_scale")]
    fn tail_scale_validated() {
        let _ = Universe::build(0.0);
    }
}
