//! Countries, continents, and infrastructure layers.

use serde::{Deserialize, Serialize};
use webdep_netsim::Region;

/// Continents, matching the paper's Appendix E codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// AF.
    Africa,
    /// AS.
    Asia,
    /// EU.
    Europe,
    /// NA.
    NorthAmerica,
    /// OC.
    Oceania,
    /// SA.
    SouthAmerica,
}

impl Continent {
    /// All continents.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// The paper's two-letter code.
    pub fn code(self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// The netsim region for latency/anycast modelling.
    pub fn region(self) -> Region {
        match self {
            Continent::Africa => Region::AFRICA,
            Continent::Asia => Region::ASIA,
            Continent::Europe => Region::EUROPE,
            Continent::NorthAmerica => Region::NORTH_AMERICA,
            Continent::Oceania => Region::OCEANIA,
            Continent::SouthAmerica => Region::SOUTH_AMERICA,
        }
    }

    /// A representative country code per continent, used to geolocate the
    /// regional points of presence of CDN providers.
    pub fn representative_country(self) -> &'static str {
        match self {
            Continent::Africa => "ZA",
            Continent::Asia => "SG",
            Continent::Europe => "DE",
            Continent::NorthAmerica => "US",
            Continent::Oceania => "AU",
            Continent::SouthAmerica => "BR",
        }
    }
}

/// The four infrastructure layers the paper analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Hosting / content delivery (§5).
    Hosting,
    /// Authoritative DNS (§6).
    Dns,
    /// Certificate authorities (§7).
    Ca,
    /// Top-level domains (Appendix B).
    Tld,
}

impl Layer {
    /// All layers, in the paper's table order (5, 6, 7, 8).
    pub const ALL: [Layer; 4] = [Layer::Hosting, Layer::Dns, Layer::Ca, Layer::Tld];

    /// Index into `[f64; 4]` score arrays.
    pub fn index(self) -> usize {
        match self {
            Layer::Hosting => 0,
            Layer::Dns => 1,
            Layer::Ca => 2,
            Layer::Tld => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Hosting => "hosting",
            Layer::Dns => "dns",
            Layer::Ca => "ca",
            Layer::Tld => "tld",
        }
    }
}

/// A country in the paper's dataset, with its paper-reported centralization
/// scores per layer (the generator's calibration targets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryRecord {
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// English name.
    pub name: &'static str,
    /// UN subregion, e.g. `South-eastern Asia`.
    pub subregion: &'static str,
    /// Continent.
    pub continent: Continent,
    /// Paper-reported centralization score per layer, indexed by
    /// [`Layer::index`] (hosting, DNS, CA, TLD).
    pub paper_s: [f64; 4],
}

impl CountryRecord {
    /// The paper score for a layer.
    pub fn paper_score(&self, layer: Layer) -> f64 {
        self.paper_s[layer.index()]
    }

    /// Looks up a country by its alpha-2 code.
    pub fn by_code(code: &str) -> Option<&'static CountryRecord> {
        crate::paper_data::COUNTRIES.iter().find(|c| c.code == code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_data::{COUNTRIES, NUM_COUNTRIES};

    #[test]
    fn dataset_has_150_countries() {
        assert_eq!(COUNTRIES.len(), 150);
        assert_eq!(NUM_COUNTRIES, 150);
    }

    #[test]
    fn codes_unique_and_wellformed() {
        let mut codes: Vec<&str> = COUNTRIES.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before);
        assert!(codes.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn paper_anchor_values() {
        // Spot checks straight from Tables 5-8.
        let th = CountryRecord::by_code("TH").unwrap();
        assert_eq!(th.paper_score(Layer::Hosting), 0.3548);
        let ir = CountryRecord::by_code("IR").unwrap();
        assert_eq!(ir.paper_score(Layer::Hosting), 0.0411);
        let cz = CountryRecord::by_code("CZ").unwrap();
        assert_eq!(cz.paper_score(Layer::Dns), 0.0391);
        let sk = CountryRecord::by_code("SK").unwrap();
        assert_eq!(sk.paper_score(Layer::Ca), 0.3304);
        let us = CountryRecord::by_code("US").unwrap();
        assert_eq!(us.paper_score(Layer::Tld), 0.5853);
        assert_eq!(us.continent, Continent::NorthAmerica);
        assert_eq!(us.subregion, "Northern America");
    }

    #[test]
    fn scores_in_plausible_range() {
        for c in &COUNTRIES {
            for l in Layer::ALL {
                let s = c.paper_score(l);
                assert!((0.01..0.70).contains(&s), "{} {}: {s}", c.code, l.name());
            }
        }
    }

    #[test]
    fn continent_counts_match_paper() {
        let count = |cont: Continent| COUNTRIES.iter().filter(|c| c.continent == cont).count();
        assert_eq!(count(Continent::Europe), 39);
        assert_eq!(count(Continent::Oceania), 3);
        // All continents sum to 150.
        let total: usize = Continent::ALL.iter().map(|&c| count(c)).sum();
        assert_eq!(total, 150);
    }

    #[test]
    fn unknown_code_is_none() {
        assert!(CountryRecord::by_code("XX").is_none());
    }

    #[test]
    fn layer_indices() {
        assert_eq!(Layer::Hosting.index(), 0);
        assert_eq!(Layer::Tld.index(), 3);
        assert_eq!(Layer::ALL.len(), 4);
        assert_eq!(Continent::Asia.code(), "AS");
        assert_eq!(Continent::Europe.representative_country(), "DE");
    }
}
