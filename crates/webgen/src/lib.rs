//! # webdep-webgen
//!
//! Synthetic web-infrastructure world generator, calibrated to the paper.
//!
//! The paper measures the real internet via CrUX top lists and active
//! measurement. This crate builds the substitute: a deterministic, seeded
//! world of 150 countries (the paper's exact country set, embedded from
//! Appendix E), thousands of providers, 45 certificate authorities, and a
//! TLD ecosystem — with per-country provider distributions *calibrated* so
//! each country's centralization score matches the value the paper reports
//! in Tables 5–8, and cross-border dependence wired from the §5.3 case
//! studies (CIS→Russia, francophone→France, Slovakia→Czechia, ...).
//!
//! The generated [`World`] can be deployed onto the simulated network
//! ([`deploy::DeployedWorld`]): every website gets serving IPs, DNS
//! delegations, and TLS certificates, so the measurement pipeline recovers
//! the world by *scanning*, not by reading ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod country;
pub mod deploy;
pub mod depmap;
pub mod evolve;
pub mod paper_data;
pub mod provider;
pub mod toplist;
pub mod universe;
pub mod world;

pub use country::{Continent, CountryRecord, Layer};
pub use deploy::{provider_site_counts, DeployConfig, DeployedWorld};
pub use evolve::{evolve, EpochKnobs, EvolutionPlan, WorldDelta};
pub use paper_data::{COUNTRIES, NUM_COUNTRIES};
pub use provider::{CaRecord, Provider, ProviderTier, TldRecord};
pub use universe::Universe;
pub use world::{World, WorldConfig};
