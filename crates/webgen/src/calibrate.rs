//! Distribution calibration: solve for per-provider site counts whose
//! centralization score hits a target.
//!
//! The family is a fixed head share (the top provider, anchored by the
//! paper's quoted market shares) plus a Zipf tail whose exponent is found
//! by bisection. A second entry point adjusts an existing count vector
//! toward a target while respecting per-bucket floors — used after mixing
//! in the shared global-site pool, whose contribution is fixed.

use webdep_core::centralization::centralization_score_counts_ref;

/// Solves for a count vector of `total` sites over at most `pool_size`
/// providers with the given top-provider share, whose centralization score
/// approximates `target_s`.
///
/// Returns counts sorted nonincreasing (head first). The achieved score is
/// typically within ±0.005 of the target for `total >= 1000`.
///
/// Panics if inputs are degenerate (`total == 0`, `pool_size < 2`,
/// `head_share` outside `(0, 1)`).
pub fn solve_counts(target_s: f64, total: u64, pool_size: usize, head_share: f64) -> Vec<u64> {
    assert!(total > 0, "need sites");
    assert!(pool_size >= 2, "need at least two providers");
    assert!(
        head_share > 0.0 && head_share < 1.0,
        "head share must be in (0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&target_s),
        "target score must be in [0, 1)"
    );

    let c = total as f64;
    let mut a1 = ((head_share * c).round() as u64).clamp(1, total - 1);

    // The head alone must not overshoot the target; back it off if the
    // caller's anchor is inconsistent with the score.
    while a1 > 1 && (a1 as f64 / c).powi(2) > target_s {
        a1 = (a1 as f64 * 0.95) as u64;
    }

    let tail_total = total - a1;
    let k_all = (pool_size - 1).min(tail_total as usize).max(1);
    // Two-regime tail: a Zipf "body" plus a thin tail of single-site
    // providers. Real toplists look like this (§5.1: countries have long
    // tails of providers hosting a handful of sites, yet 90% of sites sit
    // on fewer than 206 providers) — a single Zipf over a large pool would
    // flatten too far and blow that coverage bound.
    const BODY_MAX: usize = 185;
    let k = k_all.min(BODY_MAX);
    let thin = (k_all - k) as u64; // providers with exactly one site
    let thin = thin.min(tail_total.saturating_sub(k as u64));
    let body_total = tail_total - thin;

    // Continuous score for tail exponent `s`.
    let score_at = |s: f64| -> f64 {
        let mut w = Vec::with_capacity(k);
        let mut wsum = 0.0;
        for i in 1..=k {
            let wi = (i as f64).powf(-s);
            w.push(wi);
            wsum += wi;
        }
        let mut sq = (a1 as f64 / c).powi(2);
        for wi in &w {
            let share = (body_total as f64 * wi / wsum) / c;
            sq += share * share;
        }
        sq += thin as f64 / (c * c);
        sq - 1.0 / c
    };

    // The score is monotone nondecreasing in the exponent. Handle the
    // unreachable ends by growing the head / flattening fully.
    let (lo, hi) = (0.0f64, 8.0f64);
    let exponent = if score_at(lo) >= target_s {
        lo
    } else if score_at(hi) <= target_s {
        hi
    } else {
        let (mut lo, mut hi) = (lo, hi);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if score_at(mid) < target_s {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    // Round the body with largest-remainder so the total is exact.
    let mut weights: Vec<f64> = (1..=k).map(|i| (i as f64).powf(-exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = body_total as f64 * *w / wsum;
    }
    let mut tail: Vec<u64> = weights.iter().map(|w| w.floor() as u64).collect();
    let assigned: u64 = tail.iter().sum();
    let mut remainder = (body_total - assigned) as usize;
    // Distribute leftovers by largest fractional part.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = weights[a] - weights[a].floor();
        let fb = weights[b] - weights[b].floor();
        fb.partial_cmp(&fa).expect("finite weights")
    });
    let mut oi = 0;
    while remainder > 0 {
        tail[order[oi % k]] += 1;
        oi += 1;
        remainder -= 1;
    }

    let mut counts = Vec::with_capacity(k + 1 + thin as usize);
    counts.push(a1);
    counts.extend(tail.into_iter().filter(|&t| t > 0));
    counts.extend(std::iter::repeat_n(1, thin as usize));
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts
}

/// Like [`solve_counts`] but with several fixed head shares — used when
/// the paper quotes both the top provider and a dominant runner-up (e.g.
/// Bulgaria: Cloudflare ~25% with SuperHosting.BG at 22%, §5.2).
///
/// `heads` are the fixed market shares of ranks 1..=k; the Zipf tail is
/// solved for the remaining score mass. Panics on degenerate input or if
/// the heads alone overshoot the target.
pub fn solve_counts_multi(target_s: f64, total: u64, pool_size: usize, heads: &[f64]) -> Vec<u64> {
    assert!(total > 0, "need sites");
    assert!(!heads.is_empty(), "need at least one head share");
    assert!(pool_size > heads.len(), "pool must exceed the head count");
    let c = total as f64;
    let head_counts: Vec<u64> = heads
        .iter()
        .map(|&h| {
            assert!(h > 0.0 && h < 1.0, "head shares must be in (0, 1)");
            ((h * c).round() as u64).max(1)
        })
        .collect();
    let head_total: u64 = head_counts.iter().sum();
    assert!(head_total < total, "heads consume every site");
    let head_sq: f64 = head_counts.iter().map(|&a| (a as f64 / c).powi(2)).sum();
    assert!(
        head_sq <= target_s + 1.0 / c,
        "head shares alone overshoot the target score"
    );

    let tail_total = total - head_total;
    let k = (pool_size - heads.len()).min(tail_total as usize).max(1);
    let score_at = |s: f64| -> f64 {
        let mut wsum = 0.0;
        let mut w = Vec::with_capacity(k);
        for i in 1..=k {
            let wi = (i as f64).powf(-s);
            w.push(wi);
            wsum += wi;
        }
        let mut sq = head_sq;
        for wi in &w {
            let share = (tail_total as f64 * wi / wsum) / c;
            sq += share * share;
        }
        sq - 1.0 / c
    };
    let exponent = if score_at(0.0) >= target_s {
        0.0
    } else if score_at(8.0) <= target_s {
        8.0
    } else {
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if score_at(mid) < target_s {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let mut weights: Vec<f64> = (1..=k).map(|i| (i as f64).powf(-exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = tail_total as f64 * *w / wsum;
    }
    let mut tail: Vec<u64> = weights.iter().map(|w| w.floor() as u64).collect();
    let mut remainder = (tail_total - tail.iter().sum::<u64>()) as usize;
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = weights[a] - weights[a].floor();
        let fb = weights[b] - weights[b].floor();
        fb.partial_cmp(&fa).expect("finite weights")
    });
    let mut oi = 0;
    while remainder > 0 {
        tail[order[oi % k]] += 1;
        oi += 1;
        remainder -= 1;
    }
    let mut counts = head_counts;
    counts.extend(tail.into_iter().filter(|&t| t > 0));
    counts
}

/// Adjusts `counts` in place toward `target_s` by moving sites between the
/// head bucket (index 0) and tail buckets, never taking a bucket below its
/// floor. Buckets beyond `floors.len()` have floor 0.
///
/// Returns the achieved score. Used to restore calibration after the
/// country's share of the global site pool has pinned part of every
/// bucket.
pub fn adjust_to_target(counts: &mut [u64], floors: &[u64], target_s: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.len() < 2 {
        return 0.0;
    }
    let c = total as f64;
    let c2 = c * c;
    let floor_of = |i: usize| floors.get(i).copied().unwrap_or(0);
    let score_of = |sq: f64| sq / c2 - 1.0 / c;
    let mut sq: f64 = counts.iter().map(|&a| (a * a) as f64).sum();

    // Moving m sites from bucket with count b into bucket with count a
    // changes the square sum by 2m(a - b) + 2m^2.
    let delta_sq = |a: u64, b: u64, m: u64| -> f64 {
        let (a, b, m) = (a as f64, b as f64, m as f64);
        2.0 * m * (a - b) + 2.0 * m * m
    };

    let current = score_of(sq);
    if current < target_s - 0.002 {
        // Raise concentration: pour tail slack into the largest bucket,
        // smallest donors first (they cost the least score error), one
        // sweep over a presorted donor list.
        let max_i = (0..counts.len())
            .max_by_key(|&i| counts[i])
            .expect("len >= 2");
        let mut donors: Vec<usize> = (0..counts.len())
            .filter(|&i| i != max_i && counts[i] > floor_of(i))
            .collect();
        donors.sort_by_key(|&i| counts[i]);
        for d in donors {
            let gap = target_s - score_of(sq);
            if gap <= 0.002 {
                break;
            }
            let avail = counts[d] - floor_of(d);
            // Find the largest m <= avail with delta_sq <= needed, by
            // binary search on m (delta is monotone in m).
            let needed = gap * c2;
            let mut lo = 0u64;
            let mut hi = avail;
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if delta_sq(counts[max_i], counts[d], mid) <= needed {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            // Take at least one site if any move is still helpful.
            let m = lo.max(1).min(avail);
            if delta_sq(counts[max_i], counts[d], m) > needed && lo == 0 {
                // Even one site overshoots; take it only if it brings us
                // closer to the target than staying put.
                let over = delta_sq(counts[max_i], counts[d], 1) - needed;
                if over > needed {
                    continue;
                }
            }
            sq += delta_sq(counts[max_i], counts[d], m);
            counts[max_i] += m;
            counts[d] -= m;
        }
    } else if current > target_s + 0.002 {
        // Lower concentration: shed from the largest bucket into the
        // smallest ones. Bounded rounds; each round can move a large chunk.
        for _ in 0..512 {
            let gap = score_of(sq) - target_s;
            if gap <= 0.002 {
                break;
            }
            let src = (0..counts.len())
                .filter(|&i| counts[i] > floor_of(i))
                .max_by_key(|&i| counts[i]);
            let Some(src) = src else { break };
            let dst = (0..counts.len())
                .filter(|&i| i != src)
                .min_by_key(|&i| counts[i])
                .expect("len >= 2");
            if counts[src] <= counts[dst] + 1 {
                break; // flat under the floors; target unreachable
            }
            // Largest m that does not overshoot and does not swap order.
            let needed = gap * c2;
            let max_m = ((counts[src] - counts[dst]) / 2).max(1);
            let mut lo = 1u64;
            let mut hi = max_m.min(counts[src] - floor_of(src));
            if hi == 0 {
                break;
            }
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if -delta_sq(counts[dst], counts[src], mid) <= needed {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            let m = lo;
            sq += delta_sq(counts[dst], counts[src], m);
            counts[dst] += m;
            counts[src] -= m;
        }
    }
    centralization_score_counts_ref(counts).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::Layer;
    use crate::depmap::head_share;
    use crate::paper_data::COUNTRIES;

    fn achieved(counts: &[u64]) -> f64 {
        centralization_score_counts_ref(counts).unwrap()
    }

    #[test]
    fn hits_simple_targets() {
        for &target in &[0.05, 0.10, 0.20, 0.35, 0.58] {
            let head = crate::depmap::head_share_for_score(target);
            let counts = solve_counts(target, 10_000, 400, head);
            let s = achieved(&counts);
            assert!(
                (s - target).abs() < 0.01,
                "target {target}: achieved {s} with head {head}"
            );
            assert_eq!(counts.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn all_150_hosting_targets_within_tolerance() {
        for c in &COUNTRIES {
            let target = c.paper_score(Layer::Hosting);
            let head = head_share(c, Layer::Hosting);
            let counts = solve_counts(target, 10_000, 450, head);
            let s = achieved(&counts);
            assert!(
                (s - target).abs() < 0.012,
                "{}: target {target}, achieved {s}",
                c.code
            );
        }
    }

    #[test]
    fn ca_layer_small_pool() {
        // 45 CAs only; high targets are still reachable.
        for c in COUNTRIES.iter().take(40) {
            let target = c.paper_score(Layer::Ca);
            let head = head_share(c, Layer::Ca);
            let counts = solve_counts(target, 10_000, 45, head);
            let s = achieved(&counts);
            assert!(
                (s - target).abs() < 0.015,
                "{}: target {target}, achieved {s}",
                c.code
            );
            assert!(counts.len() <= 45);
        }
    }

    #[test]
    fn counts_are_sorted_and_positive() {
        let counts = solve_counts(0.15, 5000, 300, 0.3);
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn small_totals_still_work() {
        let counts = solve_counts(0.2, 200, 100, 0.4);
        assert_eq!(counts.iter().sum::<u64>(), 200);
        let s = achieved(&counts);
        assert!((s - 0.2).abs() < 0.05, "{s}");
    }

    #[test]
    fn inconsistent_head_is_backed_off() {
        // head 0.9 would give S >= 0.81 alone; target 0.3 forces back-off.
        let counts = solve_counts(0.3, 10_000, 100, 0.9);
        let s = achieved(&counts);
        assert!((s - 0.3).abs() < 0.02, "{s}");
    }

    #[test]
    fn adjust_raises_score() {
        let mut counts = vec![100u64, 100, 100, 100, 100];
        let s = adjust_to_target(&mut counts, &[], 0.3);
        assert!((s - 0.3).abs() < 0.01, "{s}");
        assert_eq!(counts.iter().sum::<u64>(), 500);
    }

    #[test]
    fn adjust_lowers_score() {
        let mut counts = vec![450u64, 20, 10, 10, 5, 5];
        let s = adjust_to_target(&mut counts, &[], 0.2);
        assert!((s - 0.2).abs() < 0.01, "{s}");
        assert_eq!(counts.iter().sum::<u64>(), 500);
    }

    #[test]
    fn adjust_respects_floors() {
        let mut counts = vec![300u64, 100, 100];
        let floors = vec![0u64, 100, 100];
        let _ = adjust_to_target(&mut counts, &floors, 0.9);
        assert!(counts[1] >= 100 && counts[2] >= 100);
    }

    #[test]
    #[should_panic(expected = "head share")]
    fn validates_head_share() {
        let _ = solve_counts(0.1, 100, 10, 1.5);
    }
}
