//! Longitudinal evolution: seeded multi-epoch world churn (§5.4).
//!
//! The paper's second snapshot shows: strong score stability (ρ = 0.98),
//! toplist churn (mean Jaccard ≈ 0.37, Russia 0.4), Cloudflare adoption up
//! ~3.8 points everywhere except Russia, Belarus, Uzbekistan, and Myanmar,
//! Turkmenistan +11.3 and Brazil +10 as the extremes, and Russia shifting
//! from US (30% → 29%) to domestic providers (50% → 56%).
//!
//! [`EvolutionPlan`] generalizes that single re-measurement into a seeded
//! sequence of epochs. Each [`EpochKnobs`] entry controls churn (fixed
//! fraction or the paper's Jaccard targets), in-place provider migration,
//! and whether the §5.4 adoption deltas apply; [`EvolutionPlan::paper`] is
//! the calibrated 2023→2025 preset and [`evolve`] remains its one-call
//! form. Every epoch emits a [`WorldDelta`] naming the exact dirty site
//! set — appended replacements plus in-place migrations — so downstream
//! consumers (`measure_delta`, cube delta-apply, snapshot publish) can do
//! O(churn) work; [`WorldDelta::certify_unchanged`] proves every other
//! site record is bit-identical between the two snapshots.

use crate::country::CountryRecord;
use crate::paper_data::COUNTRIES;
use crate::toplist::DomainForge;
use crate::world::World;

/// Target mean Jaccard index between the two snapshots' toplists.
pub const TARGET_JACCARD: f64 = 0.37;
/// Russia's observed Jaccard (slightly above the mean).
pub const TARGET_JACCARD_RU: f64 = 0.40;

/// Cloudflare share delta (percentage points) for a country (§5.4).
pub fn cloudflare_delta_pts(country: &CountryRecord) -> f64 {
    match country.code {
        "TM" => 11.3,
        "BR" => 10.0,
        "RU" => -2.0,
        "BY" | "UZ" | "MM" => -1.0,
        _ => 3.8,
    }
}

/// Per-epoch evolution knobs.
#[derive(Clone, Debug)]
pub struct EpochKnobs {
    /// Fraction of each country's *local* toplist entries replaced by fresh
    /// domains. `None` sizes the churn from the paper's per-country Jaccard
    /// targets ([`TARGET_JACCARD`] / [`TARGET_JACCARD_RU`]).
    pub churn: Option<f64>,
    /// Fraction of surviving local toplist sites migrated **in place** to the
    /// country's largest regional provider (dirties mid-store sites without
    /// growing the site table).
    pub migration: f64,
    /// Fraction of provider serving addresses a measurement of this epoch
    /// should black-hole (carried to the pipeline's fault plan by the caller;
    /// evolution itself never consults it). Delta re-measurement stays valid
    /// only while this is constant across epochs.
    pub outage: f64,
    /// Apply the §5.4 provider-shift deltas (Cloudflare adoption,
    /// localization drift, Russia's domestic shift) to the fresh sites.
    pub adoption: bool,
    /// Label for the evolved world; `None` derives `"{base}/eN"`.
    pub label: Option<String>,
}

impl EpochKnobs {
    /// The paper's calibrated May-2023 → May-2025 step.
    pub fn paper() -> Self {
        EpochKnobs {
            churn: None,
            migration: 0.0,
            outage: 0.0,
            adoption: true,
            label: Some("2025-05".to_string()),
        }
    }

    /// A steady-state epoch: fixed churn plus a small in-place migration
    /// stream (one tenth of the churn rate).
    pub fn steady(churn: f64) -> Self {
        EpochKnobs {
            churn: Some(churn),
            migration: churn * 0.1,
            outage: 0.0,
            adoption: true,
            label: None,
        }
    }
}

/// A seeded multi-epoch evolution schedule.
#[derive(Clone, Debug)]
pub struct EvolutionPlan {
    /// Mixed into every per-site churn/migration decision. Seed 0 with the
    /// paper preset reproduces the historical single-step [`evolve`] output
    /// byte for byte.
    pub seed: u64,
    /// One entry per epoch, applied in order.
    pub epochs: Vec<EpochKnobs>,
}

impl EvolutionPlan {
    /// The paper's single 2023→2025 re-measurement.
    pub fn paper() -> Self {
        EvolutionPlan {
            seed: 0,
            epochs: vec![EpochKnobs::paper()],
        }
    }

    /// `epochs` steady-state epochs at a fixed churn fraction.
    pub fn continuous(epochs: usize, churn: f64, seed: u64) -> Self {
        EvolutionPlan {
            seed,
            epochs: vec![EpochKnobs::steady(churn); epochs],
        }
    }

    /// Applies epoch `epoch` of the plan to `world`, returning the evolved
    /// world and the delta naming every site that changed.
    ///
    /// The universe is shared; churned entries *append* fresh sites, so
    /// indices of the previous snapshot remain valid in the new world's
    /// site table (both worlds can be deployed independently), and only
    /// migration rewrites a site record in place.
    pub fn evolve_epoch(&self, world: &World, epoch: usize) -> (World, WorldDelta) {
        let knobs = &self.epochs[epoch];
        let mut new_world = world.clone();
        new_world.label = knobs.label.clone().unwrap_or_else(|| next_label(world));
        let mut warnings = Vec::new();
        // Keep new domains clear of the originals and of earlier epochs.
        let mut forge = DomainForge::new(50_000_000u64.wrapping_mul(epoch as u64 + 1));
        // Seed 0 / epoch 0 leaves the historical decision stream untouched.
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((epoch as u64).wrapping_mul(0x85EB_CA6B));
        let cf = world.universe.provider_by_name("Cloudflare");
        if cf.is_none() && knobs.adoption {
            warnings.push(
                "provider 'Cloudflare' absent from universe; adoption deltas skipped".to_string(),
            );
        }

        let mut replaced: Vec<(u32, u32)> = Vec::new();
        let mut migrated: Vec<u32> = Vec::new();
        for (ci, country) in COUNTRIES.iter().enumerate() {
            let c_total = world.toplists[ci].len() as f64;

            // Count global vs local entries to size the churn. The Jaccard
            // preset solves J = (g + k*l) / (g + (2 - k) * l) for the keep
            // fraction k.
            let local_idx: Vec<usize> = (0..world.toplists[ci].len())
                .filter(|&i| {
                    let s = world.toplists[ci][i];
                    !world.sites[s as usize].is_global
                })
                .collect();
            let g = c_total - local_idx.len() as f64;
            let l = local_idx.len() as f64;
            let keep = match knobs.churn {
                Some(f) => 1.0 - f.clamp(0.0, 1.0),
                None => {
                    let jaccard_target = if country.code == "RU" {
                        TARGET_JACCARD_RU
                    } else {
                        TARGET_JACCARD
                    };
                    if l > 0.0 {
                        ((jaccard_target * (g + 2.0 * l) - g) / (l * (1.0 + jaccard_target)))
                            .clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                }
            };

            // Churn: replace (1 - keep) of local sites with fresh domains
            // that copy the replaced site's dependency mixture.
            let epoch_replaced_lo = replaced.len();
            for (pos, &tpos) in local_idx.iter().enumerate() {
                let spread = (pos as u64).wrapping_add(mix).wrapping_mul(2654435761) % 1000;
                if (spread as f64) < (1.0 - keep) * 1000.0 {
                    let old_site_idx = world.toplists[ci][tpos];
                    let old = &world.sites[old_site_idx as usize];
                    let mut fresh = old.clone();
                    fresh.domain = forge.next(&world.universe.tld(old.tld).label);
                    let new_idx = new_world.sites.len() as u32;
                    new_world.sites.push(fresh);
                    new_world.toplists[ci][tpos] = new_idx;
                    replaced.push((old_site_idx, new_idx));
                }
            }
            let fresh_sites: Vec<u32> = replaced[epoch_replaced_lo..]
                .iter()
                .map(|&(_, n)| n)
                .collect();

            // In-place migration: a slice of the *surviving* local sites
            // moves to the country's largest regional provider without
            // changing its domain or toplist slot.
            if knobs.migration > 0.0 {
                if let Some(&fallback) = world
                    .universe
                    .regional_by_country
                    .get(country.code)
                    .and_then(|lst| lst.first())
                {
                    for (pos, &tpos) in local_idx.iter().enumerate() {
                        if new_world.toplists[ci][tpos] != world.toplists[ci][tpos] {
                            continue; // churned away this epoch
                        }
                        // Unlike the churn stream, mix the country in:
                        // positions repeat across all 150 toplists, and a
                        // position-only draw would migrate the same slots
                        // everywhere (or nowhere, at low rates).
                        let spread = (pos as u64)
                            .wrapping_add((ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            .wrapping_add(mix)
                            .wrapping_mul(0x2545_F491_4F6C_DD1D)
                            .rotate_left(17)
                            % 1000;
                        if (spread as f64) < knobs.migration * 1000.0 {
                            let idx = world.toplists[ci][tpos];
                            let s = &mut new_world.sites[idx as usize];
                            if s.hosting != fallback {
                                s.hosting = fallback;
                                s.dns = fallback;
                                migrated.push(idx);
                            }
                        }
                    }
                }
            }

            if !knobs.adoption {
                continue;
            }

            // Provider-shift conversions operate on the fresh sites only.
            let delta_sites = (cloudflare_delta_pts(country) / 100.0 * c_total).round() as i64;
            if let Some(cf) = cf {
                if delta_sites > 0 {
                    // Cloudflare's gains come mostly from *other US
                    // providers* (§5.4: overall US reliance does not rise
                    // with Cloudflare): convert US-hosted fresh sites
                    // first, then any others.
                    let mut left = delta_sites as u64;
                    for us_pass in [true, false] {
                        for &idx in &fresh_sites {
                            if left == 0 {
                                break;
                            }
                            let s = &mut new_world.sites[idx as usize];
                            if s.hosting == cf {
                                continue;
                            }
                            let is_us = world.universe.provider(s.hosting).country == "US";
                            if is_us == us_pass {
                                s.hosting = cf;
                                s.dns = cf; // Cloudflare bundles DNS (§6.1)
                                left -= 1;
                            }
                        }
                    }
                } else if delta_sites < 0 {
                    // Shed Cloudflare toward the country's largest regional
                    // provider.
                    let fallback = world
                        .universe
                        .regional_by_country
                        .get(country.code)
                        .and_then(|lst| lst.first())
                        .copied();
                    if let Some(fallback) = fallback {
                        let mut left = (-delta_sites) as u64;
                        for &idx in &fresh_sites {
                            if left == 0 {
                                break;
                            }
                            let s = &mut new_world.sites[idx as usize];
                            if s.hosting == cf {
                                s.hosting = fallback;
                                s.dns = fallback;
                                left -= 1;
                            }
                        }
                    }
                }
            }

            // Mild localization drift: every country moves a small,
            // country-specific slice of its fresh sites from US providers
            // to its largest regional provider. Combined with the US-first
            // Cloudflare conversions above, roughly a third of countries
            // end up with a net *decrease* in US reliance (paper: 56 of
            // 150).
            let h = {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in country.code.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            let drift_pts = 0.5 + (h % 31) as f64 / 10.0; // 0.5 .. 3.5 points
            if let Some(&fallback) = world
                .universe
                .regional_by_country
                .get(country.code)
                .and_then(|lst| lst.first())
            {
                let mut left = (drift_pts / 100.0 * c_total).round() as u64;
                for &idx in &fresh_sites {
                    if left == 0 {
                        break;
                    }
                    let s = &mut new_world.sites[idx as usize];
                    if Some(s.hosting) != cf && world.universe.provider(s.hosting).country == "US" {
                        s.hosting = fallback;
                        s.dns = fallback;
                        left -= 1;
                    }
                }
            }

            // Russia's shift away from the US toward domestic providers
            // (+6 points domestic, §5.4).
            if country.code == "RU" {
                let ru_providers = world
                    .universe
                    .regional_by_country
                    .get("RU")
                    .cloned()
                    .unwrap_or_default();
                if !ru_providers.is_empty() {
                    let mut left = (0.06 * c_total).round() as u64;
                    let mut rr = 0usize;
                    for &idx in &fresh_sites {
                        if left == 0 {
                            break;
                        }
                        let s = &mut new_world.sites[idx as usize];
                        let hq = &world.universe.provider(s.hosting).country;
                        if hq == "US" && Some(s.hosting) != cf {
                            let target = ru_providers[rr % ru_providers.len()];
                            rr += 1;
                            s.hosting = target;
                            s.dns = target;
                            left -= 1;
                        }
                    }
                }
            }
        }

        migrated.sort_unstable();
        migrated.dedup();
        let delta = WorldDelta {
            from_label: world.label.clone(),
            to_label: new_world.label.clone(),
            from_sites: world.sites.len(),
            to_sites: new_world.sites.len(),
            replaced,
            migrated,
            warnings,
        };
        (new_world, delta)
    }
}

/// `"{base}/eN"` → `"{base}/eN+1"`, anything else → `"{label}/e1"`.
fn next_label(world: &World) -> String {
    if let Some((base, n)) = world.label.rsplit_once("/e") {
        if let Ok(n) = n.parse::<u64>() {
            return format!("{base}/e{}", n + 1);
        }
    }
    format!("{}/e1", world.label)
}

/// Produces the 2025 snapshot of `world` (the paper preset of
/// [`EvolutionPlan`]).
pub fn evolve(world: &World) -> World {
    EvolutionPlan::paper().evolve_epoch(world, 0).0
}

/// The exact change set between two consecutive epoch worlds.
///
/// `measure_delta` re-measures only [`WorldDelta::dirty`] sites;
/// everything else is covered by the unchanged-site certificate
/// ([`WorldDelta::certify_unchanged`]).
#[derive(Clone, Debug)]
pub struct WorldDelta {
    /// Label of the world this delta evolved from.
    pub from_label: String,
    /// Label of the evolved world.
    pub to_label: String,
    /// Site-table length of the previous epoch.
    pub from_sites: usize,
    /// Site-table length of the evolved epoch (appends only).
    pub to_sites: usize,
    /// `(old toplist site index, fresh replacement index)` per churned
    /// entry; every replacement index lies in [`WorldDelta::added`].
    pub replaced: Vec<(u32, u32)>,
    /// Existing site indices whose provider assignment changed in place
    /// (sorted, deduplicated).
    pub migrated: Vec<u32>,
    /// Non-fatal degradations (e.g. an adoption target absent from the
    /// universe).
    pub warnings: Vec<String>,
}

impl WorldDelta {
    /// The appended site indices (all of them fresh replacements).
    pub fn added(&self) -> std::ops::Range<usize> {
        self.from_sites..self.to_sites
    }

    /// Per-site dirty flags for the evolved world: `true` for appended and
    /// migrated sites, `false` for certified-unchanged ones.
    pub fn dirty(&self) -> Vec<bool> {
        let mut dirty = vec![false; self.to_sites];
        for d in dirty.iter_mut().skip(self.from_sites) {
            *d = true;
        }
        for &i in &self.migrated {
            dirty[i as usize] = true;
        }
        dirty
    }

    /// Number of dirty sites.
    pub fn dirty_count(&self) -> usize {
        (self.to_sites - self.from_sites) + self.migrated.len()
    }

    /// The unchanged-site certificate: every site outside the dirty set
    /// must be bit-identical between the two snapshots (the universe is
    /// shared by construction). Returns the first offending index.
    pub fn certify_unchanged(&self, old: &World, new: &World) -> Result<(), String> {
        if old.sites.len() != self.from_sites || new.sites.len() != self.to_sites {
            return Err(format!(
                "site counts {}→{} do not match delta {}→{}",
                old.sites.len(),
                new.sites.len(),
                self.from_sites,
                self.to_sites
            ));
        }
        let dirty = self.dirty();
        for (i, &d) in dirty.iter().enumerate().take(self.from_sites) {
            if !d && old.sites[i] != new.sites[i] {
                return Err(format!("site {i} changed outside the dirty set"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::Layer;
    use crate::world::WorldConfig;
    use std::collections::HashSet;

    fn pair() -> (World, World) {
        let w = World::generate(WorldConfig::tiny());
        let e = evolve(&w);
        (w, e)
    }

    fn domains(w: &World, ci: usize) -> HashSet<String> {
        w.toplists[ci]
            .iter()
            .map(|&i| w.sites[i as usize].domain.clone())
            .collect()
    }

    fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
        let inter = a.intersection(b).count() as f64;
        inter / (a.len() as f64 + b.len() as f64 - inter)
    }

    #[test]
    fn toplist_churn_near_target() {
        let (w, e) = pair();
        let mut js = Vec::new();
        for ci in (0..150).step_by(10) {
            let (a, b) = (domains(&w, ci), domains(&e, ci));
            js.push(jaccard(&a, &b));
        }
        let mean = js.iter().sum::<f64>() / js.len() as f64;
        assert!(
            (0.25..0.55).contains(&mean),
            "mean Jaccard {mean} (target ~0.37)"
        );
    }

    #[test]
    fn cloudflare_rises_almost_everywhere() {
        let (w, e) = pair();
        let cf = w.universe.provider_by_name("Cloudflare").unwrap();
        let share = |world: &World, ci: usize| {
            let counts = world.layer_counts(ci, Layer::Hosting);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            counts
                .iter()
                .find(|&&(id, _)| id == cf)
                .map(|&(_, c)| c as f64 / total as f64)
                .unwrap_or(0.0)
        };
        let br = World::country_index("BR").unwrap();
        let tm = World::country_index("TM").unwrap();
        let ru = World::country_index("RU").unwrap();
        assert!(
            share(&e, br) > share(&w, br) + 0.05,
            "BR: {} -> {}",
            share(&w, br),
            share(&e, br)
        );
        assert!(share(&e, tm) > share(&w, tm) + 0.05);
        assert!(share(&e, ru) <= share(&w, ru) + 0.005, "RU must not rise");
    }

    #[test]
    fn russia_shifts_to_domestic_providers() {
        let (w, e) = pair();
        let ru = World::country_index("RU").unwrap();
        let domestic = |world: &World| {
            let counts = world.layer_counts(ru, Layer::Hosting);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            counts
                .iter()
                .filter(|&&(id, _)| world.universe.provider(id).country == "RU")
                .map(|&(_, c)| c as f64)
                .sum::<f64>()
                / total as f64
        };
        assert!(
            domestic(&e) > domestic(&w) + 0.02,
            "{} -> {}",
            domestic(&w),
            domestic(&e)
        );
    }

    #[test]
    fn scores_strongly_correlated_across_snapshots() {
        let (w, e) = pair();
        let old: Vec<f64> = (0..150)
            .map(|ci| w.achieved_score(ci, Layer::Hosting))
            .collect();
        let new: Vec<f64> = (0..150)
            .map(|ci| e.achieved_score(ci, Layer::Hosting))
            .collect();
        let c = webdep_stats_free_pearson(&old, &new);
        assert!(c > 0.9, "rho {c}");
    }

    /// Minimal Pearson to avoid a dev-dependency cycle with webdep-stats.
    fn webdep_stats_free_pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx.sqrt() * syy.sqrt())
    }

    #[test]
    fn original_world_untouched() {
        let w = World::generate(WorldConfig::tiny());
        let before = w.sites.len();
        let snapshot: Vec<String> = w.sites.iter().take(20).map(|s| s.domain.clone()).collect();
        let _ = evolve(&w);
        assert_eq!(w.sites.len(), before);
        let after: Vec<String> = w.sites.iter().take(20).map(|s| s.domain.clone()).collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn evolved_label_and_site_growth() {
        let (w, e) = pair();
        assert_eq!(w.label, "2023-05");
        assert_eq!(e.label, "2025-05");
        assert!(e.sites.len() > w.sites.len());
    }

    #[test]
    fn paper_plan_delta_certifies_unchanged_sites() {
        let w = World::generate(WorldConfig::tiny());
        let (e, delta) = EvolutionPlan::paper().evolve_epoch(&w, 0);
        assert_eq!(delta.from_label, "2023-05");
        assert_eq!(delta.to_label, "2025-05");
        assert_eq!(delta.from_sites, w.sites.len());
        assert_eq!(delta.to_sites, e.sites.len());
        assert!(delta.migrated.is_empty(), "paper preset migrates nothing");
        assert_eq!(delta.replaced.len(), e.sites.len() - w.sites.len());
        assert!(delta.warnings.is_empty());
        delta.certify_unchanged(&w, &e).unwrap();
        // The wrapper and the plan agree byte for byte.
        let e2 = evolve(&w);
        assert_eq!(e.label, e2.label);
        assert_eq!(e.sites, e2.sites);
        assert_eq!(e.toplists, e2.toplists);
    }

    #[test]
    fn continuous_plan_chains_epochs_with_certified_deltas() {
        let base = World::generate(WorldConfig::tiny());
        let plan = EvolutionPlan::continuous(3, 0.10, 7);
        let mut prev = base.clone();
        for epoch in 0..3 {
            let (next, delta) = plan.evolve_epoch(&prev, epoch);
            delta.certify_unchanged(&prev, &next).unwrap();
            assert_eq!(delta.from_label, prev.label);
            assert_eq!(delta.to_label, next.label);
            assert!(delta.to_sites > delta.from_sites, "epoch {epoch} grew");
            assert!(
                !delta.migrated.is_empty(),
                "steady preset migrates sites in place"
            );
            // Migrated sites really changed; dirty covers every change.
            for &i in &delta.migrated {
                assert_ne!(prev.sites[i as usize], next.sites[i as usize]);
            }
            prev = next;
        }
        assert_eq!(prev.label, "2023-05/e3");
        // Same base, same plan, same seed → byte-identical worlds.
        let again = {
            let mut p = base.clone();
            for epoch in 0..3 {
                p = plan.evolve_epoch(&p, epoch).0;
            }
            p
        };
        assert_eq!(prev.sites, again.sites);
        assert_eq!(prev.toplists, again.toplists);
    }

    #[test]
    fn seed_changes_the_churn_stream() {
        let w = World::generate(WorldConfig::tiny());
        let a = EvolutionPlan::continuous(1, 0.10, 1).evolve_epoch(&w, 0).0;
        let b = EvolutionPlan::continuous(1, 0.10, 2).evolve_epoch(&w, 0).0;
        assert_ne!(a.toplists, b.toplists, "different seeds must differ");
    }

    #[test]
    fn missing_cloudflare_degrades_to_no_adoption_with_warning() {
        let mut w = World::generate(WorldConfig::tiny());
        let cf = w.universe.provider_by_name("Cloudflare").unwrap();
        w.universe.providers[cf as usize].name = "NotCloudflare".to_string();
        assert!(w.universe.provider_by_name("Cloudflare").is_none());
        let (e, delta) = EvolutionPlan::paper().evolve_epoch(&w, 0);
        assert!(
            delta.warnings.iter().any(|m| m.contains("Cloudflare")),
            "warnings: {:?}",
            delta.warnings
        );
        delta.certify_unchanged(&w, &e).unwrap();
        assert!(e.sites.len() > w.sites.len(), "churn still applies");
    }
}
