//! Longitudinal evolution: the May-2023 → May-2025 re-measurement (§5.4).
//!
//! The paper's second snapshot shows: strong score stability (ρ = 0.98),
//! toplist churn (mean Jaccard ≈ 0.37, Russia 0.4), Cloudflare adoption up
//! ~3.8 points everywhere except Russia, Belarus, Uzbekistan, and Myanmar,
//! Turkmenistan +11.3 and Brazil +10 as the extremes, and Russia shifting
//! from US (30% → 29%) to domestic providers (50% → 56%). [`evolve`]
//! transforms a world accordingly: local sites churn (new domains copy the
//! replaced site's dependency mixture) and a slice of the new sites is
//! converted between providers to realize the adoption deltas.

use crate::country::CountryRecord;
use crate::paper_data::COUNTRIES;
use crate::toplist::DomainForge;
use crate::world::World;

/// Target mean Jaccard index between the two snapshots' toplists.
pub const TARGET_JACCARD: f64 = 0.37;
/// Russia's observed Jaccard (slightly above the mean).
pub const TARGET_JACCARD_RU: f64 = 0.40;

/// Cloudflare share delta (percentage points) for a country (§5.4).
pub fn cloudflare_delta_pts(country: &CountryRecord) -> f64 {
    match country.code {
        "TM" => 11.3,
        "BR" => 10.0,
        "RU" => -2.0,
        "BY" | "UZ" | "MM" => -1.0,
        _ => 3.8,
    }
}

/// Produces the 2025 snapshot of `world`.
///
/// The universe is shared; sites are appended for the churned local
/// entries, so indices of the original snapshot remain valid in the new
/// world's site table (both worlds can be deployed independently).
pub fn evolve(world: &World) -> World {
    let mut new_world = world.clone();
    new_world.label = "2025-05".to_string();
    // Keep new domains clear of the originals.
    let mut forge = DomainForge::new(50_000_000);
    let cf = world
        .universe
        .provider_by_name("Cloudflare")
        .expect("Cloudflare exists");

    for (ci, country) in COUNTRIES.iter().enumerate() {
        let c_total = world.toplists[ci].len() as f64;
        let jaccard_target = if country.code == "RU" {
            TARGET_JACCARD_RU
        } else {
            TARGET_JACCARD
        };

        // Count global vs local entries to size the churn for the target
        // Jaccard: J = (g + k*l) / (g + (2 - k) * l).
        let local_idx: Vec<usize> = (0..world.toplists[ci].len())
            .filter(|&i| {
                let s = world.toplists[ci][i];
                !world.sites[s as usize].is_global
            })
            .collect();
        let g = c_total - local_idx.len() as f64;
        let l = local_idx.len() as f64;
        let keep = if l > 0.0 {
            ((jaccard_target * (g + 2.0 * l) - g) / (l * (1.0 + jaccard_target))).clamp(0.0, 1.0)
        } else {
            1.0
        };

        // Churn: replace (1 - keep) of local sites with fresh domains that
        // copy the replaced site's dependency mixture.
        let mut replaced: Vec<u32> = Vec::new();
        for (pos, &tpos) in local_idx.iter().enumerate() {
            let spread = (pos as u64).wrapping_mul(2654435761) % 1000;
            if (spread as f64) < (1.0 - keep) * 1000.0 {
                let old_site_idx = world.toplists[ci][tpos];
                let old = &world.sites[old_site_idx as usize];
                let mut fresh = old.clone();
                fresh.domain = forge.next(&world.universe.tld(old.tld).label);
                let new_idx = new_world.sites.len() as u32;
                new_world.sites.push(fresh);
                new_world.toplists[ci][tpos] = new_idx;
                replaced.push(new_idx);
            }
        }

        // Provider-shift conversions operate on the fresh sites only.
        let delta_sites = (cloudflare_delta_pts(country) / 100.0 * c_total).round() as i64;
        if delta_sites > 0 {
            // Cloudflare's gains come mostly from *other US providers*
            // (§5.4: overall US reliance does not rise with Cloudflare):
            // convert US-hosted fresh sites first, then any others.
            let mut left = delta_sites as u64;
            for us_pass in [true, false] {
                for &idx in &replaced {
                    if left == 0 {
                        break;
                    }
                    let s = &mut new_world.sites[idx as usize];
                    if s.hosting == cf {
                        continue;
                    }
                    let is_us = world.universe.provider(s.hosting).country == "US";
                    if is_us == us_pass {
                        s.hosting = cf;
                        s.dns = cf; // Cloudflare bundles DNS (§6.1)
                        left -= 1;
                    }
                }
            }
        } else if delta_sites < 0 {
            // Shed Cloudflare toward the country's largest regional
            // provider.
            let fallback = world
                .universe
                .regional_by_country
                .get(country.code)
                .and_then(|l| l.first())
                .copied();
            if let Some(fallback) = fallback {
                let mut left = (-delta_sites) as u64;
                for &idx in &replaced {
                    if left == 0 {
                        break;
                    }
                    let s = &mut new_world.sites[idx as usize];
                    if s.hosting == cf {
                        s.hosting = fallback;
                        s.dns = fallback;
                        left -= 1;
                    }
                }
            }
        }

        // Mild localization drift: every country moves a small,
        // country-specific slice of its fresh sites from US providers to
        // its largest regional provider. Combined with the US-first
        // Cloudflare conversions above, roughly a third of countries end
        // up with a net *decrease* in US reliance (paper: 56 of 150).
        let h = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in country.code.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h
        };
        let drift_pts = 0.5 + (h % 31) as f64 / 10.0; // 0.5 .. 3.5 points
        if let Some(&fallback) = world
            .universe
            .regional_by_country
            .get(country.code)
            .and_then(|l| l.first())
        {
            let mut left = (drift_pts / 100.0 * c_total).round() as u64;
            for &idx in &replaced {
                if left == 0 {
                    break;
                }
                let s = &mut new_world.sites[idx as usize];
                if s.hosting != cf && world.universe.provider(s.hosting).country == "US" {
                    s.hosting = fallback;
                    s.dns = fallback;
                    left -= 1;
                }
            }
        }

        // Russia's shift away from the US toward domestic providers
        // (+6 points domestic, §5.4).
        if country.code == "RU" {
            let ru_providers = world
                .universe
                .regional_by_country
                .get("RU")
                .cloned()
                .unwrap_or_default();
            if !ru_providers.is_empty() {
                let mut left = (0.06 * c_total).round() as u64;
                let mut rr = 0usize;
                for &idx in &replaced {
                    if left == 0 {
                        break;
                    }
                    let s = &mut new_world.sites[idx as usize];
                    let hq = &world.universe.provider(s.hosting).country;
                    if hq == "US" && s.hosting != cf {
                        let target = ru_providers[rr % ru_providers.len()];
                        rr += 1;
                        s.hosting = target;
                        s.dns = target;
                        left -= 1;
                    }
                }
            }
        }
    }
    new_world
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::Layer;
    use crate::world::WorldConfig;
    use std::collections::HashSet;

    fn pair() -> (World, World) {
        let w = World::generate(WorldConfig::tiny());
        let e = evolve(&w);
        (w, e)
    }

    fn domains(w: &World, ci: usize) -> HashSet<String> {
        w.toplists[ci]
            .iter()
            .map(|&i| w.sites[i as usize].domain.clone())
            .collect()
    }

    fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
        let inter = a.intersection(b).count() as f64;
        inter / (a.len() as f64 + b.len() as f64 - inter)
    }

    #[test]
    fn toplist_churn_near_target() {
        let (w, e) = pair();
        let mut js = Vec::new();
        for ci in (0..150).step_by(10) {
            let (a, b) = (domains(&w, ci), domains(&e, ci));
            js.push(jaccard(&a, &b));
        }
        let mean = js.iter().sum::<f64>() / js.len() as f64;
        assert!(
            (0.25..0.55).contains(&mean),
            "mean Jaccard {mean} (target ~0.37)"
        );
    }

    #[test]
    fn cloudflare_rises_almost_everywhere() {
        let (w, e) = pair();
        let cf = w.universe.provider_by_name("Cloudflare").unwrap();
        let share = |world: &World, ci: usize| {
            let counts = world.layer_counts(ci, Layer::Hosting);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            counts
                .iter()
                .find(|&&(id, _)| id == cf)
                .map(|&(_, c)| c as f64 / total as f64)
                .unwrap_or(0.0)
        };
        let br = World::country_index("BR").unwrap();
        let tm = World::country_index("TM").unwrap();
        let ru = World::country_index("RU").unwrap();
        assert!(
            share(&e, br) > share(&w, br) + 0.05,
            "BR: {} -> {}",
            share(&w, br),
            share(&e, br)
        );
        assert!(share(&e, tm) > share(&w, tm) + 0.05);
        assert!(share(&e, ru) <= share(&w, ru) + 0.005, "RU must not rise");
    }

    #[test]
    fn russia_shifts_to_domestic_providers() {
        let (w, e) = pair();
        let ru = World::country_index("RU").unwrap();
        let domestic = |world: &World| {
            let counts = world.layer_counts(ru, Layer::Hosting);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            counts
                .iter()
                .filter(|&&(id, _)| world.universe.provider(id).country == "RU")
                .map(|&(_, c)| c as f64)
                .sum::<f64>()
                / total as f64
        };
        assert!(
            domestic(&e) > domestic(&w) + 0.02,
            "{} -> {}",
            domestic(&w),
            domestic(&e)
        );
    }

    #[test]
    fn scores_strongly_correlated_across_snapshots() {
        let (w, e) = pair();
        let old: Vec<f64> = (0..150)
            .map(|ci| w.achieved_score(ci, Layer::Hosting))
            .collect();
        let new: Vec<f64> = (0..150)
            .map(|ci| e.achieved_score(ci, Layer::Hosting))
            .collect();
        let c = webdep_stats_free_pearson(&old, &new);
        assert!(c > 0.9, "rho {c}");
    }

    /// Minimal Pearson to avoid a dev-dependency cycle with webdep-stats.
    fn webdep_stats_free_pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&a, &b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx.sqrt() * syy.sqrt())
    }

    #[test]
    fn original_world_untouched() {
        let w = World::generate(WorldConfig::tiny());
        let before = w.sites.len();
        let snapshot: Vec<String> = w.sites.iter().take(20).map(|s| s.domain.clone()).collect();
        let _ = evolve(&w);
        assert_eq!(w.sites.len(), before);
        let after: Vec<String> = w.sites.iter().take(20).map(|s| s.domain.clone()).collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn evolved_label_and_site_growth() {
        let (w, e) = pair();
        assert_eq!(w.label, "2023-05");
        assert_eq!(e.label, "2025-05");
        assert!(e.sites.len() > w.sites.len());
    }
}
