//! Provider, CA, and TLD records — the entities websites depend on.

use serde::{Deserialize, Serialize};

/// Ground-truth provider tiers used by the *generator* to shape pools.
///
/// These mirror the classes the paper finds (Tables 1 and 2), but note the
/// analysis layer does not read them: it re-derives classes by clustering
/// usage and endemicity, as the paper does. The tests then check the two
/// agree in the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderTier {
    /// Extra-large global (Cloudflare, Amazon).
    XlGlobal,
    /// Large global (Akamai, Google, ...).
    LargeGlobal,
    /// Large global with a regional center of gravity (OVH, Hetzner).
    LargeGlobalRegional,
    /// Medium global.
    MediumGlobal,
    /// Small global.
    SmallGlobal,
    /// Large regional.
    LargeRegional,
    /// Small regional.
    SmallRegional,
    /// Extra-small regional (the long tail).
    XsRegional,
}

impl ProviderTier {
    /// The paper's class label.
    pub fn label(self) -> &'static str {
        match self {
            ProviderTier::XlGlobal => "XL-GP",
            ProviderTier::LargeGlobal => "L-GP",
            ProviderTier::LargeGlobalRegional => "L-GP (R)",
            ProviderTier::MediumGlobal => "M-GP",
            ProviderTier::SmallGlobal => "S-GP",
            ProviderTier::LargeRegional => "L-RP",
            ProviderTier::SmallRegional => "S-RP",
            ProviderTier::XsRegional => "XS-RP",
        }
    }

    /// Whether the tier is global (usage spread over many countries).
    pub fn is_global(self) -> bool {
        matches!(
            self,
            ProviderTier::XlGlobal
                | ProviderTier::LargeGlobal
                | ProviderTier::LargeGlobalRegional
                | ProviderTier::MediumGlobal
                | ProviderTier::SmallGlobal
        )
    }
}

/// A hosting and/or DNS provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provider {
    /// Dense id; doubles as an index into `Universe::providers`.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// HQ country (alpha-2); may be outside the 150-country dataset.
    pub country: String,
    /// Generator tier (ground truth; analysis re-derives classes).
    pub tier: ProviderTier,
    /// The provider's autonomous system number.
    pub asn: u32,
    /// Serves website content.
    pub offers_hosting: bool,
    /// Operates authoritative DNS.
    pub offers_dns: bool,
    /// Has per-continent points of presence (serving IPs geolocate near
    /// users instead of at HQ).
    pub cdn: bool,
    /// Announces its service prefixes via anycast.
    pub anycast: bool,
}

impl Provider {
    /// DNS-safe slug used in nameserver host names
    /// (`ns1.<slug>.net`).
    pub fn slug(&self) -> String {
        let mut s: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        while s.contains("--") {
            s = s.replace("--", "-");
        }
        let trimmed = s.trim_matches('-');
        format!("{}-{}", trimmed, self.id)
    }
}

/// A certificate authority owner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaRecord {
    /// Dense id; index into `Universe::cas`.
    pub id: u32,
    /// Owner name (the CCADB "CA Owner").
    pub name: String,
    /// HQ country (alpha-2).
    pub country: String,
    /// Generator tier (only the global/regional split matters for CAs).
    pub tier: ProviderTier,
    /// Certificate id of the issuing intermediate this owner signs with.
    pub issuing_cert_id: u32,
    /// Certificate id (serial) of the owner's root.
    pub root_cert_id: u32,
}

/// TLD categories used by the Appendix B analysis (Figure 16's legend).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TldKind {
    /// `.com`, treated as insular to the US per the paper's convention.
    Com,
    /// Other global TLDs (`net`, `org`, `io`, ...).
    Global,
    /// A country-code TLD.
    Cc(String),
}

/// A top-level domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TldRecord {
    /// Dense id; index into `Universe::tlds`.
    pub id: u32,
    /// The label, without dot (`com`, `de`, ...).
    pub label: String,
    /// Category.
    pub kind: TldKind,
}

impl TldRecord {
    /// The country a TLD is insular to, if any (`com` → US, ccTLD → its
    /// country, global TLDs → none).
    pub fn home_country(&self) -> Option<&str> {
        match &self.kind {
            TldKind::Com => Some("US"),
            TldKind::Global => None,
            TldKind::Cc(cc) => Some(cc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels() {
        assert_eq!(ProviderTier::XlGlobal.label(), "XL-GP");
        assert_eq!(ProviderTier::XsRegional.label(), "XS-RP");
        assert!(ProviderTier::MediumGlobal.is_global());
        assert!(!ProviderTier::LargeRegional.is_global());
    }

    #[test]
    fn slug_is_dns_safe() {
        let p = Provider {
            id: 7,
            name: "Online S.A.S.".into(),
            country: "FR".into(),
            tier: ProviderTier::LargeRegional,
            asn: 1007,
            offers_hosting: true,
            offers_dns: true,
            cdn: false,
            anycast: false,
        };
        let slug = p.slug();
        assert_eq!(slug, "online-s-a-s-7");
        assert!(slug
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
    }

    #[test]
    fn tld_home_countries() {
        let com = TldRecord {
            id: 0,
            label: "com".into(),
            kind: TldKind::Com,
        };
        let net = TldRecord {
            id: 1,
            label: "net".into(),
            kind: TldKind::Global,
        };
        let de = TldRecord {
            id: 2,
            label: "de".into(),
            kind: TldKind::Cc("DE".into()),
        };
        assert_eq!(com.home_country(), Some("US"));
        assert_eq!(net.home_country(), None);
        assert_eq!(de.home_country(), Some("DE"));
    }
}
