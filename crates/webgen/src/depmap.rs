//! Geopolitical policy tables: cross-border dependence, insularity targets,
//! head-provider anchors, TLD profiles, CA regional usage, and languages.
//!
//! Every number here is lifted from (or interpolated between) explicit
//! statements in the paper — section references inline. These tables drive
//! the identity assignment in [`crate::world`]: the *distribution shape*
//! per country comes from the calibrated score (Tables 5–8), while these
//! tables decide *who* occupies the ranks.

use crate::country::{Continent, CountryRecord, Layer};

/// Cross-border hosting/DNS dependence: `(country, provider_country,
/// share_of_sites)`. §5.3.3 case studies plus Figure 8 regional patterns.
pub const FOREIGN_DEPS: &[(&str, &str, f64)] = &[
    // CIS -> Russia.
    ("TM", "RU", 0.33),
    ("TJ", "RU", 0.23),
    ("KG", "RU", 0.22),
    ("KZ", "RU", 0.21),
    ("BY", "RU", 0.18),
    ("UZ", "RU", 0.12),
    ("AM", "RU", 0.08),
    ("AZ", "RU", 0.06),
    ("MD", "RU", 0.07),
    ("GE", "RU", 0.05),
    ("UA", "RU", 0.02),
    ("LT", "RU", 0.03),
    ("EE", "RU", 0.05),
    ("LV", "RU", 0.06),
    // France: administrative regions and former colonies.
    ("RE", "FR", 0.36),
    ("GP", "FR", 0.34),
    ("MQ", "FR", 0.35),
    ("BF", "FR", 0.21),
    ("CI", "FR", 0.18),
    ("ML", "FR", 0.18),
    ("SN", "FR", 0.14),
    ("BJ", "FR", 0.12),
    ("TG", "FR", 0.12),
    ("CM", "FR", 0.10),
    ("MG", "FR", 0.11),
    ("DZ", "FR", 0.08),
    ("TN", "FR", 0.08),
    ("HT", "FR", 0.08),
    ("GA", "FR", 0.09),
    ("CD", "FR", 0.07),
    ("MA", "FR", 0.06),
    // Slovakia -> Czechia (26% of Slovak top sites, §5.3.3).
    ("SK", "CZ", 0.257),
    // Austria -> Germany (shared language, §5.3.3).
    ("AT", "DE", 0.10),
    ("CH", "DE", 0.06),
    ("LU", "DE", 0.04),
    ("LU", "FR", 0.05),
    // Afghanistan -> Iran (Persian-language sites, §5.3.3).
    ("AF", "IR", 0.20),
    // East Asian neighbourhood effects.
    ("MO", "HK", 0.08),
    ("MN", "RU", 0.05),
];

/// Hosting-layer insularity anchors from §5.3.1: `(country, fraction)`.
pub const INSULARITY_ANCHORS: &[(&str, f64)] = &[
    ("US", 0.921),
    ("IR", 0.648),
    ("CZ", 0.545),
    ("RU", 0.511),
    ("HU", 0.30),
    ("BY", 0.25),
    ("TM", 0.04),
    ("SK", 0.12),
    ("JP", 0.35),
    ("KR", 0.33),
    ("DE", 0.30),
    ("FR", 0.28),
    ("BG", 0.28),
    ("LT", 0.26),
];

/// Default in-country (regional provider) share by continent for the
/// hosting layer, used when no anchor exists. Reflects Figure 20: Europe
/// and East Asia insular, Africa ~3%, others low.
pub fn default_local_share(country: &CountryRecord) -> f64 {
    for &(cc, v) in INSULARITY_ANCHORS {
        if cc == country.code {
            // The US anchor is special-cased in the assembly: most of its
            // insularity comes from global (US-HQ) providers, not regional
            // ones, so the regional budget stays moderate.
            if country.code == "US" {
                return 0.10;
            }
            return v;
        }
    }
    match country.continent {
        Continent::Europe => {
            if country.subregion.contains("Eastern") {
                0.30
            } else {
                0.20
            }
        }
        Continent::Asia => {
            if country.subregion == "Eastern Asia" {
                0.28
            } else if country.subregion == "Central Asia" {
                0.05
            } else {
                0.10
            }
        }
        Continent::Africa => 0.03,
        Continent::NorthAmerica => 0.05,
        Continent::SouthAmerica => 0.08,
        Continent::Oceania => 0.10,
    }
}

/// Head (top-provider) share derived from a target centralization score.
///
/// The fraction of `S` explained by the head grows with `S`; the affine
/// form below reproduces the paper's quoted anchors: Thailand 60% / S =
/// 0.3548, US 29% / 0.1358, Iran 14% / 0.0411 (§5.1), and extends cleanly
/// to the other layers (e.g. US .com 77% / 0.5853, Appendix B).
pub fn head_share_for_score(s: f64) -> f64 {
    let head_fraction = (0.45 + 1.6 * s).min(0.995);
    (head_fraction * s).sqrt().min(0.98)
}

/// Countries whose TLD layer is headed by their own ccTLD rather than
/// `.com` (Appendix B: Eastern Europe's ccTLD reliance, Germany 44% .de,
/// Brazil, Japan, Korea, Russia).
pub const CCTLD_HEADED: &[&str] = &[
    "CZ", "HU", "PL", "DE", "RU", "BR", "JP", "KR", "SK", "SI", "HR", "RS", "BG", "RO", "LT", "LV",
    "EE", "FI", "NO", "DK", "SE", "IS", "NL", "AT", "CH", "GR", "UA", "BY", "IT", "ES", "PT", "FR",
    "BE", "IE", "TR", "IR", "VN", "ID", "AR", "CL", "UY", "MD", "MK", "ME", "BA", "AL", "MT", "LU",
];

/// External ccTLD dependence for the TLD layer: `(country, tld_country,
/// share)`. Appendix B: CIS on `.ru`, francophone Africa + DOM on `.fr`,
/// German-speaking countries on `.de`.
pub const TLD_FOREIGN_DEPS: &[(&str, &str, f64)] = &[
    ("KG", "RU", 0.22),
    ("TJ", "RU", 0.20),
    ("TM", "RU", 0.18),
    ("KZ", "RU", 0.17),
    ("BY", "RU", 0.15),
    ("UZ", "RU", 0.14),
    ("MD", "RU", 0.10),
    ("AM", "RU", 0.08),
    ("AZ", "RU", 0.08),
    ("GE", "RU", 0.06),
    ("BF", "FR", 0.12),
    ("BJ", "FR", 0.10),
    ("CD", "FR", 0.08),
    ("CI", "FR", 0.11),
    ("CM", "FR", 0.08),
    ("DZ", "FR", 0.07),
    ("GP", "FR", 0.25),
    ("HT", "FR", 0.09),
    ("MG", "FR", 0.08),
    ("ML", "FR", 0.11),
    ("MQ", "FR", 0.26),
    ("RE", "FR", 0.27),
    ("SN", "FR", 0.09),
    ("TG", "FR", 0.09),
    ("AT", "DE", 0.14),
    ("LU", "DE", 0.08),
    ("CH", "DE", 0.07),
    ("SK", "CZ", 0.10),
];

/// `.com` share anchors for the TLD layer (Appendix B).
pub const COM_SHARE_ANCHORS: &[(&str, f64)] = &[("US", 0.77), ("KG", 0.29), ("DE", 0.25)];

/// ccTLD share anchors for the TLD layer (Appendix B: .de 44% in DE,
/// .kg 12% in KG).
pub const CCTLD_SHARE_ANCHORS: &[(&str, f64)] = &[("DE", 0.44), ("KG", 0.12)];

/// Regional CA usage: `(country, ca_name, share)` (§7.2: Asseco in PL/IR/AF,
/// Taiwan 17% local, Japan 14% local, Poland 19% local).
pub const CA_REGIONAL_USAGE: &[(&str, &str, f64)] = &[
    ("PL", "Asseco", 0.19),
    ("IR", "Asseco", 0.19),
    ("AF", "Asseco", 0.05),
    ("TW", "TWCA", 0.11),
    ("TW", "Chunghwa Telecom", 0.06),
    ("JP", "SECOM", 0.09),
    ("JP", "Cybertrust Japan", 0.05),
    ("KR", "KICA", 0.06),
    ("CH", "SwissSign", 0.05),
    ("IT", "Actalis", 0.05),
    ("NO", "Buypass", 0.06),
    ("GR", "HARICA", 0.05),
    ("FR", "Certigna", 0.03),
    ("ES", "Izenpe", 0.02),
    ("ES", "ACCV", 0.02),
    ("HU", "Microsec", 0.03),
    ("SK", "Disig", 0.02),
    ("FI", "Telia", 0.03),
    ("DE", "D-TRUST", 0.03),
    ("AT", "GLOBALTRUST", 0.02),
    ("US", "SSL.com", 0.02),
    ("TR", "Kamu SM", 0.03),
    ("TR", "TurkTrust", 0.02),
    ("TR", "E-Tugra", 0.02),
    ("BR", "Serasa", 0.02),
    ("BR", "Certisign", 0.02),
    ("MY", "Pos Digicert", 0.02),
    ("MY", "MSC Trustgate", 0.01),
    ("PA", "TrustCor", 0.01),
];

/// Primary language per country where it matters to the case studies;
/// everything else defaults to a generic local language tag.
pub const LANGUAGES: &[(&str, &str)] = &[
    ("IR", "fa"),
    // Afghanistan's default is Pashto; the Persian minority (31.4% of the
    // top list, §5.3.3) is marked during world assembly.
    ("AF", "ps"),
    ("DE", "de"),
    ("AT", "de"),
    ("CH", "de"),
    ("FR", "fr"),
    ("RU", "ru"),
    ("BY", "ru"),
    ("KZ", "ru"),
    ("US", "en"),
    ("GB", "en"),
    ("CZ", "cs"),
    ("SK", "sk"),
];

/// Fraction of the Afghan top list in Persian (§5.3.3).
pub const AF_PERSIAN_FRACTION: f64 = 0.314;
/// Fraction of Persian sites in Afghanistan hosted in Iran (§5.3.3).
pub const AF_PERSIAN_IRAN_HOSTED: f64 = 0.608;

/// All foreign hosting deps for a country.
pub fn foreign_deps(code: &str) -> Vec<(&'static str, f64)> {
    FOREIGN_DEPS
        .iter()
        .filter(|(cc, _, _)| *cc == code)
        .map(|&(_, target, share)| (target, share))
        .collect()
}

/// All foreign TLD deps for a country.
pub fn tld_foreign_deps(code: &str) -> Vec<(&'static str, f64)> {
    TLD_FOREIGN_DEPS
        .iter()
        .filter(|(cc, _, _)| *cc == code)
        .map(|&(_, target, share)| (target, share))
        .collect()
}

/// Regional CA usage rows for a country.
pub fn ca_regional_usage(code: &str) -> Vec<(&'static str, f64)> {
    CA_REGIONAL_USAGE
        .iter()
        .filter(|(cc, _, _)| *cc == code)
        .map(|&(_, ca, share)| (ca, share))
        .collect()
}

/// Primary language tag for a country (`"xx-<code>"` fallback keeps tags
/// distinct per country without a full language table).
pub fn language_of(code: &str) -> String {
    for &(cc, lang) in LANGUAGES {
        if cc == code {
            return lang.to_string();
        }
    }
    format!("xx-{}", code.to_ascii_lowercase())
}

/// Dominant runner-up anchors: countries where the paper calls out a
/// single provider/CA holding a large rank-2 share behind the head
/// (§5.2: SuperHosting.BG 22% in Bulgaria, UAB 22% in Lithuania; §7.2:
/// Asseco 19% in Poland and Iran).
pub fn second_anchor(code: &str, layer: Layer) -> Option<(&'static str, f64)> {
    match layer {
        Layer::Hosting => match code {
            "BG" => Some(("SuperHosting.BG", 0.22)),
            "LT" => Some(("UAB Interneto vizija", 0.22)),
            _ => None,
        },
        Layer::Ca => match code {
            "PL" | "IR" => Some(("Asseco", 0.19)),
            _ => None,
        },
        _ => None,
    }
}

/// Head-provider share overrides where the paper quotes one directly.
pub fn head_share(country: &CountryRecord, layer: Layer) -> f64 {
    let s = country.paper_score(layer);
    let derived = head_share_for_score(s);
    match layer {
        Layer::Hosting => match country.code {
            "TH" => 0.595, // "60% of websites ... served by a single provider"
            "US" => 0.29,
            "IR" => 0.14,
            // Heads capped so the 22% runner-up (second_anchor) still
            // fits under the country's score.
            "BG" => 0.25,
            "LT" => 0.26,
            _ => derived,
        },
        Layer::Dns => match country.code {
            "ID" => 0.65, // §6.1
            "TH" => 0.62,
            _ => derived,
        },
        Layer::Ca => match country.code {
            "SK" => 0.55, // §7.1: Let's Encrypt 55% in Slovakia
            // Capped so Asseco's 19% runner-up share fits.
            "PL" => 0.33,
            "IR" => 0.46,
            _ => derived,
        },
        Layer::Tld => match country.code {
            "US" => 0.77, // Appendix B
            "KG" => 0.29,
            "DE" => 0.44, // headed by .de
            _ => derived,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_data::COUNTRIES;

    #[test]
    fn head_share_formula_reproduces_anchors() {
        // TH: S=0.3548 -> ~0.59; US: 0.1358 -> ~0.30; IR: 0.0411 -> ~0.146.
        assert!((head_share_for_score(0.3548) - 0.595).abs() < 0.01);
        assert!((head_share_for_score(0.1358) - 0.29).abs() < 0.02);
        assert!((head_share_for_score(0.0411) - 0.14).abs() < 0.01);
        // TLD: US .com 77% at S=0.5853.
        assert!((head_share_for_score(0.5853) - 0.77).abs() < 0.02);
        // KG .com 29% at S=0.1468.
        assert!((head_share_for_score(0.1468) - 0.29).abs() < 0.04);
    }

    #[test]
    fn head_share_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 1..100 {
            let s = i as f64 / 100.0;
            let h = head_share_for_score(s);
            assert!(h >= prev, "nonmonotone at {s}");
            assert!(h * h <= s, "head alone cannot exceed the target score");
            assert!(h <= 0.98);
            prev = h;
        }
    }

    #[test]
    fn budgets_leave_room_for_global_providers() {
        // head + local + foreign must stay well below 1 for every country.
        for c in &COUNTRIES {
            let head = head_share(c, Layer::Hosting);
            let local = default_local_share(c);
            let foreign: f64 = foreign_deps(c.code).iter().map(|(_, s)| s).sum();
            let total = head + local + foreign;
            assert!(total < 0.95, "{}: {total}", c.code);
        }
    }

    #[test]
    fn dep_tables_reference_dataset_countries() {
        for &(cc, target, share) in FOREIGN_DEPS {
            assert!(CountryRecord::by_code(cc).is_some(), "{cc}");
            assert!(CountryRecord::by_code(target).is_some(), "{target}");
            assert!(share > 0.0 && share < 0.5);
        }
        for &(cc, target, _) in TLD_FOREIGN_DEPS {
            assert!(CountryRecord::by_code(cc).is_some(), "{cc}");
            assert!(CountryRecord::by_code(target).is_some(), "{target}");
        }
    }

    #[test]
    fn language_lookup() {
        assert_eq!(language_of("IR"), "fa");
        assert_eq!(language_of("AF"), "ps");
        assert_eq!(language_of("BR"), "xx-br");
    }

    #[test]
    fn cis_depends_on_russia() {
        let tm = foreign_deps("TM");
        assert_eq!(tm, vec![("RU", 0.33)]);
        assert!(foreign_deps("UA").iter().all(|&(_, s)| s <= 0.02));
    }
}
