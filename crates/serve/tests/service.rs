//! End-to-end service tests over a real socket: consistency with the
//! one-shot analysis, robustness against hostile clients, epoch swaps
//! under load, and graceful shutdown.

use std::io::{Read, Write};
use std::net::Ipv4Addr;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};
use webdep_analysis::insularity::{country_insularity, dependence_shares};
use webdep_analysis::{centralization::global_top_score, coverage_model, AnalysisCtx};
use webdep_core::{centralization_score, ConcentrationBand};
use webdep_pipeline::{
    ChunkStoreWriter, FailureCause, LayerError, MeasuredDataset, SiteObservation,
};
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, Limits, ServeConfig};
use webdep_webgen::{EvolutionPlan, Layer, World, WorldConfig};

// ---------------------------------------------------------------- fixture

/// A small world with deterministic synthetic observations (the same
/// failure strides as the bench fixtures: every 97th site dead, every
/// 89th TLS-refused), so every layer and the taxonomy carry real data.
fn synth_observation(world: &World, i: usize) -> SiteObservation {
    let site = &world.sites[i];
    let mut o = SiteObservation::blank(&site.domain, &site.language);
    if i.is_multiple_of(97) {
        o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
        o.dns_error = Some(LayerError::new(
            FailureCause::Timeout,
            "NS: query timed out",
        ));
        o.ca_error = Some(LayerError::new(
            FailureCause::Skipped,
            "no serving IP to scan",
        ));
        o.derive_error_summary();
        return o;
    }
    let hosting = world.universe.provider(site.hosting);
    o.hosting_ip = Some(Ipv4Addr::from(0x0A00_0000u32 | (i as u32 & 0x00FF_FFFF)));
    o.hosting_asn = Some(hosting.asn);
    o.hosting_org = Some(site.hosting);
    o.hosting_org_country = Some(hosting.country.clone());
    o.hosting_ip_country = Some(hosting.country.clone());
    o.hosting_anycast = hosting.anycast;
    let dns = world.universe.provider(site.dns);
    o.ns_names = vec![format!("ns1.{}.net", dns.slug())];
    o.dns_ip = Some(Ipv4Addr::from(0xAC10_0000u32 | (i as u32 & 0x000F_FFFF)));
    o.dns_asn = Some(dns.asn);
    o.dns_org = Some(site.dns);
    o.dns_org_country = Some(dns.country.clone());
    o.dns_ip_country = Some(dns.country.clone());
    o.dns_anycast = dns.anycast;
    if i.is_multiple_of(89) {
        o.ca_error = Some(LayerError::new(
            FailureCause::Refused,
            "TLS: handshake refused",
        ));
    } else {
        let ca = world.universe.ca(site.ca);
        o.ca_owner = Some(site.ca);
        o.ca_owner_country = Some(ca.country.clone());
    }
    o.derive_error_summary();
    o
}

fn synth_dataset(world: &World) -> MeasuredDataset {
    MeasuredDataset {
        observations: (0..world.sites.len())
            .map(|i| synth_observation(world, i))
            .collect(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    }
}

fn fixture() -> &'static (Arc<World>, MeasuredDataset) {
    static FIXTURE: OnceLock<(Arc<World>, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = Arc::new(World::generate(WorldConfig {
            seed: 42,
            sites_per_country: 40,
            global_pool_size: 120,
            tail_scale: 0.04,
            pool_target: 40,
        }));
        let ds = synth_dataset(&world);
        (world, ds)
    })
}

fn fixture_snapshot(epoch: u64) -> Arc<CubeSnapshot> {
    let (world, ds) = fixture();
    Arc::new(CubeSnapshot::from_dataset(
        epoch,
        Arc::clone(world),
        ds.clone(),
    ))
}

// ------------------------------------------------------------ http client

/// One response: status, `X-Webdep-Epoch` header (if present), body bytes.
struct Resp {
    status: u16,
    epoch: Option<u64>,
    body: Vec<u8>,
}

/// Reads exactly one response off a keep-alive connection.
fn read_response(stream: &mut TcpStream) -> Option<Resp> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until CRLFCRLF; heads are tiny.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
                if head.len() > 16 * 1024 {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    let text = std::str::from_utf8(&head).ok()?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut epoch = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case("x-webdep-epoch") {
                epoch = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).ok()?;
    Some(Resp {
        status,
        epoch,
        body,
    })
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn get(addr: SocketAddr, target: &str) -> Resp {
    let mut stream = connect(addr);
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    read_response(&mut stream).expect("one response")
}

fn get_json(addr: SocketAddr, target: &str) -> serde_json::Value {
    let resp = get(addr, target);
    assert_eq!(resp.status, 200, "{target}: {:?}", text(&resp.body));
    json(&resp.body)
}

fn json(body: &[u8]) -> serde_json::Value {
    serde_json::from_str(std::str::from_utf8(body).expect("utf8 body")).expect("json body")
}

fn text(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

fn f64_of(v: &serde_json::Value) -> f64 {
    v.as_f64().expect("number")
}

// ------------------------------------------------------------ consistency

/// Every served number must be *identical* to the one computed directly
/// against an `AnalysisCtx` over the same data — serving must not fork the
/// analysis math. JSON round-trips f64 exactly (shortest-round-trip
/// rendering), so comparisons are `==`, not approximate.
#[test]
fn served_answers_match_one_shot_analysis() {
    let (world, ds) = fixture();
    let ctx = AnalysisCtx::new(world, ds);
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let addr = handle.addr();

    // Per-country score panel, all layers, several countries.
    for code in ["US", "TH", "DE", "IR"] {
        let ci = World::country_index(code).unwrap();
        for layer in Layer::ALL {
            let body = get_json(
                addr,
                &format!(
                    "/v1/score/{code}?layer={}&replicates=100&seed=7",
                    layer.name()
                ),
            );
            let dist = ctx.country_dist(ci, layer).expect("measured");
            let s = centralization_score(&dist);
            assert_eq!(f64_of(&body["s"]), s, "{code}/{layer:?}");
            assert_eq!(
                body["band"].as_str().unwrap(),
                ConcentrationBand::classify(s).label()
            );
            assert_eq!(
                body["num_providers"].as_u64().unwrap(),
                dist.num_providers() as u64
            );
            assert_eq!(f64_of(&body["top_share"]), dist.top_share());
            assert_eq!(
                body["providers_for_90pct"].as_u64().unwrap(),
                dist.providers_to_cover(0.90) as u64
            );
            assert_eq!(
                f64_of(&body["coverage"]),
                ctx.country_coverage(ci, layer),
                "{code}/{layer:?} coverage"
            );
            let expect_ci = ctx.score_ci(ci, layer, 100, 0.95, 7).expect("ci");
            assert_eq!(f64_of(&body["ci"]["point"]), expect_ci.point);
            assert_eq!(f64_of(&body["ci"]["lo"]), expect_ci.lo);
            assert_eq!(f64_of(&body["ci"]["hi"]), expect_ci.hi);
        }
    }

    // Dependence shares.
    let th = World::country_index("TH").unwrap();
    let body = get_json(addr, "/v1/shares/TH?layer=dns&top=5");
    let expect = dependence_shares(&ctx, th, Layer::Dns);
    assert_eq!(
        body["total_countries"].as_u64().unwrap(),
        expect.len() as u64
    );
    let served = body["shares"].as_array().unwrap();
    assert_eq!(served.len(), expect.len().min(5));
    for (row, (cc, share)) in served.iter().zip(&expect) {
        assert_eq!(row["country"].as_str().unwrap(), cc);
        assert_eq!(f64_of(&row["share"]), *share);
    }

    // Insularity.
    let de = World::country_index("DE").unwrap();
    let body = get_json(addr, "/v1/insularity/DE?layer=ca");
    assert_eq!(
        f64_of(&body["insularity"]),
        country_insularity(&ctx, de, Layer::Ca).unwrap()
    );

    // Global-top owners.
    let body = get_json(addr, "/v1/top?layer=hosting&n=5");
    let counts = ctx.global_counts(Layer::Hosting);
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert_eq!(body["total"].as_u64().unwrap(), total);
    assert_eq!(
        f64_of(&body["global_s"]),
        global_top_score(&ctx, Layer::Hosting).unwrap()
    );
    for (row, &(owner, count)) in body["owners"].as_array().unwrap().iter().zip(counts.iter()) {
        assert_eq!(
            row["name"].as_str().unwrap(),
            ctx.owner_name(Layer::Hosting, owner)
        );
        assert_eq!(row["count"].as_u64().unwrap(), count);
        assert_eq!(f64_of(&row["share"]), count as f64 / total as f64);
    }

    // Coverage model.
    let body = get_json(addr, "/v1/coverage");
    let model = coverage_model(&ctx);
    for (served, lc) in body["layers"].as_array().unwrap().iter().zip(&model.layers) {
        assert_eq!(served["layer"].as_str().unwrap(), lc.layer_name);
        assert_eq!(served["observed"].as_u64().unwrap(), lc.observed);
        assert_eq!(served["expected"].as_u64().unwrap(), lc.expected);
        assert_eq!(f64_of(&served["fraction"]), lc.fraction());
    }

    // Failure taxonomy.
    let body = get_json(addr, "/v1/taxonomy");
    let tax = ds.failure_taxonomy();
    assert_eq!(body["total"].as_u64().unwrap(), tax.total);
    assert_eq!(body["clean"].as_u64().unwrap(), tax.clean);
    for (layer, causes) in &tax.counts {
        for (cause, n) in causes {
            assert_eq!(
                body["failures"][layer.as_str()][cause.as_str()]
                    .as_u64()
                    .unwrap(),
                *n,
                "{layer}/{cause}"
            );
        }
    }

    // Badge: per-layer panel consistent with direct computation.
    let us = World::country_index("US").unwrap();
    let body = get_json(addr, "/v1/badge/US");
    for (panel, layer) in body["layers"].as_array().unwrap().iter().zip(Layer::ALL) {
        assert_eq!(panel["layer"].as_str().unwrap(), layer.name());
        let dist = ctx.country_dist(us, layer).expect("measured");
        assert_eq!(f64_of(&panel["s"]), centralization_score(&dist));
        assert_eq!(
            f64_of(&panel["insularity"]),
            country_insularity(&ctx, us, layer).unwrap()
        );
    }

    handle.shutdown();
}

/// A snapshot streamed from a chunk store must serve byte-identical
/// bodies to one built from the resident dataset.
#[test]
fn store_backed_snapshot_serves_identical_bodies() {
    let (world, ds) = fixture();
    let dir = std::env::temp_dir().join(format!("webdep-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer =
        ChunkStoreWriter::create(&dir, &world.label, world.sites.len(), 1024).expect("create");
    for (i, obs) in ds.observations.iter().enumerate() {
        writer.commit(i, obs).expect("commit");
    }
    writer.finish().expect("finish");

    let resident = start(ServeConfig::default(), fixture_snapshot(1)).expect("start resident");
    let streamed =
        Arc::new(CubeSnapshot::from_store(1, Arc::clone(world), &dir).expect("from_store"));
    assert!(!streamed.resident);
    let stream_srv = start(ServeConfig::default(), streamed).expect("start streamed");

    for target in [
        "/v1/meta",
        "/v1/score/US?replicates=50&seed=3",
        "/v1/score/TH?layer=tld&replicates=0",
        "/v1/shares/DE?layer=dns",
        "/v1/insularity/FR?layer=hosting",
        "/v1/top?layer=ca&n=8",
        "/v1/coverage",
        "/v1/taxonomy",
        "/v1/badge/JP",
    ] {
        let a = get(resident.addr(), target);
        let b = get(stream_srv.addr(), target);
        assert_eq!(a.status, 200, "{target}");
        assert_eq!(b.status, 200, "{target}");
        // `resident` differs by design in /v1/meta; everything else must
        // be byte-identical.
        if target == "/v1/meta" {
            assert_eq!(json(&a.body)["sites"], json(&b.body)["sites"]);
            assert_eq!(
                json(&a.body)["taxonomy_total"],
                json(&b.body)["taxonomy_total"]
            );
        } else {
            assert_eq!(a.body, b.body, "{target}");
        }
    }

    resident.shutdown();
    stream_srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------- robustness

#[test]
fn hostile_requests_get_precise_errors_and_service_survives() {
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let addr = handle.addr();

    // Malformed request line → 400.
    let mut s = connect(addr);
    s.write_all(b"lowercase /x HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 400);

    // Raw binary garbage → 400 (NUL fast-fail).
    let mut s = connect(addr);
    s.write_all(&[0u8, 1, 2, 3, 255, 254]).unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 400);

    // POST → 405; request with a body → 413.
    let mut s = connect(addr);
    s.write_all(b"POST /v1/meta HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 405);
    let mut s = connect(addr);
    s.write_all(b"GET /v1/meta HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
        .unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 413);

    // Oversized head → 413 as soon as the cap is crossed.
    let mut s = connect(addr);
    let huge = format!(
        "GET /v1/meta HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    s.write_all(huge.as_bytes()).unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 413);

    // Unknown route and unknown country → 404; bad params → 400.
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/v1/score/ZZ").status, 404);
    assert_eq!(get(addr, "/v1/score/US?layer=bogus").status, 400);
    assert_eq!(get(addr, "/v1/score/US?replicates=abc").status, 400);
    assert_eq!(get(addr, "/v1/score/US?level=7").status, 400);

    // The service is still healthy after all of that.
    assert_eq!(get(addr, "/healthz").status, 200);
    let stats = handle.stats();
    assert!(stats.errors >= 9, "{stats:?}");
    handle.shutdown();
}

/// A peer that trickles a head slower than the read deadline gets 408 and
/// its connection closed; it cannot pin a worker.
#[test]
fn slow_header_trickle_times_out_with_408() {
    let config = ServeConfig {
        limits: Limits {
            read_deadline: Duration::from_millis(400),
            idle_timeout: Duration::from_secs(5),
            ..Limits::default()
        },
        ..ServeConfig::default()
    };
    let handle = start(config, fixture_snapshot(1)).expect("start");
    let mut s = connect(handle.addr());
    s.write_all(b"GET /healthz HT").unwrap();
    let t0 = Instant::now();
    let resp = read_response(&mut s).expect("408 response");
    assert_eq!(resp.status, 408);
    assert!(
        t0.elapsed() >= Duration::from_millis(300),
        "timed out too early: {:?}",
        t0.elapsed()
    );
    assert_eq!(handle.stats().timeouts, 1);
    handle.shutdown();
}

/// An idle keep-alive connection is closed after the idle timeout without
/// any response bytes.
#[test]
fn idle_keepalive_is_reaped_silently() {
    let config = ServeConfig {
        limits: Limits {
            idle_timeout: Duration::from_millis(400),
            ..Limits::default()
        },
        ..ServeConfig::default()
    };
    let handle = start(config, fixture_snapshot(1)).expect("start");
    let mut s = connect(handle.addr());
    // Complete one request, then go idle.
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut s).unwrap().status, 200);
    // The next read should see EOF (clean close), not a response.
    let mut rest = Vec::new();
    let got = s.read_to_end(&mut rest);
    assert!(got.is_ok(), "expected clean EOF, got {got:?}");
    assert!(rest.is_empty(), "unexpected bytes: {:?}", text(&rest));
    handle.shutdown();
}

/// Pipelined requests on one connection are each answered, in order.
#[test]
fn pipelined_requests_all_answered() {
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let mut s = connect(handle.addr());
    s.write_all(
        b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/meta HTTP/1.1\r\n\r\nGET /v1/countries HTTP/1.1\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let r1 = read_response(&mut s).expect("r1");
    let r2 = read_response(&mut s).expect("r2");
    let r3 = read_response(&mut s).expect("r3");
    assert_eq!(r1.status, 200);
    assert!(json(&r2.body).get("sites").is_some());
    assert!(json(&r3.body).get("countries").is_some());
    handle.shutdown();
}

// -------------------------------------------------------------- the cache

#[test]
fn repeat_queries_hit_the_cache_and_normalize_keys() {
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let addr = handle.addr();
    let cold = get(addr, "/v1/score/US?layer=hosting");
    assert_eq!(handle.cache_stats().hits, 0);
    // Same canonical query, different spellings: defaults made explicit,
    // lowercase country code.
    let warm1 = get(addr, "/v1/score/us");
    let warm2 = get(addr, "/v1/score/US?replicates=200&seed=42&level=0.95");
    assert_eq!(handle.cache_stats().hits, 2);
    assert_eq!(cold.body, warm1.body);
    assert_eq!(cold.body, warm2.body);
    // Different parameters are different entries.
    let _ = get(addr, "/v1/score/US?seed=43");
    assert_eq!(handle.cache_stats().hits, 2);
    // Errors are not cached.
    let misses_before = handle.cache_stats().misses;
    let _ = get(addr, "/v1/score/ZZ");
    let _ = get(addr, "/v1/score/ZZ");
    assert_eq!(handle.cache_stats().misses, misses_before);
    handle.shutdown();
}

// ------------------------------------------------------- swap under load

/// Hammer the server from several client threads while publishing new
/// epochs mid-traffic. Asserts:
/// - zero failed requests (every response 200 and parseable);
/// - no torn or mixed-epoch responses: every body is byte-identical to
///   that epoch's canonical body, and the body's `epoch` field matches the
///   `X-Webdep-Epoch` header;
/// - per-client epoch monotonicity: once a client sees epoch `n`, it never
///   sees an older epoch (no stale cache after the swap);
/// - the old snapshot is dropped once drained (observed via `Weak`).
#[test]
fn snapshot_swap_under_load_is_atomic() {
    let (world, ds) = fixture();
    let handle = Arc::new(
        start(
            ServeConfig {
                workers: 8,
                ..ServeConfig::default()
            },
            fixture_snapshot(1),
        )
        .expect("start"),
    );
    let addr = handle.addr();

    // CI-free targets so the load loop is fast.
    let targets = [
        "/v1/score/US?replicates=0",
        "/v1/insularity/TH",
        "/v1/shares/DE?top=3",
        "/v1/meta",
    ];

    // Canonical bodies per epoch, captured with the server quiesced on
    // that epoch before/after the storm.
    let canon =
        |addr: SocketAddr| -> Vec<Vec<u8>> { targets.iter().map(|t| get(addr, t).body).collect() };
    let canon1 = canon(addr);

    let stop = Arc::new(AtomicBool::new(false));
    let observed_failure = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let observed_failure = Arc::clone(&observed_failure);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut bodies: Vec<(u64, usize, Vec<u8>)> = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let ti = i % targets.len();
                    i += 1;
                    let resp = get(addr, targets[ti]);
                    if resp.status != 200 {
                        observed_failure.store(true, Ordering::Relaxed);
                        break;
                    }
                    let header_epoch = resp.epoch.expect("epoch header");
                    let body_epoch = json(&resp.body)["epoch"].as_u64();
                    // /v1/meta and the rest all carry "epoch".
                    if body_epoch != Some(header_epoch) || header_epoch < last_epoch {
                        observed_failure.store(true, Ordering::Relaxed);
                        break;
                    }
                    last_epoch = header_epoch;
                    bodies.push((header_epoch, ti, resp.body));
                }
                bodies
            })
        })
        .collect();

    // Let traffic build, then publish two new epochs mid-storm. Keep a
    // Weak on the old snapshots to observe the drain.
    std::thread::sleep(Duration::from_millis(150));
    let snap2 = fixture_snapshot(2);
    let weak2: Weak<CubeSnapshot> = Arc::downgrade(&snap2);
    assert_eq!(handle.publish(snap2), 2);
    std::thread::sleep(Duration::from_millis(150));
    let snap3 = Arc::new(CubeSnapshot::from_dataset(3, Arc::clone(world), ds.clone()));
    assert_eq!(handle.publish(snap3), 3);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let all: Vec<(u64, usize, Vec<u8>)> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client thread"))
        .collect();
    assert!(
        !observed_failure.load(Ordering::Relaxed),
        "a client saw a failure, an epoch regression, or a header/body mismatch"
    );
    assert!(all.len() > 50, "storm too small: {}", all.len());

    // Canonical bodies for epochs 2 and 3: epoch 3 is live now; epoch 2
    // bodies differ from epoch 3 only in the stamped epoch, which we can
    // derive by re-stamping. Simplest check: every observed body for a
    // given (epoch, target) is identical — no torn variants — and epochs
    // observed are exactly {1, 2, 3}.
    let canon3 = canon(addr);
    let mut seen_epochs: Vec<u64> = all.iter().map(|(e, _, _)| *e).collect();
    seen_epochs.sort_unstable();
    seen_epochs.dedup();
    assert!(
        seen_epochs.iter().all(|e| [1, 2, 3].contains(e)),
        "unexpected epochs {seen_epochs:?}"
    );
    assert!(seen_epochs.contains(&1), "no pre-swap traffic observed");
    assert!(seen_epochs.contains(&3), "no post-swap traffic observed");
    use std::collections::HashMap;
    let mut variants: HashMap<(u64, usize), &Vec<u8>> = HashMap::new();
    for (epoch, ti, body) in &all {
        match variants.get(&(*epoch, *ti)) {
            Some(first) => assert_eq!(
                *first, body,
                "torn response: two different bodies for epoch {epoch} target {ti}"
            ),
            None => {
                variants.insert((*epoch, *ti), body);
            }
        }
    }
    // Epoch-1 and epoch-3 observations must equal the quiesced canon.
    for (ti, expected) in canon1.iter().enumerate() {
        if let Some(body) = variants.get(&(1, ti)) {
            assert_eq!(*body, expected, "epoch-1 body for target {ti}");
        }
    }
    for (ti, expected) in canon3.iter().enumerate() {
        if let Some(body) = variants.get(&(3, ti)) {
            assert_eq!(*body, expected, "epoch-3 body for target {ti}");
        }
    }

    // After the swap and drain, epoch 2's snapshot must be dropped: the
    // cell holds epoch 3, the cache holds only bodies (no snapshot refs),
    // and idle workers release their cached Arc within an idle tick.
    let t0 = Instant::now();
    while weak2.upgrade().is_some() {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "old snapshot still alive after drain"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Stale-epoch cache entries are purged on publish.
    assert!(handle.cache_stats().stale_purged > 0);

    Arc::try_unwrap(handle)
        .ok()
        .expect("sole handle ref")
        .shutdown();
}

// ------------------------------------------------------- delta publishing

/// Writes a full synthetic store for a world (the comparator for delta
/// paths; synthetic observations are a pure function of the site record,
/// so unchanged sites produce identical rows across epochs).
fn write_synth_store(world: &World, dir: &std::path::Path, chunk_sites: usize) {
    let _ = std::fs::remove_dir_all(dir);
    let mut writer = ChunkStoreWriter::create(dir, &world.label, world.sites.len(), chunk_sites)
        .expect("create");
    for i in 0..world.sites.len() {
        writer
            .commit(i, &synth_observation(world, i))
            .expect("commit");
    }
    writer.finish().expect("finish");
}

/// `from_delta` must be indistinguishable from `from_store` over the full
/// evolved store: identical taxonomy, identical served bodies — while
/// extending the trajectory instead of restarting it.
#[test]
fn delta_snapshot_equals_from_store() {
    let (world, _) = fixture();
    let tmp = std::env::temp_dir().join(format!("webdep-serve-delta-{}", std::process::id()));
    let store1 = tmp.join("e1");
    write_synth_store(world, &store1, 256);
    let snap1 =
        Arc::new(CubeSnapshot::from_store(1, Arc::clone(world), &store1).expect("from_store e1"));
    assert_eq!(snap1.trajectory.points.len(), 1);

    let (evolved, delta) = EvolutionPlan::continuous(1, 0.10, 5).evolve_epoch(world, 0);
    delta.certify_unchanged(world, &evolved).unwrap();
    let evolved = Arc::new(evolved);
    let store2 = tmp.join("e2");
    write_synth_store(&evolved, &store2, 256);

    let via_delta = Arc::new(
        CubeSnapshot::from_delta(2, Arc::clone(&evolved), &snap1, &delta, &store2)
            .expect("from_delta"),
    );
    let via_store = Arc::new(
        CubeSnapshot::from_store(2, Arc::clone(&evolved), &store2).expect("from_store e2"),
    );

    // The incrementally adjusted taxonomy is structurally identical to the
    // fresh fold (zeroed cells removed, same clean count).
    assert_eq!(via_delta.taxonomy, via_store.taxonomy);

    // The trajectory extends epoch 1's rather than restarting.
    assert_eq!(via_delta.trajectory.points.len(), 2);
    assert_eq!(via_delta.trajectory.points[0], snap1.trajectory.points[0]);
    assert_eq!(via_delta.trajectory.points[1].label, evolved.label);
    assert_eq!(via_store.trajectory.points.len(), 1);

    // Every served body is byte-identical (trajectory excluded: carrying
    // history is exactly the delta path's difference).
    let a = start(ServeConfig::default(), via_delta).expect("start delta");
    let b = start(ServeConfig::default(), via_store).expect("start store");
    for target in [
        "/v1/meta",
        "/v1/score/US?replicates=50&seed=3",
        "/v1/score/TH?layer=tld&replicates=0",
        "/v1/shares/DE?layer=dns",
        "/v1/insularity/FR?layer=hosting",
        "/v1/top?layer=ca&n=8",
        "/v1/coverage",
        "/v1/taxonomy",
        "/v1/badge/JP",
    ] {
        let ra = get(a.addr(), target);
        let rb = get(b.addr(), target);
        assert_eq!(ra.status, 200, "{target}");
        assert_eq!(ra.body, rb.body, "{target}");
    }

    // The trajectory route serves the carried history, epoch-stamped.
    let body = get_json(a.addr(), "/v1/trajectory");
    assert_eq!(body["epoch"].as_u64(), Some(2));
    assert_eq!(body["epochs"].as_u64(), Some(2));
    let points = body["points"].as_array().unwrap();
    assert_eq!(points.len(), 2);
    assert_eq!(points[0]["epoch"].as_u64(), Some(0));
    assert_eq!(points[1]["label"].as_str(), Some(evolved.label.as_str()));

    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);
}

/// `from_delta` refuses a mismatched previous snapshot or world.
#[test]
fn delta_snapshot_guards_lineage() {
    let (world, _) = fixture();
    let tmp = std::env::temp_dir().join(format!("webdep-serve-deltaguard-{}", std::process::id()));
    let store1 = tmp.join("e1");
    write_synth_store(world, &store1, 256);
    let snap1 =
        Arc::new(CubeSnapshot::from_store(1, Arc::clone(world), &store1).expect("from_store"));
    let (evolved, delta) = EvolutionPlan::continuous(1, 0.05, 9).evolve_epoch(world, 0);
    let evolved = Arc::new(evolved);
    // The target world must be the evolved one, not the base.
    assert!(
        CubeSnapshot::from_delta(2, Arc::clone(world), &snap1, &delta, &store1).is_err(),
        "wrong target world accepted"
    );
    // The previous snapshot must be the delta's source epoch.
    let store2 = tmp.join("e2");
    write_synth_store(&evolved, &store2, 256);
    let snap2 = Arc::new(
        CubeSnapshot::from_store(2, Arc::clone(&evolved), &store2).expect("from_store e2"),
    );
    assert!(
        CubeSnapshot::from_delta(3, Arc::clone(&evolved), &snap2, &delta, &store2).is_err(),
        "wrong source snapshot accepted"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// The swap-under-load storm, with the mid-traffic epochs built by
/// `from_delta` off the live chain: zero failed requests, zero mixed-epoch
/// responses, no torn bodies — delta-published snapshots behave exactly
/// like full rebuilds under concurrency.
#[test]
fn delta_published_epochs_swap_atomically_under_load() {
    let (world, _) = fixture();
    let tmp = std::env::temp_dir().join(format!("webdep-serve-deltastorm-{}", std::process::id()));
    write_synth_store(world, &tmp.join("e1"), 512);
    let snap1 =
        Arc::new(CubeSnapshot::from_store(1, Arc::clone(world), &tmp.join("e1")).expect("e1"));

    // Two delta epochs chained off one base world.
    let plan = EvolutionPlan::continuous(2, 0.10, 5);
    let (w2, d1) = plan.evolve_epoch(world, 0);
    let (w3, d2) = plan.evolve_epoch(&w2, 1);
    let (w2, w3) = (Arc::new(w2), Arc::new(w3));
    write_synth_store(&w2, &tmp.join("e2"), 512);
    write_synth_store(&w3, &tmp.join("e3"), 512);
    let snap2 = Arc::new(
        CubeSnapshot::from_delta(2, Arc::clone(&w2), &snap1, &d1, &tmp.join("e2")).expect("e2"),
    );
    let snap3 = Arc::new(
        CubeSnapshot::from_delta(3, Arc::clone(&w3), &snap2, &d2, &tmp.join("e3")).expect("e3"),
    );
    assert_eq!(snap3.trajectory.points.len(), 3);

    let handle = Arc::new(
        start(
            ServeConfig {
                workers: 8,
                ..ServeConfig::default()
            },
            snap1,
        )
        .expect("start"),
    );
    let addr = handle.addr();
    let targets = [
        "/v1/score/US?replicates=0",
        "/v1/insularity/TH",
        "/v1/trajectory",
        "/v1/meta",
    ];

    let stop = Arc::new(AtomicBool::new(false));
    let failure: Arc<std::sync::Mutex<Option<String>>> = Arc::new(std::sync::Mutex::new(None));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let failure = Arc::clone(&failure);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut bodies: Vec<(u64, usize, Vec<u8>)> = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let ti = i % targets.len();
                    i += 1;
                    let resp = get(addr, targets[ti]);
                    if resp.status != 200 {
                        *failure.lock().unwrap() =
                            Some(format!("{}: status {}", targets[ti], resp.status));
                        break;
                    }
                    let header_epoch = resp.epoch.expect("epoch header");
                    let body_epoch = json(&resp.body)["epoch"].as_u64();
                    if body_epoch != Some(header_epoch) {
                        *failure.lock().unwrap() = Some(format!(
                            "{}: mixed epochs (header {header_epoch}, body {body_epoch:?})",
                            targets[ti]
                        ));
                        break;
                    }
                    if header_epoch < last_epoch {
                        *failure.lock().unwrap() = Some(format!(
                            "{}: epoch regressed {last_epoch} -> {header_epoch}",
                            targets[ti]
                        ));
                        break;
                    }
                    last_epoch = header_epoch;
                    bodies.push((header_epoch, ti, resp.body));
                }
                bodies
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(handle.publish(snap2), 2);
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(handle.publish(snap3), 3);
    std::thread::sleep(Duration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    let all: Vec<(u64, usize, Vec<u8>)> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client thread"))
        .collect();
    assert_eq!(*failure.lock().unwrap(), None);
    assert!(all.len() > 50, "storm too small: {}", all.len());

    // No torn variants: one body per (epoch, target); and the trajectory
    // length matches the epoch it was served under.
    use std::collections::HashMap;
    let mut variants: HashMap<(u64, usize), &Vec<u8>> = HashMap::new();
    for (epoch, ti, body) in &all {
        match variants.get(&(*epoch, *ti)) {
            Some(first) => assert_eq!(*first, body, "torn response: epoch {epoch} target {ti}"),
            None => {
                variants.insert((*epoch, *ti), body);
            }
        }
        if *ti == 2 {
            assert_eq!(
                json(body)["epochs"].as_u64(),
                Some(*epoch),
                "trajectory length must match its serving epoch"
            );
        }
    }
    let mut seen: Vec<u64> = all.iter().map(|(e, _, _)| *e).collect();
    seen.sort_unstable();
    seen.dedup();
    assert!(
        seen.contains(&1) && seen.contains(&3),
        "epochs seen: {seen:?}"
    );

    Arc::try_unwrap(handle)
        .ok()
        .expect("sole handle ref")
        .shutdown();
    let _ = std::fs::remove_dir_all(&tmp);
}

// --------------------------------------------------------------- shutdown

/// Graceful shutdown drains: a request in flight is answered, the idle
/// keep-alive connection closes, and `shutdown()` returns promptly.
#[test]
fn shutdown_drains_and_joins_promptly() {
    let config = ServeConfig {
        limits: Limits {
            idle_timeout: Duration::from_secs(30),
            ..Limits::default()
        },
        workers: 2,
        ..ServeConfig::default()
    };
    let handle = start(config, fixture_snapshot(1)).expect("start");
    let addr = handle.addr();

    // Hold an idle keep-alive connection (worker 1 pinned).
    let mut idle = connect(addr);
    idle.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut idle).unwrap().status, 200);

    // Fire a request exactly as shutdown begins on another thread.
    let t0 = Instant::now();
    let racer = std::thread::spawn(move || -> Option<Resp> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        write!(
            stream,
            "GET /v1/meta HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .ok()?;
        read_response(&mut stream)
    });
    handle.request_shutdown();
    // The racing request either completed (200) or was refused cleanly
    // (the acceptor was already gone); it must not hang or be torn.
    if let Some(resp) = racer.join().expect("racer") {
        assert_eq!(resp.status, 200);
        assert!(json(&resp.body).get("sites").is_some());
    }
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    // The held idle connection is closed (EOF), not left dangling.
    let mut rest = Vec::new();
    let _ = idle.read_to_end(&mut rest);
    assert!(rest.is_empty());
}
