//! End-to-end tests for the `GET /metrics` exporter over a real socket:
//! the body is well-formed Prometheus text, counters are monotone across
//! scrapes, and a snapshot publish under live load is reflected in the
//! epoch gauge and the cache purge counters.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::Ipv4Addr;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use webdep_pipeline::{FailureCause, LayerError, MeasuredDataset, SiteObservation};
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, ServeConfig};
use webdep_webgen::{World, WorldConfig};

// ---------------------------------------------------------------- fixture

fn synth_observation(world: &World, i: usize) -> SiteObservation {
    let site = &world.sites[i];
    let mut o = SiteObservation::blank(&site.domain, &site.language);
    if i.is_multiple_of(97) {
        o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
        o.derive_error_summary();
        return o;
    }
    let hosting = world.universe.provider(site.hosting);
    o.hosting_ip = Some(Ipv4Addr::from(0x0A00_0000u32 | (i as u32 & 0x00FF_FFFF)));
    o.hosting_asn = Some(hosting.asn);
    o.hosting_org = Some(site.hosting);
    o.hosting_org_country = Some(hosting.country.clone());
    o.hosting_ip_country = Some(hosting.country.clone());
    let dns = world.universe.provider(site.dns);
    o.ns_names = vec![format!("ns1.{}.net", dns.slug())];
    o.dns_asn = Some(dns.asn);
    o.dns_org = Some(site.dns);
    o.dns_org_country = Some(dns.country.clone());
    o.dns_ip_country = Some(dns.country.clone());
    let ca = world.universe.ca(site.ca);
    o.ca_owner = Some(site.ca);
    o.ca_owner_country = Some(ca.country.clone());
    o.derive_error_summary();
    o
}

fn fixture() -> &'static (Arc<World>, MeasuredDataset) {
    static FIXTURE: OnceLock<(Arc<World>, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = Arc::new(World::generate(WorldConfig {
            seed: 7,
            sites_per_country: 12,
            global_pool_size: 60,
            tail_scale: 0.04,
            pool_target: 24,
        }));
        let ds = MeasuredDataset {
            observations: (0..world.sites.len())
                .map(|i| synth_observation(&world, i))
                .collect(),
            toplists: world.toplists.clone(),
            global_top: world.global_top.clone(),
            label: world.label.clone(),
        };
        (world, ds)
    })
}

fn fixture_snapshot(epoch: u64) -> Arc<CubeSnapshot> {
    let (world, ds) = fixture();
    Arc::new(CubeSnapshot::from_dataset(
        epoch,
        Arc::clone(world),
        ds.clone(),
    ))
}

// ------------------------------------------------------------ http client

struct Resp {
    status: u16,
    content_type: String,
    body: Vec<u8>,
}

fn get(addr: SocketAddr, target: &str) -> Resp {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("eof before head"),
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
                assert!(head.len() <= 16 * 1024, "oversized head");
            }
            Err(e) => panic!("read head: {e}"),
        }
    }
    let text = std::str::from_utf8(&head).expect("ascii head");
    let mut lines = text.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let mut content_length = 0usize;
    let mut content_type = String::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = value.trim().to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body");
    Resp {
        status,
        content_type,
        body,
    }
}

// --------------------------------------------------- prometheus-text model

/// A scraped exposition: every sample keyed by its full series name
/// (including the label set), plus the `# TYPE` declared for each family.
struct Scrape {
    samples: HashMap<String, f64>,
    types: HashMap<String, String>,
}

/// Parses and *structurally validates* one exposition body: every
/// non-comment line is `name{labels} value`, every sample's family has a
/// preceding `# TYPE`, and histogram `_bucket` series are cumulative in
/// `le` with `_count` equal to the `+Inf` bucket.
fn scrape(addr: SocketAddr) -> Scrape {
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200);
    assert!(
        resp.content_type.starts_with("text/plain; version=0.0.4"),
        "wrong content type: {}",
        resp.content_type
    );
    let body = String::from_utf8(resp.body).expect("utf8 exposition");
    assert!(body.ends_with('\n'), "exposition must end with a newline");

    let mut samples = HashMap::new();
    let mut types = HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE line");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind}"
            );
            types.insert(family.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable value in line {line:?}");
        });
        let family = series.split('{').next().unwrap();
        let family = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .filter(|f| types.contains_key(*f))
            .unwrap_or(family);
        assert!(
            types.contains_key(family),
            "sample {series} has no preceding # TYPE"
        );
        let prior = samples.insert(series.to_string(), value);
        assert!(prior.is_none(), "duplicate series {series}");
    }

    // Histogram structure: buckets cumulative, +Inf equals _count.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let by_series: Vec<(&str, f64)> = samples
            .iter()
            .filter(|(k, _)| k.starts_with(&format!("{family}_bucket")))
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        // Group buckets by their non-`le` label set (route label here).
        let mut groups: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        for (series, value) in by_series {
            let labels = series
                .strip_prefix(&format!("{family}_bucket{{"))
                .and_then(|s| s.strip_suffix('}'))
                .expect("bucket labels");
            let mut le = f64::INFINITY;
            let mut rest = Vec::new();
            for part in labels.split(',') {
                if let Some(v) = part.strip_prefix("le=\"") {
                    let v = v.trim_end_matches('"');
                    le = if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().expect("le bound")
                    };
                } else {
                    rest.push(part);
                }
            }
            groups.entry(rest.join(",")).or_default().push((le, value));
        }
        for (labels, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in buckets.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{family}{{{labels}}}: buckets not cumulative"
                );
            }
            let inf = buckets.last().expect("at least +Inf").1;
            let count_series = if labels.is_empty() {
                format!("{family}_count")
            } else {
                format!("{family}_count{{{labels}}}")
            };
            assert_eq!(
                samples.get(&count_series).copied(),
                Some(inf),
                "{family}: _count != +Inf bucket"
            );
        }
    }
    Scrape { samples, types }
}

impl Scrape {
    fn get(&self, series: &str) -> f64 {
        *self
            .samples
            .get(series)
            .unwrap_or_else(|| panic!("missing series {series}"))
    }
}

// -------------------------------------------------------------------- tests

#[test]
fn metrics_body_is_well_formed_and_counters_are_monotone() {
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let addr = handle.addr();

    // Traffic across several routes, including a 404.
    for _ in 0..3 {
        assert_eq!(get(addr, "/healthz").status, 200);
    }
    assert_eq!(get(addr, "/v1/meta").status, 200);
    assert_eq!(get(addr, "/v1/score/US?layer=dns").status, 200);
    assert_eq!(get(addr, "/no/such/route").status, 404);

    let first = scrape(addr);
    assert_eq!(
        first
            .types
            .get("webdep_serve_requests_total")
            .map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        first
            .types
            .get("webdep_serve_request_seconds")
            .map(String::as_str),
        Some("histogram")
    );
    assert_eq!(
        first.get("webdep_serve_requests_total{route=\"healthz\"}"),
        3.0
    );
    assert_eq!(
        first.get("webdep_serve_requests_total{route=\"meta\"}"),
        1.0
    );
    assert_eq!(
        first.get("webdep_serve_requests_total{route=\"score\"}"),
        1.0
    );
    assert_eq!(
        first.get("webdep_serve_requests_total{route=\"other\"}"),
        1.0
    );
    // A scrape is counted after rendering its own body, so the first
    // exposition does not include itself.
    assert_eq!(
        first.get("webdep_serve_requests_total{route=\"metrics\"}"),
        0.0
    );
    assert_eq!(first.get("webdep_serve_snapshot_epoch"), 1.0);
    assert_eq!(first.get("webdep_serve_snapshot_publishes_total"), 1.0);
    assert_eq!(first.get("webdep_serve_responses_error_total"), 1.0);
    // Latency histograms carry the traffic.
    assert_eq!(
        first.get("webdep_serve_request_seconds_count{route=\"healthz\"}"),
        3.0
    );

    // More traffic, then re-scrape: every counter is monotone and the
    // touched ones strictly increased.
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/v1/score/US?layer=dns").status, 200);
    let second = scrape(addr);
    for (series, value) in &first.samples {
        let family = series.split('{').next().unwrap();
        let is_counter = first.types.get(family).map(String::as_str) == Some("counter")
            || family.ends_with("_bucket")
            || family.ends_with("_count")
            || family.ends_with("_sum");
        if is_counter {
            assert!(
                second.get(series) >= *value,
                "counter {series} went backwards: {} -> {}",
                value,
                second.get(series)
            );
        }
    }
    assert_eq!(
        second.get("webdep_serve_requests_total{route=\"healthz\"}"),
        4.0
    );
    assert_eq!(
        second.get("webdep_serve_requests_total{route=\"score\"}"),
        2.0
    );
    // The second identical score query hit the response cache.
    assert!(second.get("webdep_serve_cache_hits_total") >= 1.0);

    handle.shutdown();
}

#[test]
fn publish_under_load_moves_epoch_and_purges_cache() {
    let handle = start(ServeConfig::default(), fixture_snapshot(1)).expect("start");
    let addr = handle.addr();

    // Warm the cache against epoch 1.
    for code in ["US", "DE", "TH", "FR", "GB"] {
        assert_eq!(
            get(addr, &format!("/v1/score/{code}?layer=dns")).status,
            200
        );
    }
    let before = scrape(addr);
    assert!(before.get("webdep_serve_cache_entries") >= 5.0);
    assert_eq!(before.get("webdep_serve_cache_stale_purged_total"), 0.0);

    // Publish a new snapshot while clients are hammering the server.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loaders: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = get(addr, "/v1/score/US?layer=dns");
                    assert_eq!(r.status, 200);
                }
            })
        })
        .collect();
    let epoch = handle.publish(fixture_snapshot(2));
    assert_eq!(epoch, 2);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in loaders {
        t.join().expect("loader");
    }

    let after = scrape(addr);
    assert_eq!(after.get("webdep_serve_snapshot_epoch"), 2.0);
    assert_eq!(after.get("webdep_serve_snapshot_publishes_total"), 2.0);
    assert!(
        after.get("webdep_serve_cache_stale_purged_total") >= 5.0,
        "epoch-1 entries must be purged on publish: {}",
        after.get("webdep_serve_cache_stale_purged_total")
    );
    // stats() and /metrics are the same counters.
    let stats = handle.stats();
    let final_scrape = scrape(addr);
    assert!(final_scrape.get("webdep_serve_responses_ok_total") >= stats.ok as f64);

    handle.shutdown();
}
