//! Self-healing behavior over a real socket: slow-loris floods versus the
//! parking worker pool, deterministic load shedding, admission-queue hard
//! caps, per-route deadlines, and pre-publish snapshot validation with
//! rollback.

use std::io::{Read, Write};
use std::net::Ipv4Addr;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use webdep_pipeline::{
    ChunkStoreWriter, FailureCause, LayerError, MeasuredDataset, SiteObservation,
};
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, OverloadConfig, ServeConfig};
use webdep_webgen::{World, WorldConfig};

// ---------------------------------------------------------------- fixture

/// Same synthetic observation shape as `tests/service.rs`: deterministic
/// failure strides so the taxonomy and every layer carry real data.
fn synth_observation(world: &World, i: usize) -> SiteObservation {
    let site = &world.sites[i];
    let mut o = SiteObservation::blank(&site.domain, &site.language);
    if i.is_multiple_of(97) {
        o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
        o.dns_error = Some(LayerError::new(
            FailureCause::Timeout,
            "NS: query timed out",
        ));
        o.ca_error = Some(LayerError::new(
            FailureCause::Skipped,
            "no serving IP to scan",
        ));
        o.derive_error_summary();
        return o;
    }
    let hosting = world.universe.provider(site.hosting);
    o.hosting_ip = Some(Ipv4Addr::from(0x0A00_0000u32 | (i as u32 & 0x00FF_FFFF)));
    o.hosting_asn = Some(hosting.asn);
    o.hosting_org = Some(site.hosting);
    o.hosting_org_country = Some(hosting.country.clone());
    o.hosting_ip_country = Some(hosting.country.clone());
    o.hosting_anycast = hosting.anycast;
    let dns = world.universe.provider(site.dns);
    o.ns_names = vec![format!("ns1.{}.net", dns.slug())];
    o.dns_ip = Some(Ipv4Addr::from(0xAC10_0000u32 | (i as u32 & 0x000F_FFFF)));
    o.dns_asn = Some(dns.asn);
    o.dns_org = Some(site.dns);
    o.dns_org_country = Some(dns.country.clone());
    o.dns_ip_country = Some(dns.country.clone());
    o.dns_anycast = dns.anycast;
    if i.is_multiple_of(89) {
        o.ca_error = Some(LayerError::new(
            FailureCause::Refused,
            "TLS: handshake refused",
        ));
    } else {
        let ca = world.universe.ca(site.ca);
        o.ca_owner = Some(site.ca);
        o.ca_owner_country = Some(ca.country.clone());
    }
    o.derive_error_summary();
    o
}

fn synth_dataset(world: &World) -> MeasuredDataset {
    MeasuredDataset {
        observations: (0..world.sites.len())
            .map(|i| synth_observation(world, i))
            .collect(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    }
}

fn fixture() -> &'static (Arc<World>, MeasuredDataset) {
    static FIXTURE: OnceLock<(Arc<World>, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = Arc::new(World::generate(WorldConfig {
            seed: 42,
            sites_per_country: 40,
            global_pool_size: 120,
            tail_scale: 0.04,
            pool_target: 40,
        }));
        let ds = synth_dataset(&world);
        (world, ds)
    })
}

fn fixture_snapshot(epoch: u64) -> Arc<CubeSnapshot> {
    let (world, ds) = fixture();
    Arc::new(CubeSnapshot::from_dataset(
        epoch,
        Arc::clone(world),
        ds.clone(),
    ))
}

fn write_synth_store(world: &World, dir: &std::path::Path, chunk_sites: usize) {
    let _ = std::fs::remove_dir_all(dir);
    let mut writer = ChunkStoreWriter::create(dir, &world.label, world.sites.len(), chunk_sites)
        .expect("create");
    for i in 0..world.sites.len() {
        writer
            .commit(i, &synth_observation(world, i))
            .expect("commit");
    }
    writer.finish().expect("finish");
}

// ------------------------------------------------------------ http client

/// One response with the headers the overload tests care about.
struct Resp {
    status: u16,
    epoch: Option<u64>,
    retry_after: Option<u64>,
    body: Vec<u8>,
}

fn read_response(stream: &mut TcpStream) -> Option<Resp> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
                if head.len() > 16 * 1024 {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    let text = std::str::from_utf8(&head).ok()?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut epoch = None;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case("x-webdep-epoch") {
                epoch = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).ok()?;
    Some(Resp {
        status,
        epoch,
        retry_after,
        body,
    })
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn get(addr: SocketAddr, target: &str) -> Resp {
    let mut stream = connect(addr);
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    read_response(&mut stream).expect("one response")
}

/// Opens a slow-loris connection: a partial request head, then silence.
fn slow_loris(addr: SocketAddr) -> TcpStream {
    let mut stream = connect(addr);
    stream.write_all(b"GET /v1/meta HTT").expect("partial head");
    stream
}

// ------------------------------------------------------------------ tests

/// The satellite scenario: a 2-worker server saturated by slow-trickle
/// connections must keep answering fast queries. Parking multiplexes the
/// stalled connections across the pool, so the burst completes while every
/// loris is still connected.
#[test]
fn fast_queries_flow_past_slow_loris_flood() {
    let handle = start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        fixture_snapshot(1),
    )
    .expect("start");
    let addr = handle.addr();

    let lorises: Vec<TcpStream> = (0..12).map(|_| slow_loris(addr)).collect();
    // Let the pool absorb the flood (workers pick up, park, cycle).
    std::thread::sleep(Duration::from_millis(100));

    for _ in 0..4 {
        let resp = get(addr, "/healthz");
        assert_eq!(resp.status, 200, "/healthz must stay up mid-flood");
        for target in ["/v1/meta", "/v1/countries", "/v1/score/US", "/metrics"] {
            let resp = get(addr, target);
            assert_eq!(
                resp.status,
                200,
                "{target} starved by the flood: {}",
                String::from_utf8_lossy(&resp.body)
            );
        }
    }
    assert_eq!(
        handle.metrics().shed_load.get() + handle.metrics().shed_queue.get(),
        0,
        "nothing sheds below the thresholds"
    );
    drop(lorises);
    handle.shutdown();
}

/// `p99_budget: ZERO` is the deterministic always-shed mode: the EWMA
/// comparison is `>=`, so every non-exempt request sheds with
/// `503 + Retry-After` while `/healthz` and `/metrics` stay admitted.
#[test]
fn zero_budget_sheds_everything_but_health_and_metrics() {
    let handle = start(
        ServeConfig {
            workers: 2,
            overload: OverloadConfig {
                p99_budget: Duration::ZERO,
                retry_after_secs: 7,
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        },
        fixture_snapshot(1),
    )
    .expect("start");
    let addr = handle.addr();

    for target in ["/v1/meta", "/v1/score/US", "/v1/taxonomy"] {
        let resp = get(addr, target);
        assert_eq!(resp.status, 503, "{target} must shed");
        assert_eq!(
            resp.retry_after,
            Some(7),
            "{target} shed without Retry-After"
        );
        assert_eq!(resp.epoch, Some(1));
    }
    for target in ["/healthz", "/metrics"] {
        let resp = get(addr, target);
        assert_eq!(resp.status, 200, "{target} is exempt from shedding");
        assert_eq!(resp.retry_after, None);
    }
    assert_eq!(handle.metrics().shed_load.get(), 3, "one shed per request");
    assert_eq!(handle.metrics().shed_queue.get(), 0);
    handle.shutdown();
}

/// Past the hard queue cap, over-capacity connections are answered with a
/// `503 + Retry-After` without their request ever being dispatched —
/// either blind at accept time or when a park overflows the refilled
/// queue. With one worker, `queue_depth: 1`, and three stalled
/// connections, exactly one connection can be held and one queued, so
/// exactly two must shed no matter how accepts and parks interleave.
#[test]
fn admission_queue_hard_cap_blind_sheds() {
    let handle = start(
        ServeConfig {
            workers: 1,
            overload: OverloadConfig {
                queue_depth: 1,
                // Keep dispatch-time shedding out of the picture: this
                // test is about the admission cap alone.
                shed_depth: 64,
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        },
        fixture_snapshot(1),
    )
    .expect("start");
    let addr = handle.addr();

    // First loris is absorbed by the sole worker (queue drains to zero)…
    let mut streams = vec![slow_loris(addr)];
    std::thread::sleep(Duration::from_millis(150));
    // …then two more arrive back-to-back: one fills the queue slot, and
    // from then on the server is over capacity until two connections shed.
    streams.push(slow_loris(addr));
    streams.push(slow_loris(addr));

    let mut sheds = 0;
    for stream in &mut streams {
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        if let Some(resp) = read_response(stream) {
            assert_eq!(resp.status, 503);
            assert_eq!(resp.retry_after, Some(1), "shed without Retry-After");
            sheds += 1;
        }
    }
    assert_eq!(sheds, 2, "exactly two of three connections fit nowhere");
    assert_eq!(handle.metrics().shed_queue.get(), 2);
    assert_eq!(handle.metrics().shed_load.get(), 0);
    drop(streams);
    handle.shutdown();
}

/// `route_deadline: ZERO` makes every bootstrap-bearing request abort at
/// its first deadline poll: a deterministic stand-in for cube work that
/// would otherwise wedge a worker past its budget. The abort is a 503
/// with Retry-After, the worker survives, and cheap routes still answer.
#[test]
fn route_deadline_aborts_instead_of_wedging() {
    let handle = start(
        ServeConfig {
            workers: 1,
            overload: OverloadConfig {
                route_deadline: Duration::ZERO,
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        },
        fixture_snapshot(1),
    )
    .expect("start");
    let addr = handle.addr();

    for _ in 0..3 {
        let resp = get(addr, "/v1/ci/US?replicates=500");
        assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
        assert!(
            String::from_utf8_lossy(&resp.body).contains("deadline"),
            "the body names the deadline"
        );
        assert_eq!(resp.retry_after, Some(1));
    }
    assert_eq!(handle.metrics().deadline_aborts.get(), 3);
    // The sole worker was never wedged: cheap work still flows, and a
    // replicates=0 score (no bootstrap loop to abort) completes.
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/v1/meta").status, 200);
    assert_eq!(get(addr, "/v1/score/US?replicates=0").status, 200);
    handle.shutdown();
}

/// Pre-publish validation: honest snapshots (every constructor) pass, a
/// poisoned candidate is rejected with the prior epoch still serving, and
/// the rejection is visible in `publish_rejected` — rollback by never
/// rolling forward.
#[test]
fn validation_rejects_poisoned_snapshots_and_keeps_serving() {
    let (world, ds) = fixture();
    let tmp = std::env::temp_dir().join(format!("webdep-overload-val-{}", std::process::id()));
    write_synth_store(world, &tmp, 64);

    // Every honest constructor validates standalone.
    let snap1 = fixture_snapshot(1);
    snap1.validate(None, None).expect("from_dataset validates");
    CubeSnapshot::from_observations(1, Arc::clone(world), &world.label, &ds.observations)
        .validate(None, None)
        .expect("from_observations validates");
    CubeSnapshot::from_store(1, Arc::clone(world), &tmp)
        .expect("from_store")
        .validate(None, None)
        .expect("from_store validates");

    let handle = start(ServeConfig::default(), Arc::clone(&snap1)).expect("start");
    let addr = handle.addr();

    // An honest successor extends the trajectory and publishes cleanly.
    let snap2 = Arc::new(
        CubeSnapshot::from_store_extending(2, Arc::clone(world), &tmp, &snap1)
            .expect("from_store_extending"),
    );
    assert_eq!(
        handle
            .publish_validated(Arc::clone(&snap2), None)
            .expect("honest publish"),
        2
    );
    assert_eq!(get(addr, "/healthz").epoch, Some(2));

    // Poisoned taxonomy: rejected, epoch 2 keeps serving.
    let mut poisoned =
        CubeSnapshot::from_store_extending(3, Arc::clone(world), &tmp, &snap2).expect("build");
    poisoned.taxonomy.clean += 1;
    let why = handle
        .publish_validated(Arc::new(poisoned), None)
        .expect_err("poisoned taxonomy must be rejected");
    assert!(why.contains("taxonomy"), "unexpected reason: {why}");

    // Poisoned trajectory label: rejected.
    let mut poisoned =
        CubeSnapshot::from_store_extending(3, Arc::clone(world), &tmp, &snap2).expect("build");
    poisoned.trajectory.points.last_mut().unwrap().label = "someone-else".into();
    assert!(handle.publish_validated(Arc::new(poisoned), None).is_err());

    // Non-advancing epoch: rejected by validation, never a publish panic.
    let stale =
        CubeSnapshot::from_store_extending(2, Arc::clone(world), &tmp, &snap2).expect("build");
    assert!(handle.publish_validated(Arc::new(stale), None).is_err());

    // A fresh-trajectory snapshot cannot silently truncate served history.
    let fresh = CubeSnapshot::from_store(3, Arc::clone(world), &tmp).expect("build");
    assert!(handle.publish_validated(Arc::new(fresh), None).is_err());

    assert_eq!(handle.metrics().publish_rejected.get(), 4);
    assert_eq!(
        get(addr, "/healthz").epoch,
        Some(2),
        "prior epoch still serving after every rejection"
    );

    // Serving recovers: the next honest epoch publishes.
    let snap3 = Arc::new(
        CubeSnapshot::from_store_extending(3, Arc::clone(world), &tmp, &snap2).expect("build"),
    );
    assert_eq!(handle.publish_validated(snap3, None).expect("recover"), 3);
    assert_eq!(get(addr, "/healthz").epoch, Some(3));

    handle.shutdown();
    std::fs::remove_dir_all(&tmp).ok();
}
