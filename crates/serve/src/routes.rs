//! Route table and JSON responders.
//!
//! Every successful body is rendered from exactly one [`CubeSnapshot`] and
//! stamps that snapshot's `epoch` (and dataset `label`) into the JSON, so a
//! response can never mix data from two epochs. Cacheable routes first
//! build a *canonical* key — query parameters normalized and defaults
//! applied — so `/v1/score/us` and `/v1/score/US?replicates=200` share one
//! cache entry. Error responses are never cached.
//!
//! The responders call the same `webdep-analysis` functions the one-shot
//! report uses ([`webdep_analysis::insularity::dependence_shares`],
//! [`AnalysisCtx::score_ci`], [`webdep_analysis::coverage_model`], …);
//! serving must not fork the analysis math — the consistency test diffs
//! served numbers against a directly-built context.

use crate::cache::ResponseCache;
use crate::http::{error_body, Request};
use crate::snapshot::CubeSnapshot;
use serde_json::Value;
use std::sync::Arc;
use webdep_analysis::insularity::{country_insularity, dependence_shares};
use webdep_analysis::{coverage_model, AnalysisCtx};
use webdep_core::{centralization_score, ConcentrationBand};
use webdep_stats::BootstrapScratch;
use webdep_webgen::{Layer, World, COUNTRIES};

/// A per-request soft budget. Expensive responders (bootstrap CIs) poll
/// the deadline between replicate chunks and abort with `503` instead of
/// wedging a worker; cheap responders ignore it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute deadline; `None` means unlimited.
    pub deadline: Option<std::time::Instant>,
}

impl Budget {
    /// A budget with no deadline (tests, CLI one-shots).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `after` from now.
    pub fn expiring(after: std::time::Duration) -> Self {
        Budget {
            deadline: std::time::Instant::now().checked_add(after),
        }
    }

    fn expired(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// A responder ran past its [`Budget`] deadline and was aborted.
struct DeadlineExceeded;

/// Default bootstrap replicates for CI-bearing routes.
pub const DEFAULT_REPLICATES: usize = 200;
/// Default bootstrap seed (matches the report suite's fixed seed).
pub const DEFAULT_SEED: u64 = 42;
/// Default confidence level.
pub const DEFAULT_LEVEL: f64 = 0.95;

/// A routed response: status, rendered JSON body, whether the response
/// cache supplied it, and the route label for telemetry.
pub struct Routed {
    /// HTTP status code.
    pub status: u16,
    /// JSON body bytes (shared with the cache on hits).
    pub body: Arc<Vec<u8>>,
    /// Whether this body came from the response cache.
    pub cache_hit: bool,
    /// Metrics label: the matched route name, or `"other"` for unmatched
    /// paths (bounded so hostile traffic cannot mint unbounded series).
    pub route: &'static str,
    /// Whether this response is a `503` from a deadline-aborted responder
    /// (the server counts these separately from load sheds).
    pub deadline_abort: bool,
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn vs(s: &str) -> Value {
    Value::String(s.to_string())
}

fn routed_err(route: &'static str, status: u16, reason: &str) -> Routed {
    Routed {
        status,
        body: Arc::new(error_body(status, reason)),
        cache_hit: false,
        route,
        deadline_abort: false,
    }
}

struct Query {
    layer: Layer,
    replicates: usize,
    seed: u64,
    level: f64,
    top: usize,
}

/// Parses and normalizes the query parameters every route shares,
/// rejecting unknown layers and non-numeric values.
fn parse_query(req: &Request) -> Result<Query, String> {
    let layer = match req.param("layer") {
        None => Layer::Hosting,
        Some(name) => parse_layer(name).ok_or_else(|| format!("unknown layer '{name}'"))?,
    };
    let replicates = match req.param("replicates") {
        None => DEFAULT_REPLICATES,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad replicates '{v}'"))?,
    };
    if replicates > 100_000 {
        return Err(format!("replicates {replicates} exceeds limit 100000"));
    }
    let seed = match req.param("seed") {
        None => DEFAULT_SEED,
        Some(v) => v.parse::<u64>().map_err(|_| format!("bad seed '{v}'"))?,
    };
    let level = match req.param("level") {
        None => DEFAULT_LEVEL,
        Some(v) => {
            let x = v.parse::<f64>().map_err(|_| format!("bad level '{v}'"))?;
            if !(x > 0.0 && x < 1.0) {
                return Err(format!("level {x} outside (0, 1)"));
            }
            x
        }
    };
    let top = match req.param("top").or_else(|| req.param("n")) {
        None => 10,
        Some(v) => v.parse::<usize>().map_err(|_| format!("bad top '{v}'"))?,
    };
    Ok(Query {
        layer,
        replicates,
        seed,
        level,
        top,
    })
}

fn parse_layer(name: &str) -> Option<Layer> {
    match name.to_ascii_lowercase().as_str() {
        "hosting" => Some(Layer::Hosting),
        "dns" => Some(Layer::Dns),
        "ca" => Some(Layer::Ca),
        "tld" => Some(Layer::Tld),
        _ => None,
    }
}

fn country_of(segment: &str) -> Result<(usize, String), String> {
    let code = segment.to_ascii_uppercase();
    match World::country_index(&code) {
        Some(ci) => Ok((ci, code)),
        None => Err(format!("unknown country '{segment}'")),
    }
}

/// Routes a parsed request against a snapshot, consulting (and filling)
/// the response cache for cacheable routes. The `budget`'s deadline bounds
/// expensive cube work; pass [`Budget::unlimited`] where no deadline
/// applies.
pub fn handle(req: &Request, snap: &CubeSnapshot, cache: &ResponseCache, budget: Budget) -> Routed {
    let mut segs = req.path.split('/').filter(|s| !s.is_empty());
    let (head, rest): (Option<&str>, Vec<&str>) = {
        let h = segs.next();
        (h, segs.collect())
    };
    match (head, rest.as_slice()) {
        (Some("healthz"), []) => Routed {
            status: 200,
            body: Arc::new(
                obj(vec![
                    ("status", vs("ok")),
                    ("epoch", Value::U64(snap.epoch)),
                ])
                .to_string()
                .into_bytes(),
            ),
            cache_hit: false,
            route: "healthz",
            deadline_abort: false,
        },
        (Some("v1"), tail) => route_v1(req, tail, snap, cache, budget),
        _ => routed_err("other", 404, "no such route"),
    }
}

/// The telemetry label a path would be answered under, without dispatching
/// it — what the shed path stamps on its `503` so per-route counters stay
/// truthful even for requests that never reach a responder.
pub fn route_label(path: &str) -> &'static str {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segs.as_slice() {
        ["healthz"] => "healthz",
        ["metrics"] => "metrics",
        ["v1", tail @ ..] => v1_label(tail),
        _ => "other",
    }
}

/// The telemetry label for a `/v1` tail: the route's own name when the
/// shape matches a known route, `"other"` otherwise.
fn v1_label(tail: &[&str]) -> &'static str {
    match tail {
        ["meta"] => "meta",
        ["countries"] => "countries",
        ["score", _] => "score",
        ["ci", _] => "ci",
        ["shares", _] => "shares",
        ["insularity", _] => "insularity",
        ["badge", _] => "badge",
        ["top"] => "top",
        ["coverage"] => "coverage",
        ["taxonomy"] => "taxonomy",
        ["trajectory"] => "trajectory",
        _ => "other",
    }
}

/// A route resolution: the canonical cache key plus the deferred
/// responder that renders the body on a cache miss (or reports that it ran
/// past the request [`Budget`]).
type Resolved = (
    String,
    Box<dyn FnOnce(&CubeSnapshot) -> Result<Value, DeadlineExceeded>>,
);

fn route_v1(
    req: &Request,
    tail: &[&str],
    snap: &CubeSnapshot,
    cache: &ResponseCache,
    budget: Budget,
) -> Routed {
    let route = v1_label(tail);
    let q = match parse_query(req) {
        Ok(q) => q,
        Err(reason) => return routed_err(route, 400, &reason),
    };
    // (canonical cache key, responder) per route; unknown → 404.
    let build: Result<Resolved, Routed> = match tail {
        ["meta"] => Ok((
            "meta".to_string(),
            Box::new(|s: &CubeSnapshot| Ok(meta_body(s))),
        )),
        ["countries"] => Ok((
            "countries".to_string(),
            Box::new(|s: &CubeSnapshot| Ok(countries_body(s))),
        )),
        ["score", cc] => match country_of(cc) {
            Ok((ci, code)) => Ok((
                format!(
                    "score/{code}/{}/r{}/s{}/l{}",
                    q.layer.name(),
                    q.replicates,
                    q.seed,
                    q.level
                ),
                Box::new(move |s| score_body(s, ci, &code, &q, budget)),
            )),
            Err(reason) => return routed_err(route, 404, &reason),
        },
        ["ci", cc] => match country_of(cc) {
            Ok((ci, code)) => Ok((
                format!(
                    "ci/{code}/{}/r{}/s{}/l{}",
                    q.layer.name(),
                    q.replicates,
                    q.seed,
                    q.level
                ),
                Box::new(move |s| ci_body(s, ci, &code, &q, budget)),
            )),
            Err(reason) => return routed_err(route, 404, &reason),
        },
        ["shares", cc] => match country_of(cc) {
            Ok((ci, code)) => Ok((
                format!("shares/{code}/{}/t{}", q.layer.name(), q.top),
                Box::new(move |s| Ok(shares_body(s, ci, &code, &q))),
            )),
            Err(reason) => return routed_err(route, 404, &reason),
        },
        ["insularity", cc] => match country_of(cc) {
            Ok((ci, code)) => Ok((
                format!("insularity/{code}/{}", q.layer.name()),
                Box::new(move |s| Ok(insularity_body(s, ci, &code, &q))),
            )),
            Err(reason) => return routed_err(route, 404, &reason),
        },
        ["badge", cc] => match country_of(cc) {
            Ok((ci, code)) => Ok((
                format!("badge/{code}/r{}/s{}/l{}", q.replicates, q.seed, q.level),
                Box::new(move |s| badge_body(s, ci, &code, &q, budget)),
            )),
            Err(reason) => return routed_err(route, 404, &reason),
        },
        ["top"] => Ok((
            format!("top/{}/t{}", q.layer.name(), q.top),
            Box::new(move |s| Ok(top_body(s, &q))),
        )),
        ["coverage"] => Ok((
            "coverage".to_string(),
            Box::new(|s: &CubeSnapshot| Ok(coverage_body(s))),
        )),
        ["taxonomy"] => Ok((
            "taxonomy".to_string(),
            Box::new(|s: &CubeSnapshot| Ok(taxonomy_body(s))),
        )),
        ["trajectory"] => Ok((
            "trajectory".to_string(),
            Box::new(|s: &CubeSnapshot| Ok(trajectory_body(s))),
        )),
        _ => return routed_err(route, 404, "no such route"),
    };
    let (key, responder) = match build {
        Ok(pair) => pair,
        Err(routed) => return routed,
    };
    if let Some(body) = cache.get(snap.epoch, &key) {
        return Routed {
            status: 200,
            body,
            cache_hit: true,
            route,
            deadline_abort: false,
        };
    }
    let mut value = match responder(snap) {
        Ok(v) => v,
        Err(DeadlineExceeded) => {
            let mut routed = routed_err(route, 503, "deadline exceeded");
            routed.deadline_abort = true;
            return routed;
        }
    };
    stamp(&mut value, snap);
    let body = Arc::new(value.to_string().into_bytes());
    cache.insert(snap.epoch, &key, Arc::clone(&body));
    Routed {
        status: 200,
        body,
        cache_hit: false,
        route,
        deadline_abort: false,
    }
}

/// Prepends the epoch and dataset label so every body names its snapshot.
fn stamp(value: &mut Value, snap: &CubeSnapshot) {
    if let Value::Object(entries) = value {
        entries.insert(0, ("label".to_string(), vs(&snap.dataset.label)));
        entries.insert(0, ("epoch".to_string(), Value::U64(snap.epoch)));
    }
}

fn meta_body(snap: &CubeSnapshot) -> Value {
    obj(vec![
        ("sites", Value::U64(snap.world.sites.len() as u64)),
        ("countries", Value::U64(COUNTRIES.len() as u64)),
        (
            "layers",
            Value::Array(Layer::ALL.iter().map(|l| vs(l.name())).collect()),
        ),
        ("resident", Value::Bool(snap.resident)),
        ("taxonomy_total", Value::U64(snap.taxonomy.total)),
    ])
}

fn countries_body(_snap: &CubeSnapshot) -> Value {
    obj(vec![(
        "countries",
        Value::Array(
            COUNTRIES
                .iter()
                .map(|c| {
                    obj(vec![
                        ("code", vs(c.code)),
                        ("name", vs(c.name)),
                        ("continent", vs(c.continent.code())),
                        ("subregion", vs(c.subregion)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// The per-country score panel: 𝒮, DoJ band, provider-count facts, and
/// (for `replicates > 0`) a bootstrap CI — the same math as the report's
/// layer table row.
fn score_body(
    snap: &CubeSnapshot,
    ci: usize,
    code: &str,
    q: &Query,
    budget: Budget,
) -> Result<Value, DeadlineExceeded> {
    let ctx = snap.ctx();
    let mut entries = vec![("country", vs(code)), ("layer", vs(q.layer.name()))];
    match ctx.country_dist(ci, q.layer) {
        Some(dist) => {
            let s = centralization_score(&dist);
            entries.push(("s", Value::F64(s)));
            entries.push(("band", vs(ConcentrationBand::classify(s).label())));
            entries.push(("num_providers", Value::U64(dist.num_providers() as u64)));
            entries.push(("top_share", Value::F64(dist.top_share())));
            entries.push((
                "providers_for_90pct",
                Value::U64(dist.providers_to_cover(0.90) as u64),
            ));
        }
        None => {
            entries.push(("s", Value::Null));
            entries.push(("band", Value::Null));
        }
    }
    entries.push(("coverage", Value::F64(ctx.country_coverage(ci, q.layer))));
    entries.push(("ci", ci_value(&ctx, ci, q, budget)?));
    Ok(obj(entries))
}

/// The bootstrap-CI fragment shared by `score`, `ci`, and `badge` bodies.
/// Runs through the abortable bootstrap so a request past its budget sheds
/// instead of finishing the replicates; a completed interval is
/// bit-identical to the unbudgeted one (same per-replicate seeding).
fn ci_value(
    ctx: &AnalysisCtx<'_>,
    ci: usize,
    q: &Query,
    budget: Budget,
) -> Result<Value, DeadlineExceeded> {
    if q.replicates == 0 {
        return Ok(Value::Null);
    }
    let mut scratch = BootstrapScratch::new();
    match ctx.score_ci_abortable(
        ci,
        q.layer,
        q.replicates,
        q.level,
        q.seed,
        &mut scratch,
        &mut || budget.expired(),
    ) {
        Ok(Some(b)) => Ok(obj(vec![
            ("point", Value::F64(b.point)),
            ("lo", Value::F64(b.lo)),
            ("hi", Value::F64(b.hi)),
            ("replicates", Value::U64(b.replicates as u64)),
            ("level", Value::F64(q.level)),
            ("seed", Value::U64(q.seed)),
        ])),
        Ok(None) => Ok(Value::Null),
        Err(_) => Err(DeadlineExceeded),
    }
}

fn ci_body(
    snap: &CubeSnapshot,
    ci: usize,
    code: &str,
    q: &Query,
    budget: Budget,
) -> Result<Value, DeadlineExceeded> {
    let ctx = snap.ctx();
    Ok(obj(vec![
        ("country", vs(code)),
        ("layer", vs(q.layer.name())),
        ("ci", ci_value(&ctx, ci, q, budget)?),
    ]))
}

/// Per-country dependence shares (provider-country → share), truncated to
/// the requested `top` length.
fn shares_body(snap: &CubeSnapshot, ci: usize, code: &str, q: &Query) -> Value {
    let ctx = snap.ctx();
    let shares = dependence_shares(&ctx, ci, q.layer);
    let truncated = shares.len() > q.top;
    obj(vec![
        ("country", vs(code)),
        ("layer", vs(q.layer.name())),
        ("total_countries", Value::U64(shares.len() as u64)),
        ("truncated", Value::Bool(truncated)),
        (
            "shares",
            Value::Array(
                shares
                    .iter()
                    .take(q.top)
                    .map(|(cc, share)| {
                        obj(vec![("country", vs(cc)), ("share", Value::F64(*share))])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn insularity_body(snap: &CubeSnapshot, ci: usize, code: &str, q: &Query) -> Value {
    let ctx = snap.ctx();
    let ins = country_insularity(&ctx, ci, q.layer);
    obj(vec![
        ("country", vs(code)),
        ("layer", vs(q.layer.name())),
        ("insularity", ins.map(Value::F64).unwrap_or(Value::Null)),
    ])
}

/// The badge: one call summarizing a country across all four layers, with
/// a bootstrap CI on the hosting score (the paper's headline layer).
fn badge_body(
    snap: &CubeSnapshot,
    ci: usize,
    code: &str,
    q: &Query,
    budget: Budget,
) -> Result<Value, DeadlineExceeded> {
    let ctx = snap.ctx();
    let mut layers = Vec::new();
    for layer in Layer::ALL {
        let mut entries = vec![("layer", vs(layer.name()))];
        match ctx.country_dist(ci, layer) {
            Some(dist) => {
                let s = centralization_score(&dist);
                entries.push(("s", Value::F64(s)));
                entries.push(("band", vs(ConcentrationBand::classify(s).label())));
            }
            None => {
                entries.push(("s", Value::Null));
                entries.push(("band", Value::Null));
            }
        }
        entries.push((
            "insularity",
            country_insularity(&ctx, ci, layer)
                .map(Value::F64)
                .unwrap_or(Value::Null),
        ));
        entries.push(("coverage", Value::F64(ctx.country_coverage(ci, layer))));
        layers.push(obj(entries));
    }
    let hosting_q = Query {
        layer: Layer::Hosting,
        ..*q
    };
    Ok(obj(vec![
        ("country", vs(code)),
        ("name", vs(COUNTRIES[ci].name)),
        ("layers", Value::Array(layers)),
        ("hosting_ci", ci_value(&ctx, ci, &hosting_q, budget)?),
    ]))
}

/// The global-top panel: leading owners on the worldwide toplist at a
/// layer, plus the global centralization score (Figure 12's marker).
fn top_body(snap: &CubeSnapshot, q: &Query) -> Value {
    let ctx = snap.ctx();
    let counts = ctx.global_counts(q.layer);
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    let owners: Vec<Value> = counts
        .iter()
        .take(q.top)
        .map(|&(owner, count)| {
            obj(vec![
                ("name", vs(ctx.owner_name(q.layer, owner))),
                (
                    "country",
                    ctx.owner_country(q.layer, owner)
                        .map(vs)
                        .unwrap_or(Value::Null),
                ),
                ("count", Value::U64(count)),
                (
                    "share",
                    if total == 0 {
                        Value::Null
                    } else {
                        Value::F64(count as f64 / total as f64)
                    },
                ),
            ])
        })
        .collect();
    obj(vec![
        ("layer", vs(q.layer.name())),
        ("total", Value::U64(total)),
        ("owners", Value::Array(owners)),
        (
            "global_s",
            webdep_analysis::centralization::global_top_score(&ctx, q.layer)
                .map(Value::F64)
                .unwrap_or(Value::Null),
        ),
    ])
}

fn coverage_body(snap: &CubeSnapshot) -> Value {
    let ctx = snap.ctx();
    let model = coverage_model(&ctx);
    let layers: Vec<Value> = model
        .layers
        .iter()
        .map(|lc| {
            let min = lc.min_country();
            obj(vec![
                ("layer", vs(lc.layer_name)),
                ("observed", Value::U64(lc.observed)),
                ("expected", Value::U64(lc.expected)),
                ("fraction", Value::F64(lc.fraction())),
                (
                    "min_country",
                    min.map(|(code, _)| vs(code)).unwrap_or(Value::Null),
                ),
                (
                    "min_coverage",
                    min.map(|(_, f)| Value::F64(f)).unwrap_or(Value::Null),
                ),
                ("dark_countries", Value::U64(lc.dark_countries() as u64)),
            ])
        })
        .collect();
    obj(vec![("layers", Value::Array(layers))])
}

/// The per-epoch centralization trajectory carried on the snapshot: one
/// point per published epoch up to this one, with drift and changepoint
/// flags. Epoch-consistent by construction — the points ride the same
/// snapshot every other route reads.
fn trajectory_body(snap: &CubeSnapshot) -> Value {
    let points: Vec<Value> = snap
        .trajectory
        .points
        .iter()
        .map(|p| {
            obj(vec![
                ("epoch", Value::U64(p.epoch as u64)),
                ("label", vs(&p.label)),
                ("mean_score", Value::F64(p.mean_score)),
                ("mean_cloudflare_pct", Value::F64(p.mean_cloudflare_pct)),
                ("drift", Value::F64(p.drift)),
                ("changepoint", Value::Bool(p.changepoint)),
            ])
        })
        .collect();
    obj(vec![
        ("epochs", Value::U64(points.len() as u64)),
        ("points", Value::Array(points)),
    ])
}

fn taxonomy_body(snap: &CubeSnapshot) -> Value {
    let tax = &snap.taxonomy;
    let layers: Vec<(String, Value)> = tax
        .counts
        .iter()
        .map(|(layer, causes)| {
            (
                layer.clone(),
                Value::Object(
                    causes
                        .iter()
                        .map(|(cause, n)| (cause.clone(), Value::U64(*n)))
                        .collect(),
                ),
            )
        })
        .collect();
    obj(vec![
        ("total", Value::U64(tax.total)),
        ("clean", Value::U64(tax.clean)),
        ("failures", Value::Object(layers)),
    ])
}
