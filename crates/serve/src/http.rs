//! A deliberately small HTTP/1.1 head parser and response writer.
//!
//! The service speaks exactly the subset the query API needs: `GET` with a
//! path and query string, persistent connections, and fixed-length
//! responses. Everything else is rejected with a precise status code
//! rather than parsed generously: the parser runs on bytes straight off
//! the wire, so its contract is *never panic, never overread, always
//! terminate* — property-tested against arbitrary byte garbage.
//!
//! Limits are explicit and enforced while bytes accumulate, not after:
//! a head larger than [`Limits::max_head_bytes`] is answered with `413`
//! the moment the cap is crossed, so a hostile peer cannot grow buffers
//! unboundedly, and a peer that trickles bytes forever runs into the
//! per-request read deadline in the connection loop instead of pinning a
//! worker.

/// Parser and connection limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request head (request line + headers + CRLFCRLF).
    pub max_head_bytes: usize,
    /// Maximum bytes of the request target (path + query).
    pub max_target_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Wall-clock budget for reading one complete request head.
    pub read_deadline: std::time::Duration,
    /// How long an idle keep-alive connection is held open.
    pub idle_timeout: std::time::Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_target_bytes: 2 * 1024,
            max_headers: 64,
            read_deadline: std::time::Duration::from_secs(5),
            idle_timeout: std::time::Duration::from_secs(15),
        }
    }
}

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `HEAD`, ...), uppercase by wire convention.
    pub method: String,
    /// Decoded path component, e.g. `/v1/score/US`.
    pub path: String,
    /// Decoded query parameters in wire order.
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request head was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (bad request line, header, encoding).
    Malformed(&'static str),
    /// Head, target, or header count over the configured limit.
    TooLarge(&'static str),
    /// Syntactically fine, but a method the service does not implement.
    MethodNotAllowed,
    /// An HTTP version other than 1.0/1.1.
    VersionNotSupported,
    /// The request carries a body (the query API is read-only).
    BodyNotAllowed,
}

impl HttpError {
    /// The status code this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::MethodNotAllowed => 405,
            HttpError::VersionNotSupported => 505,
            HttpError::BodyNotAllowed => 413,
        }
    }

    /// A short human-readable reason.
    pub fn reason(&self) -> &'static str {
        match self {
            HttpError::Malformed(why) => why,
            HttpError::TooLarge(why) => why,
            HttpError::MethodNotAllowed => "only GET is supported",
            HttpError::VersionNotSupported => "only HTTP/1.0 and HTTP/1.1 are supported",
            HttpError::BodyNotAllowed => "request bodies are not accepted",
        }
    }
}

/// Outcome of attempting to parse a (possibly still incomplete) head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete head; `consumed` bytes of the buffer were used.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer consumed by this head.
        consumed: usize,
    },
    /// No complete head yet — read more bytes (caller enforces deadline).
    Partial,
    /// The bytes can never become a valid request.
    Error(HttpError),
}

/// Attempts to parse one request head from the front of `buf`.
///
/// Total function over arbitrary bytes: returns `Partial` until the
/// `\r\n\r\n` terminator is present (or the head limit is crossed, which
/// is an error even before the terminator arrives), and never panics or
/// reads past `buf`.
pub fn parse_head(buf: &[u8], limits: &Limits) -> ParseOutcome {
    // Find the head terminator within the cap. Scanning is bounded by the
    // cap, so a gigantic buffer of garbage costs O(max_head_bytes).
    let window = &buf[..buf.len().min(limits.max_head_bytes)];
    let Some(head_end) = find_crlfcrlf(window) else {
        if buf.len() >= limits.max_head_bytes {
            return ParseOutcome::Error(HttpError::TooLarge("request head over limit"));
        }
        // An early NUL or bare LF-LF is never valid HTTP; fail fast instead
        // of waiting out the deadline.
        if window.contains(&0) {
            return ParseOutcome::Error(HttpError::Malformed("NUL byte in request head"));
        }
        return ParseOutcome::Partial;
    };
    let head = &window[..head_end];
    let consumed = head_end + 4;

    let Ok(text) = std::str::from_utf8(head) else {
        return ParseOutcome::Error(HttpError::Malformed("request head is not UTF-8"));
    };
    let mut lines = text.split("\r\n");
    let Some(request_line) = lines.next() else {
        return ParseOutcome::Error(HttpError::Malformed("empty request head"));
    };

    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Error(HttpError::Malformed(
            "request line is not METHOD SP TARGET SP VERSION",
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ParseOutcome::Error(HttpError::Malformed("bad method token"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return ParseOutcome::Error(HttpError::VersionNotSupported),
        _ => return ParseOutcome::Error(HttpError::Malformed("bad HTTP version token")),
    };
    if target.len() > limits.max_target_bytes {
        return ParseOutcome::Error(HttpError::TooLarge("request target over limit"));
    }
    if !target.starts_with('/') {
        return ParseOutcome::Error(HttpError::Malformed("target must be origin-form"));
    }

    // Headers: we only interpret Connection, Content-Length, and
    // Transfer-Encoding; everything else just has to be well-formed.
    let mut keep_alive = http11;
    let mut n_headers = 0usize;
    for line in lines {
        if line.is_empty() {
            return ParseOutcome::Error(HttpError::Malformed("empty header line"));
        }
        n_headers += 1;
        if n_headers > limits.max_headers {
            return ParseOutcome::Error(HttpError::TooLarge("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error(HttpError::Malformed("header line without colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return ParseOutcome::Error(HttpError::Malformed("bad header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<u64>() {
                Ok(0) => {}
                Ok(_) => return ParseOutcome::Error(HttpError::BodyNotAllowed),
                Err(_) => return ParseOutcome::Error(HttpError::Malformed("bad Content-Length")),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return ParseOutcome::Error(HttpError::BodyNotAllowed);
        }
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let Some(path) = percent_decode(raw_path) else {
        return ParseOutcome::Error(HttpError::Malformed("bad percent-encoding in path"));
    };
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let (Some(k), Some(v)) = (percent_decode(k), percent_decode(v)) else {
                return ParseOutcome::Error(HttpError::Malformed("bad percent-encoding in query"));
            };
            query.push((k, v));
        }
    }

    if method != "GET" {
        // Parsed fine; refused by policy. Reported after syntax checks so
        // garbage is 400, a well-formed POST is 405.
        return ParseOutcome::Error(HttpError::MethodNotAllowed);
    }

    ParseOutcome::Complete {
        request: Request {
            method: method.to_string(),
            path,
            query,
            keep_alive,
        },
        consumed,
    }
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+` (as space, query convention). Returns
/// `None` on truncated or non-hex escapes or non-UTF-8 results.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') && !s.contains('+') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16))?;
                let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16))?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Renders a full JSON response (status line, headers, body) into one
/// buffer, ready for a single `write_all`.
pub fn render_response(status: u16, body: &[u8], epoch: Option<u64>, keep_alive: bool) -> Vec<u8> {
    render_response_typed(status, body, epoch, keep_alive, "application/json")
}

/// Content type of the Prometheus text exposition format.
pub const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Renders a full response with an explicit `Content-Type` (the
/// `/metrics` exporter serves [`PROMETHEUS_TEXT`], everything else JSON).
pub fn render_response_typed(
    status: u16,
    body: &[u8],
    epoch: Option<u64>,
    keep_alive: bool,
    content_type: &str,
) -> Vec<u8> {
    render_response_retry(status, body, epoch, keep_alive, content_type, None)
}

/// [`render_response_typed`] plus an optional `Retry-After` header.
///
/// Every shed or deadline-exceeded `503` carries one so a well-behaved
/// client backs off instead of re-joining the storm immediately.
pub fn render_response_retry(
    status: u16,
    body: &[u8],
    epoch: Option<u64>,
    keep_alive: bool,
    content_type: &str,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    };
    let mut out = Vec::with_capacity(body.len() + 160);
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    if let Some(e) = epoch {
        out.extend_from_slice(format!("X-Webdep-Epoch: {e}\r\n").as_bytes());
    }
    if let Some(secs) = retry_after_secs {
        out.extend_from_slice(format!("Retry-After: {secs}\r\n").as_bytes());
    }
    out.extend_from_slice(if keep_alive {
        b"Connection: keep-alive\r\n"
    } else {
        b"Connection: close\r\n"
    });
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// The JSON body used for every error response.
pub fn error_body(status: u16, reason: &str) -> Vec<u8> {
    let v = serde_json::Value::Object(vec![
        ("error".into(), serde_json::Value::U64(status as u64)),
        ("reason".into(), serde_json::Value::String(reason.into())),
    ]);
    v.to_string().into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(raw: &[u8]) -> ParseOutcome {
        parse_head(raw, &Limits::default())
    }

    #[test]
    fn parses_minimal_get() {
        let ParseOutcome::Complete { request, consumed } =
            parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        else {
            panic!("expected complete")
        };
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.keep_alive);
        assert_eq!(consumed, 34);
    }

    #[test]
    fn parses_query_and_decodes() {
        let ParseOutcome::Complete { request, .. } =
            parse(b"GET /v1/score/US?layer=hosting&n=5&x=a%20b HTTP/1.1\r\n\r\n")
        else {
            panic!("expected complete")
        };
        assert_eq!(request.path, "/v1/score/US");
        assert_eq!(request.param("layer"), Some("hosting"));
        assert_eq!(request.param("n"), Some("5"));
        assert_eq!(request.param("x"), Some("a b"));
    }

    #[test]
    fn http10_defaults_to_close() {
        let ParseOutcome::Complete { request, .. } = parse(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!("expected complete")
        };
        assert!(!request.keep_alive);
    }

    #[test]
    fn connection_close_honored() {
        let ParseOutcome::Complete { request, .. } =
            parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!("expected complete")
        };
        assert!(!request.keep_alive);
    }

    #[test]
    fn partial_until_terminator() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHost: x"), ParseOutcome::Partial);
        assert_eq!(parse(b""), ParseOutcome::Partial);
    }

    #[test]
    fn rejects_post_with_405_and_body_with_413() {
        assert_eq!(
            parse(b"POST /v1/x HTTP/1.1\r\n\r\n"),
            ParseOutcome::Error(HttpError::MethodNotAllowed)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\n"),
            ParseOutcome::Error(HttpError::BodyNotAllowed)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseOutcome::Error(HttpError::BodyNotAllowed)
        );
    }

    #[test]
    fn rejects_oversized_head_mid_stream() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let raw = [b'A'; 80];
        assert_eq!(
            parse_head(&raw, &limits),
            ParseOutcome::Error(HttpError::TooLarge("request head over limit"))
        );
    }

    #[test]
    fn rejects_oversized_target() {
        let limits = Limits {
            max_target_bytes: 16,
            ..Limits::default()
        };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert_eq!(
            parse_head(raw.as_bytes(), &limits),
            ParseOutcome::Error(HttpError::TooLarge("request target over limit"))
        );
    }

    #[test]
    fn rejects_garbage_with_400() {
        for raw in [
            &b"\x00\x01\x02\x03"[..],
            b"lowercase / HTTP/1.1\r\n\r\n",
            b"GET /a b HTTP/1.1\r\n\r\n",
            b"GET / HTTP/9.9\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
            b"GET /%zz HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
        ] {
            match parse(raw) {
                ParseOutcome::Error(e) => {
                    assert!(e.status() == 400 || e.status() == 505, "{raw:?} -> {e:?}")
                }
                other => panic!("{raw:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn retry_after_header_renders_only_when_asked() {
        let with = render_response_retry(503, b"{}", Some(4), false, "application/json", Some(2));
        let text = String::from_utf8(with).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("X-Webdep-Epoch: 4\r\n"));
        let without = render_response(503, b"{}", Some(4), false);
        assert!(!String::from_utf8(without).unwrap().contains("Retry-After"));
    }

    #[test]
    fn pipelined_heads_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete { request, consumed } = parse(raw) else {
            panic!("expected complete")
        };
        assert_eq!(request.path, "/a");
        let ParseOutcome::Complete { request, .. } = parse(&raw[consumed..]) else {
            panic!("expected complete")
        };
        assert_eq!(request.path, "/b");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser is total over arbitrary byte garbage: it never
        /// panics, and a Complete outcome never claims more bytes than the
        /// buffer holds.
        #[test]
        fn parser_is_total_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..512)) {
            let limits = Limits { max_head_bytes: 256, ..Limits::default() };
            match parse_head(&raw, &limits) {
                ParseOutcome::Complete { consumed, .. } => prop_assert!(consumed <= raw.len()),
                ParseOutcome::Partial => prop_assert!(raw.len() < limits.max_head_bytes),
                ParseOutcome::Error(_) => {}
            }
        }

        /// Structured-ish garbage: random method-ish tokens and targets
        /// with an HTTP tail. Must never panic; outcomes must be one of
        /// the three variants with sane invariants.
        #[test]
        fn parser_is_total_on_structured_garbage(
            method in prop::string::string_regex("[A-Za-z]{0,8}").unwrap(),
            target in prop::string::string_regex("[ -~]{0,64}").unwrap(),
            tail in prop::string::string_regex("[ -~]{0,32}").unwrap(),
        ) {
            let raw = format!("{method} {target} HTTP/1.1\r\n{tail}\r\n\r\n");
            match parse_head(raw.as_bytes(), &Limits::default()) {
                ParseOutcome::Complete { request, consumed } => {
                    prop_assert!(consumed <= raw.len());
                    prop_assert_eq!(request.method, method.to_uppercase());
                }
                ParseOutcome::Partial | ParseOutcome::Error(_) => {}
            }
        }
    }
}
