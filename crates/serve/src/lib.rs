//! `webdep serve`: a resident, epoch-versioned HTTP query service over the
//! [`DependenceCube`](webdep_analysis::DependenceCube).
//!
//! The one-shot report answers every question by re-running the analysis;
//! this crate keeps the cube hot behind a long-lived HTTP/1.1 endpoint so
//! centralization and dependence queries cost an in-memory lookup, and a
//! re-measurement landing mid-traffic swaps in atomically without blocking
//! a single reader.
//!
//! Layering:
//! - [`http`] — a total, property-tested request-head parser with explicit
//!   size and time limits, plus the response writer.
//! - [`snapshot`] — [`snapshot::CubeSnapshot`] (world + cube + taxonomy
//!   behind one `Arc`, built from a resident dataset or streamed from a
//!   chunked store) and [`snapshot::SnapshotCell`], the RwLock-free
//!   epoch-versioned publication point.
//! - [`cache`] — the bounded `(epoch, canonical query) → body` response
//!   cache with hit/miss/eviction counters.
//! - [`metrics`] — per-route request counters and latency histograms,
//!   snapshot-epoch gauges, and the `GET /metrics` Prometheus-text body
//!   (built on [`webdep_core::metrics`], no prometheus crate).
//! - [`routes`] — the route table; every responder calls the same
//!   `webdep-analysis` entry points as the one-shot report.
//! - [`server`] — listener, worker pool, connection loop, graceful
//!   shutdown, and the CLI's SIGINT helper.
//!
//! Everything is `std` + the workspace's offline shims: no tokio, no
//! hyper, no libc.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod routes;
pub mod server;
pub mod snapshot;

pub use cache::{CacheCounters, CacheStats, ResponseCache};
pub use http::{Limits, Request};
pub use metrics::ServeMetrics;
pub use server::{start, OverloadConfig, ServeConfig, ServerHandle};
pub use snapshot::{CubeSnapshot, SnapshotCell};
