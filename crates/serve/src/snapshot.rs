//! Epoch-versioned immutable snapshots and their RwLock-free publication
//! cell.
//!
//! A [`CubeSnapshot`] bundles everything a request needs to answer a query
//! — the world, a (possibly hollow) dataset, the [`DependenceCube`], and
//! the failure taxonomy — behind a single `Arc`. Snapshots are immutable
//! after construction; re-measurement builds a *new* snapshot off-thread
//! and publishes it through [`SnapshotCell`], so readers never block on a
//! writer and a publish landing mid-traffic can never tear a response.
//!
//! [`SnapshotCell`] is the ArcSwap idiom over std primitives: the current
//! `Arc<CubeSnapshot>` lives under a `Mutex` that is only locked to clone
//! the `Arc` (a few ns) or to swap it, while a separate `AtomicU64` epoch
//! lets workers validate a thread-local cached `Arc` with one atomic load
//! on the hot path — zero lock acquisitions for cache-warm workers until
//! an epoch actually changes.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use webdep_analysis::{AnalysisCtx, CubeBuilder, DependenceCube, Trajectory};
use webdep_pipeline::{
    ChunkStore, FailureCause, FailureTaxonomy, MeasuredDataset, SiteObservation,
};
use webdep_webgen::{Layer, World, WorldDelta};

/// Taxonomy layer names, in the chunk `failure_causes` order.
const TAXONOMY_LAYERS: [&str; 3] = ["hosting", "dns", "ca"];

/// The carry-forward state that lets epoch N+1 build from epoch N without
/// re-reading clean chunks: the cube builder's per-site owner labels (16
/// bytes per site) plus each site's failure causes at the three measured
/// layers (for incremental taxonomy adjustment). Both are pure per-site
/// records, so cloning + patching dirty sites reproduces a from-scratch
/// fold exactly.
struct DeltaState {
    builder: CubeBuilder,
    causes: Vec<[Option<FailureCause>; 3]>,
}

/// One immutable epoch of serving state.
pub struct CubeSnapshot {
    /// Monotonic version; every response body and `X-Webdep-Epoch` header
    /// carries it.
    pub epoch: u64,
    /// The generating world (entity metadata, toplists).
    pub world: Arc<World>,
    /// The dataset — hollow (no resident observations) when loaded from a
    /// chunked store.
    pub dataset: MeasuredDataset,
    /// The columnar cube every query reads.
    pub cube: DependenceCube,
    /// Failure taxonomy folded at snapshot build time (the hollow dataset
    /// cannot derive it on demand).
    pub taxonomy: FailureTaxonomy,
    /// Whether raw observations are resident in `dataset`.
    pub resident: bool,
    /// Per-epoch centralization trajectory up to and including this epoch;
    /// [`CubeSnapshot::from_delta`] extends the previous snapshot's, so
    /// `/v1/trajectory` is epoch-consistent with every other route.
    pub trajectory: Trajectory,
    /// Carry-forward for the next delta build.
    delta_state: DeltaState,
}

fn tld_ids(world: &World) -> HashMap<String, u32> {
    world
        .universe
        .tlds
        .iter()
        .map(|t| (t.label.clone(), t.id))
        .collect()
}

/// A hollow dataset (toplists only) mirroring `ChunkStore::load_dataset`'s
/// shape minus the observation vector.
fn hollow_dataset(world: &World, label: &str) -> MeasuredDataset {
    MeasuredDataset {
        observations: Vec::new(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: label.to_string(),
    }
}

impl CubeSnapshot {
    /// Builds a snapshot from a resident dataset (a fresh measurement or a
    /// journal resume).
    pub fn from_dataset(epoch: u64, world: Arc<World>, dataset: MeasuredDataset) -> Self {
        let ids = tld_ids(&world);
        let mut builder = CubeBuilder::new(dataset.observations.len());
        let mut causes = Vec::with_capacity(dataset.observations.len());
        for (i, obs) in dataset.observations.iter().enumerate() {
            builder.fold_observation(i, obs, &ids);
            causes.push([
                obs.hosting_error.as_ref().map(|e| e.cause),
                obs.dns_error.as_ref().map(|e| e.cause),
                obs.ca_error.as_ref().map(|e| e.cause),
            ]);
        }
        let cube = builder.finish(&world, &dataset.toplists, &dataset.global_top);
        let taxonomy = dataset.failure_taxonomy();
        let mut trajectory = Trajectory::new();
        trajectory.push(&AnalysisCtx::with_cube_ref(&world, &dataset, &cube));
        CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: true,
            trajectory,
            delta_state: DeltaState { builder, causes },
        }
    }

    /// Builds a **hollow** snapshot from a borrowed observation slice: the
    /// cube, taxonomy, and delta carry-forward fold exactly as in
    /// [`CubeSnapshot::from_dataset`], but the observations stay with the
    /// caller and the snapshot's dataset is hollow. For callers that
    /// already hold a resident dataset and want to publish several epochs
    /// of it without paying a resident copy per snapshot.
    pub fn from_observations(
        epoch: u64,
        world: Arc<World>,
        label: &str,
        observations: &[SiteObservation],
    ) -> Self {
        let ids = tld_ids(&world);
        let mut builder = CubeBuilder::new(observations.len());
        let mut causes = Vec::with_capacity(observations.len());
        let mut taxonomy = FailureTaxonomy {
            total: observations.len() as u64,
            ..FailureTaxonomy::default()
        };
        for (i, obs) in observations.iter().enumerate() {
            builder.fold_observation(i, obs, &ids);
            let site_causes = [
                obs.hosting_error.as_ref().map(|e| e.cause),
                obs.dns_error.as_ref().map(|e| e.cause),
                obs.ca_error.as_ref().map(|e| e.cause),
            ];
            causes.push(site_causes);
            let mut any = false;
            for (layer, cause) in TAXONOMY_LAYERS.into_iter().zip(site_causes) {
                if let Some(cause) = cause {
                    taxonomy.record(layer, cause);
                    any = true;
                }
            }
            if !any {
                taxonomy.clean += 1;
            }
        }
        let cube = builder.finish(&world, &world.toplists, &world.global_top);
        let dataset = hollow_dataset(&world, label);
        let mut trajectory = Trajectory::new();
        trajectory.push(&AnalysisCtx::with_cube_ref(&world, &dataset, &cube));
        CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: false,
            trajectory,
            delta_state: DeltaState { builder, causes },
        }
    }

    /// Builds a snapshot by streaming a chunked store: every chunk is
    /// folded into a [`CubeBuilder`] and the taxonomy via the error
    /// columns, and the dataset stays hollow — peak memory is one decoded
    /// chunk plus the cube, never the observation vector.
    ///
    /// The store must describe the same world (`label` and site count
    /// guarded, mirroring `ChunkStore::load_dataset`).
    pub fn from_store(epoch: u64, world: Arc<World>, dir: &Path) -> io::Result<Self> {
        Self::from_store_inner(epoch, world, dir, None)
    }

    /// [`CubeSnapshot::from_store`], but extending a previous snapshot's
    /// trajectory instead of starting a fresh one — the full-rebuild
    /// fallback for when a delta build fails validation mid-evolution:
    /// the cube and taxonomy are folded from scratch off the store, yet
    /// `/v1/trajectory` keeps its history and the result still satisfies
    /// [`CubeSnapshot::validate`] against the snapshot it succeeds.
    pub fn from_store_extending(
        epoch: u64,
        world: Arc<World>,
        dir: &Path,
        prev: &CubeSnapshot,
    ) -> io::Result<Self> {
        Self::from_store_inner(epoch, world, dir, Some(&prev.trajectory))
    }

    fn from_store_inner(
        epoch: u64,
        world: Arc<World>,
        dir: &Path,
        prev_trajectory: Option<&Trajectory>,
    ) -> io::Result<Self> {
        let store = ChunkStore::open(dir)?;
        if store.label != world.label || store.sites != world.sites.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store ({} sites, label {:?}) does not match world ({} sites, label {:?})",
                    store.sites,
                    store.label,
                    world.sites.len(),
                    world.label
                ),
            ));
        }
        let ids = tld_ids(&world);
        let mut builder = CubeBuilder::new(store.sites);
        let mut site_causes = vec![[None; 3]; store.sites];
        let mut taxonomy = FailureTaxonomy {
            total: store.sites as u64,
            ..FailureTaxonomy::default()
        };
        for c in 0..store.num_chunks() {
            let chunk = store.read_chunk(c)?;
            builder.fold_chunk(&chunk, &ids);
            for r in 0..chunk.rows {
                let causes = chunk.failure_causes(r);
                site_causes[chunk.lo + r] = causes;
                let mut any = false;
                for (layer, cause) in TAXONOMY_LAYERS.into_iter().zip(causes) {
                    if let Some(cause) = cause {
                        taxonomy.record(layer, cause);
                        any = true;
                    }
                }
                if !any {
                    taxonomy.clean += 1;
                }
            }
        }
        let cube = builder.finish(&world, &world.toplists, &world.global_top);
        let dataset = hollow_dataset(&world, &store.label);
        let mut trajectory = prev_trajectory.cloned().unwrap_or_default();
        trajectory.push(&AnalysisCtx::with_cube_ref(&world, &dataset, &cube));
        Ok(CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: false,
            trajectory,
            delta_state: DeltaState {
                builder,
                causes: site_causes,
            },
        })
    }

    /// Builds the next epoch's snapshot from the previous snapshot plus a
    /// [`WorldDelta`], reading **only the dirty chunks** of the new store
    /// at `dir` (the one `measure_delta` materialized). Clean chunks are
    /// never opened: the previous snapshot's carried cube-builder labels
    /// and per-site failure causes already hold their contribution, so the
    /// new cube is the old builder cloned, grown to the evolved site
    /// table, and refolded over dirty chunks, and the taxonomy is the old
    /// taxonomy with each dirty site's causes retracted and re-recorded.
    /// The result is indistinguishable from [`CubeSnapshot::from_store`]
    /// over the full store (`tests/service.rs` asserts equality).
    ///
    /// The trajectory extends the previous snapshot's with this epoch's
    /// point, so a delta-published server serves its full history.
    pub fn from_delta(
        epoch: u64,
        world: Arc<World>,
        prev: &CubeSnapshot,
        delta: &WorldDelta,
        dir: &Path,
    ) -> io::Result<Self> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if prev.world.label != delta.from_label || prev.world.sites.len() != delta.from_sites {
            return Err(invalid(format!(
                "previous snapshot '{}' ({} sites) is not the delta's source '{}' ({} sites)",
                prev.world.label,
                prev.world.sites.len(),
                delta.from_label,
                delta.from_sites
            )));
        }
        if world.label != delta.to_label || world.sites.len() != delta.to_sites {
            return Err(invalid(format!(
                "world '{}' ({} sites) is not the delta's target '{}' ({} sites)",
                world.label,
                world.sites.len(),
                delta.to_label,
                delta.to_sites
            )));
        }
        let store = ChunkStore::open(dir)?;
        if store.label != world.label || store.sites != world.sites.len() {
            return Err(invalid(format!(
                "store ({} sites, label {:?}) does not match world ({} sites, label {:?})",
                store.sites,
                store.label,
                world.sites.len(),
                world.label
            )));
        }

        let ids = tld_ids(&world);
        let mut builder = prev.delta_state.builder.clone();
        builder.grow(store.sites);
        let mut causes = prev.delta_state.causes.clone();
        causes.resize(store.sites, [None; 3]);
        let mut taxonomy = prev.taxonomy.clone();
        taxonomy.total = store.sites as u64;
        let dirty = delta.dirty();

        let k = store.chunk_sites;
        for c in 0..store.num_chunks() {
            let lo = c * k;
            let rows = store.chunk_rows(c);
            if !dirty[lo..lo + rows].iter().any(|&d| d) {
                continue;
            }
            let chunk = store.read_chunk(c)?;
            // Refolds the whole chunk; clean rows overwrite their own
            // labels (folds are idempotent), dirty rows take new ones.
            builder.fold_chunk(&chunk, &ids);
            for r in 0..rows {
                let i = lo + r;
                if !dirty[i] {
                    continue;
                }
                if i < delta.from_sites {
                    // Retract the superseded observation's contribution.
                    let mut any_old = false;
                    for (layer, cause) in TAXONOMY_LAYERS.into_iter().zip(causes[i]) {
                        if let Some(cause) = cause {
                            taxonomy.unrecord(layer, cause);
                            any_old = true;
                        }
                    }
                    if !any_old {
                        taxonomy.clean -= 1;
                    }
                }
                let fresh = chunk.failure_causes(r);
                let mut any_new = false;
                for (layer, cause) in TAXONOMY_LAYERS.into_iter().zip(fresh) {
                    if let Some(cause) = cause {
                        taxonomy.record(layer, cause);
                        any_new = true;
                    }
                }
                if !any_new {
                    taxonomy.clean += 1;
                }
                causes[i] = fresh;
            }
        }

        let cube = builder.finish(&world, &world.toplists, &world.global_top);
        let dataset = hollow_dataset(&world, &store.label);
        let mut trajectory = prev.trajectory.clone();
        trajectory.push(&AnalysisCtx::with_cube_ref(&world, &dataset, &cube));
        Ok(CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: false,
            trajectory,
            delta_state: DeltaState { builder, causes },
        })
    }

    /// A throwaway analysis context borrowing this snapshot's cube — what
    /// every request handler builds.
    pub fn ctx(&self) -> AnalysisCtx<'_> {
        AnalysisCtx::with_cube_ref(&self.world, &self.dataset, &self.cube)
    }

    /// Pre-publish invariant checks: every constructor upholds these by
    /// construction, so a candidate failing any of them was corrupted
    /// between build and publish (bit-flipped store, poisoned delta, a
    /// bug in an incremental path) and must not reach readers. Returns
    /// the first violated invariant as a human-readable reason.
    ///
    /// Checked against the snapshot alone:
    /// - the carried per-site state, the taxonomy total, and the world's
    ///   site table all agree on the site count;
    /// - the taxonomy equals an exact refold of the carried per-site
    ///   failure causes (incremental delta bookkeeping reproduces a
    ///   from-scratch tally or the candidate is rejected);
    /// - every layer's cube column totals reconcile with a walk of the
    ///   toplists through the carried owner labels (global-pool sites
    ///   legitimately appear in many countries' toplists, so totals are
    ///   compared with multiplicity, not as a site partition);
    /// - the trajectory is position-consistent (`points[i].epoch == i`)
    ///   and its last point belongs to this snapshot's world.
    ///
    /// Checked against `prev` (the snapshot currently serving):
    /// - the epoch strictly advances;
    /// - the trajectory extends the previous one by exactly one point.
    ///
    /// Checked against `delta` (when this candidate came from one):
    /// - the delta's source matches `prev` and its target matches this
    ///   snapshot's world, by label and site count.
    pub fn validate(
        &self,
        prev: Option<&CubeSnapshot>,
        delta: Option<&WorldDelta>,
    ) -> Result<(), String> {
        let sites = self.world.sites.len();
        if self.delta_state.causes.len() != sites {
            return Err(format!(
                "carried failure causes cover {} sites, world has {}",
                self.delta_state.causes.len(),
                sites
            ));
        }
        if self.delta_state.builder.sites() != sites {
            return Err(format!(
                "carried cube builder covers {} sites, world has {}",
                self.delta_state.builder.sites(),
                sites
            ));
        }
        if self.taxonomy.total != sites as u64 {
            return Err(format!(
                "taxonomy total {} does not reconcile with {} sites",
                self.taxonomy.total, sites
            ));
        }

        // Refold the taxonomy from the carried per-site causes and demand
        // exact equality — `unrecord` drops zeroed cells precisely so an
        // incremental tally stays bit-identical to a fresh one.
        let mut refold = FailureTaxonomy {
            total: sites as u64,
            ..FailureTaxonomy::default()
        };
        for causes in &self.delta_state.causes {
            let mut any = false;
            for (layer, cause) in TAXONOMY_LAYERS.into_iter().zip(*causes) {
                if let Some(cause) = cause {
                    refold.record(layer, cause);
                    any = true;
                }
            }
            if !any {
                refold.clean += 1;
            }
        }
        if refold != self.taxonomy {
            return Err(
                "taxonomy does not equal a refold of the carried per-site causes".to_string(),
            );
        }

        // Cube column totals vs a toplist walk through the carried owner
        // labels: `CubeBuilder::finish` counts exactly the observed
        // toplist entries, so any divergence means the cube and the
        // carried state disagree about who owns what.
        for layer in Layer::ALL {
            let lc = self.cube.layer(layer);
            for (ci, toplist) in self.dataset.toplists.iter().enumerate() {
                let expected = toplist
                    .iter()
                    .filter(|&&site| {
                        self.delta_state
                            .builder
                            .owner(layer, site as usize)
                            .is_some()
                    })
                    .count() as u64;
                if lc.total(ci) != expected {
                    return Err(format!(
                        "cube {layer:?} total for country {ci} is {}, toplist walk says {expected}",
                        lc.total(ci)
                    ));
                }
            }
        }

        let Some(last) = self.trajectory.points.last() else {
            return Err("trajectory is empty".to_string());
        };
        if last.label != self.world.label {
            return Err(format!(
                "trajectory ends at label {:?}, world is {:?}",
                last.label, self.world.label
            ));
        }
        for (i, p) in self.trajectory.points.iter().enumerate() {
            if p.epoch != i {
                return Err(format!(
                    "trajectory point {i} carries epoch {} (not monotone)",
                    p.epoch
                ));
            }
        }

        if let Some(prev) = prev {
            if self.epoch <= prev.epoch {
                return Err(format!(
                    "epoch must advance ({} -> {})",
                    prev.epoch, self.epoch
                ));
            }
            if self.trajectory.points.len() != prev.trajectory.points.len() + 1 {
                return Err(format!(
                    "trajectory has {} points, must extend the previous {} by one",
                    self.trajectory.points.len(),
                    prev.trajectory.points.len()
                ));
            }
        }

        if let Some(delta) = delta {
            if let Some(prev) = prev {
                if prev.world.label != delta.from_label
                    || prev.world.sites.len() != delta.from_sites
                {
                    return Err(format!(
                        "delta source '{}' ({} sites) is not the serving snapshot '{}' ({} sites)",
                        delta.from_label,
                        delta.from_sites,
                        prev.world.label,
                        prev.world.sites.len()
                    ));
                }
            }
            if self.world.label != delta.to_label || sites != delta.to_sites {
                return Err(format!(
                    "delta target '{}' ({} sites) is not this snapshot '{}' ({} sites)",
                    delta.to_label, delta.to_sites, self.world.label, sites
                ));
            }
        }

        Ok(())
    }
}

/// RwLock-free publication point for the current snapshot.
pub struct SnapshotCell {
    current: Mutex<Arc<CubeSnapshot>>,
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Creates the cell with its first snapshot.
    pub fn new(initial: Arc<CubeSnapshot>) -> Self {
        let epoch = AtomicU64::new(initial.epoch);
        SnapshotCell {
            current: Mutex::new(initial),
            epoch,
        }
    }

    /// The currently-published epoch (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot `Arc` (brief mutex hold, no blocking on
    /// snapshot construction).
    pub fn load(&self) -> Arc<CubeSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot cell poisoned"))
    }

    /// The worker fast path: revalidates a per-thread cached `Arc` with a
    /// single atomic load, touching the mutex only when the epoch moved.
    pub fn load_cached(&self, cached: &mut Option<Arc<CubeSnapshot>>) -> Arc<CubeSnapshot> {
        let epoch = self.epoch();
        if let Some(snap) = cached {
            if snap.epoch == epoch {
                return Arc::clone(snap);
            }
        }
        let fresh = self.load();
        *cached = Some(Arc::clone(&fresh));
        fresh
    }

    /// Publishes a new snapshot. Its epoch must be strictly greater than
    /// the current one; after this returns, every subsequently-started
    /// request observes the new epoch. Returns the published epoch.
    pub fn publish(&self, next: Arc<CubeSnapshot>) -> u64 {
        let mut guard = self.current.lock().expect("snapshot cell poisoned");
        let prev = guard.epoch;
        assert!(
            next.epoch > prev,
            "publish must advance the epoch ({} -> {})",
            prev,
            next.epoch
        );
        let epoch = next.epoch;
        *guard = next;
        // Publish the epoch while still holding the lock so a reader that
        // sees the new epoch can never load the old snapshot.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}
