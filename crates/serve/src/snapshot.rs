//! Epoch-versioned immutable snapshots and their RwLock-free publication
//! cell.
//!
//! A [`CubeSnapshot`] bundles everything a request needs to answer a query
//! — the world, a (possibly hollow) dataset, the [`DependenceCube`], and
//! the failure taxonomy — behind a single `Arc`. Snapshots are immutable
//! after construction; re-measurement builds a *new* snapshot off-thread
//! and publishes it through [`SnapshotCell`], so readers never block on a
//! writer and a publish landing mid-traffic can never tear a response.
//!
//! [`SnapshotCell`] is the ArcSwap idiom over std primitives: the current
//! `Arc<CubeSnapshot>` lives under a `Mutex` that is only locked to clone
//! the `Arc` (a few ns) or to swap it, while a separate `AtomicU64` epoch
//! lets workers validate a thread-local cached `Arc` with one atomic load
//! on the hot path — zero lock acquisitions for cache-warm workers until
//! an epoch actually changes.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use webdep_analysis::{AnalysisCtx, CubeBuilder, DependenceCube};
use webdep_pipeline::{ChunkStore, FailureTaxonomy, MeasuredDataset};
use webdep_webgen::World;

/// One immutable epoch of serving state.
pub struct CubeSnapshot {
    /// Monotonic version; every response body and `X-Webdep-Epoch` header
    /// carries it.
    pub epoch: u64,
    /// The generating world (entity metadata, toplists).
    pub world: Arc<World>,
    /// The dataset — hollow (no resident observations) when loaded from a
    /// chunked store.
    pub dataset: MeasuredDataset,
    /// The columnar cube every query reads.
    pub cube: DependenceCube,
    /// Failure taxonomy folded at snapshot build time (the hollow dataset
    /// cannot derive it on demand).
    pub taxonomy: FailureTaxonomy,
    /// Whether raw observations are resident in `dataset`.
    pub resident: bool,
}

fn tld_ids(world: &World) -> HashMap<String, u32> {
    world
        .universe
        .tlds
        .iter()
        .map(|t| (t.label.clone(), t.id))
        .collect()
}

impl CubeSnapshot {
    /// Builds a snapshot from a resident dataset (a fresh measurement or a
    /// journal resume).
    pub fn from_dataset(epoch: u64, world: Arc<World>, dataset: MeasuredDataset) -> Self {
        let ids = tld_ids(&world);
        let cube = DependenceCube::build(&world, &dataset, &ids);
        let taxonomy = dataset.failure_taxonomy();
        CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: true,
        }
    }

    /// Builds a snapshot by streaming a chunked store: every chunk is
    /// folded into a [`CubeBuilder`] and the taxonomy via the error
    /// columns, and the dataset stays hollow — peak memory is one decoded
    /// chunk plus the cube, never the observation vector.
    ///
    /// The store must describe the same world (`label` and site count
    /// guarded, mirroring `ChunkStore::load_dataset`).
    pub fn from_store(epoch: u64, world: Arc<World>, dir: &Path) -> io::Result<Self> {
        let store = ChunkStore::open(dir)?;
        if store.label != world.label || store.sites != world.sites.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store ({} sites, label {:?}) does not match world ({} sites, label {:?})",
                    store.sites,
                    store.label,
                    world.sites.len(),
                    world.label
                ),
            ));
        }
        let ids = tld_ids(&world);
        let mut builder = CubeBuilder::new(store.sites);
        let mut taxonomy = FailureTaxonomy {
            total: store.sites as u64,
            ..FailureTaxonomy::default()
        };
        for c in 0..store.num_chunks() {
            let chunk = store.read_chunk(c)?;
            builder.fold_chunk(&chunk, &ids);
            for r in 0..chunk.rows {
                let causes = chunk.failure_causes(r);
                let mut any = false;
                for (layer, cause) in ["hosting", "dns", "ca"].into_iter().zip(causes) {
                    if let Some(cause) = cause {
                        taxonomy.record(layer, cause);
                        any = true;
                    }
                }
                if !any {
                    taxonomy.clean += 1;
                }
            }
        }
        let cube = builder.finish(&world, &world.toplists, &world.global_top);
        let dataset = MeasuredDataset {
            observations: Vec::new(),
            toplists: world.toplists.clone(),
            global_top: world.global_top.clone(),
            label: store.label.clone(),
        };
        Ok(CubeSnapshot {
            epoch,
            world,
            dataset,
            cube,
            taxonomy,
            resident: false,
        })
    }

    /// A throwaway analysis context borrowing this snapshot's cube — what
    /// every request handler builds.
    pub fn ctx(&self) -> AnalysisCtx<'_> {
        AnalysisCtx::with_cube_ref(&self.world, &self.dataset, &self.cube)
    }
}

/// RwLock-free publication point for the current snapshot.
pub struct SnapshotCell {
    current: Mutex<Arc<CubeSnapshot>>,
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Creates the cell with its first snapshot.
    pub fn new(initial: Arc<CubeSnapshot>) -> Self {
        let epoch = AtomicU64::new(initial.epoch);
        SnapshotCell {
            current: Mutex::new(initial),
            epoch,
        }
    }

    /// The currently-published epoch (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot `Arc` (brief mutex hold, no blocking on
    /// snapshot construction).
    pub fn load(&self) -> Arc<CubeSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot cell poisoned"))
    }

    /// The worker fast path: revalidates a per-thread cached `Arc` with a
    /// single atomic load, touching the mutex only when the epoch moved.
    pub fn load_cached(&self, cached: &mut Option<Arc<CubeSnapshot>>) -> Arc<CubeSnapshot> {
        let epoch = self.epoch();
        if let Some(snap) = cached {
            if snap.epoch == epoch {
                return Arc::clone(snap);
            }
        }
        let fresh = self.load();
        *cached = Some(Arc::clone(&fresh));
        fresh
    }

    /// Publishes a new snapshot. Its epoch must be strictly greater than
    /// the current one; after this returns, every subsequently-started
    /// request observes the new epoch. Returns the published epoch.
    pub fn publish(&self, next: Arc<CubeSnapshot>) -> u64 {
        let mut guard = self.current.lock().expect("snapshot cell poisoned");
        let prev = guard.epoch;
        assert!(
            next.epoch > prev,
            "publish must advance the epoch ({} -> {})",
            prev,
            next.epoch
        );
        let epoch = next.epoch;
        *guard = next;
        // Publish the epoch while still holding the lock so a reader that
        // sees the new epoch can never load the old snapshot.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}
