//! Per-server telemetry: request counters, per-route latency histograms,
//! snapshot-epoch gauges, and the `GET /metrics` Prometheus-text body.
//!
//! Each [`ServeMetrics`] owns a private
//! [`Registry`](webdep_core::metrics::Registry), so several servers in
//! one test process never mix series; the exporter concatenates the
//! server's registry with the process-wide one (where the measurement
//! pipeline and the run journal register), giving one scrape target for
//! the whole process.

use crate::cache::{CacheCounters, ResponseCache};
use std::time::Duration;
use webdep_core::metrics::{global, Counter, Gauge, Histogram, Registry, LATENCY_SECONDS};

/// Route labels with dedicated request counters and latency histograms.
/// Unmatched paths (404s, bad queries on unknown routes) fall into
/// `other` so hostile traffic cannot mint unbounded series.
pub const ROUTE_LABELS: &[&str] = &[
    "healthz",
    "metrics",
    "meta",
    "countries",
    "score",
    "ci",
    "shares",
    "insularity",
    "badge",
    "top",
    "coverage",
    "taxonomy",
    "trajectory",
    "other",
];

struct RouteSeries {
    label: &'static str,
    requests: Counter,
    latency: Histogram,
}

/// All counters, gauges, and histograms one server exports.
pub struct ServeMetrics {
    registry: Registry,
    /// Connections accepted.
    pub connections: Counter,
    /// Requests answered with 2xx.
    pub ok: Counter,
    /// Requests answered with 4xx/5xx (parse errors included).
    pub errors: Counter,
    /// Requests answered with 408 after the read deadline.
    pub timeouts: Counter,
    /// Connections shed at accept time because the admission queue was at
    /// capacity (answered with a blind `503 + Retry-After`).
    pub shed_queue: Counter,
    /// Requests shed before route dispatch because the server was over its
    /// inflight or latency thresholds (`503 + Retry-After`).
    pub shed_load: Counter,
    /// Requests whose cube work was aborted at the per-route soft deadline
    /// (answered with `503 + Retry-After` instead of wedging a worker).
    pub deadline_aborts: Counter,
    /// Snapshot publications rejected by pre-publish validation (the
    /// previous epoch kept serving).
    pub publish_rejected: Counter,
    /// Connections currently queued for (or parked between) workers.
    pub queue_depth: Gauge,
    /// Requests currently inside route dispatch.
    pub inflight: Gauge,
    /// Quantile-biased request-latency EWMA (seconds) — the overload
    /// signal compared against the p99 budget.
    pub latency_ewma: Gauge,
    /// Currently published snapshot epoch.
    pub snapshot_epoch: Gauge,
    /// Snapshots published (the initial snapshot counts as the first).
    pub snapshot_publishes: Counter,
    /// Resident response-cache entries (set at scrape time).
    cache_entries: Gauge,
    routes: Vec<RouteSeries>,
}

impl ServeMetrics {
    /// Registers every server-level series in a fresh registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let routes = ROUTE_LABELS
            .iter()
            .map(|&label| RouteSeries {
                label,
                requests: registry.counter_with(
                    "webdep_serve_requests_total",
                    "Requests answered, by route",
                    &[("route", label)],
                ),
                latency: registry.histogram_with(
                    "webdep_serve_request_seconds",
                    "Wall-clock time from parsed head to rendered body, by route",
                    &[("route", label)],
                    LATENCY_SECONDS,
                ),
            })
            .collect();
        ServeMetrics {
            connections: registry.counter(
                "webdep_serve_connections_total",
                "Connections accepted by the listener",
            ),
            ok: registry.counter(
                "webdep_serve_responses_ok_total",
                "Requests answered with a 2xx status",
            ),
            errors: registry.counter(
                "webdep_serve_responses_error_total",
                "Requests answered with a 4xx or 5xx status (parse errors included)",
            ),
            timeouts: registry.counter(
                "webdep_serve_response_timeouts_total",
                "Requests answered with 408 after the read deadline",
            ),
            shed_queue: registry.counter(
                "webdep_serve_shed_queue_total",
                "Connections shed at accept time with the admission queue at capacity",
            ),
            shed_load: registry.counter(
                "webdep_serve_shed_load_total",
                "Requests shed before route dispatch under inflight or latency pressure",
            ),
            deadline_aborts: registry.counter(
                "webdep_serve_deadline_aborts_total",
                "Requests whose cube work was aborted at the per-route soft deadline",
            ),
            publish_rejected: registry.counter(
                "webdep_serve_publish_rejected_total",
                "Snapshot publications rejected by pre-publish validation",
            ),
            queue_depth: registry.gauge(
                "webdep_serve_queue_depth",
                "Connections queued for (or parked between) workers",
            ),
            inflight: registry.gauge(
                "webdep_serve_inflight_requests",
                "Requests currently inside route dispatch",
            ),
            latency_ewma: registry.gauge(
                "webdep_serve_latency_ewma_seconds",
                "Quantile-biased request-latency EWMA compared against the p99 budget",
            ),
            snapshot_epoch: registry.gauge(
                "webdep_serve_snapshot_epoch",
                "Currently published snapshot epoch",
            ),
            snapshot_publishes: registry.counter(
                "webdep_serve_snapshot_publishes_total",
                "Snapshot publications observed by this server",
            ),
            cache_entries: registry.gauge(
                "webdep_serve_cache_entries",
                "Response-cache entries currently resident",
            ),
            routes,
            registry,
        }
    }

    /// Counters for a [`ResponseCache`] wired into this registry.
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.registry.counter(
                "webdep_serve_cache_hits_total",
                "Response-cache lookups answered from the cache",
            ),
            misses: self.registry.counter(
                "webdep_serve_cache_misses_total",
                "Response-cache lookups that had to render the body",
            ),
            evictions: self.registry.counter(
                "webdep_serve_cache_evictions_total",
                "Response-cache entries dropped to stay within capacity",
            ),
            stale_purged: self.registry.counter(
                "webdep_serve_cache_stale_purged_total",
                "Response-cache entries dropped because their epoch was superseded",
            ),
        }
    }

    /// Records one answered request: the per-route counter and latency
    /// histogram, plus the status-class counters.
    pub fn observe_request(&self, route: &str, status: u16, elapsed: Duration) {
        let series = self
            .routes
            .iter()
            .find(|r| r.label == route)
            .unwrap_or_else(|| self.routes.last().expect("route table is non-empty"));
        series.requests.inc();
        series.latency.observe_duration(elapsed);
        if status < 400 {
            self.ok.inc();
        } else {
            self.errors.inc();
        }
    }

    /// Latency quantile readout for a route (`None` before any traffic).
    pub fn route_quantile(&self, route: &str, q: f64) -> Option<f64> {
        self.routes
            .iter()
            .find(|r| r.label == route)
            .and_then(|r| r.latency.quantile(q))
    }

    /// Renders the `GET /metrics` body: this server's registry followed by
    /// the process-wide registry (pipeline counters, journal counters).
    pub fn render(&self, epoch: u64, cache: &ResponseCache) -> String {
        self.snapshot_epoch.set(epoch as f64);
        self.cache_entries.set(cache.stats().len as f64);
        let own = self.registry.render();
        let process = global().render();
        let mut out = String::with_capacity(own.len() + process.len());
        out.push_str(&own);
        out.push_str(&process);
        out
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_routes_fold_into_other() {
        let m = ServeMetrics::new();
        m.observe_request("no-such-route", 404, Duration::from_micros(80));
        m.observe_request("score", 200, Duration::from_micros(120));
        let cache = ResponseCache::new(16);
        let text = m.render(3, &cache);
        assert!(text.contains("webdep_serve_requests_total{route=\"other\"} 1"));
        assert!(text.contains("webdep_serve_requests_total{route=\"score\"} 1"));
        assert!(text.contains("webdep_serve_snapshot_epoch 3.0"));
        assert_eq!(m.ok.get(), 1);
        assert_eq!(m.errors.get(), 1);
        assert!(m.route_quantile("score", 0.5).is_some());
        assert!(m.route_quantile("meta", 0.5).is_none());
    }
}
