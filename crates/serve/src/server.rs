//! The listener, worker pool, and connection loop.
//!
//! Thread model: one acceptor thread polls a non-blocking
//! `TcpListener` (sleeping ~1 ms between empty polls so the shutdown flag
//! is observed promptly) and hands accepted connections to a fixed pool of
//! worker threads over an MPMC channel. A worker owns a connection for its
//! whole keep-alive lifetime — so the pool size bounds concurrent
//! *connections*, not just concurrent requests; size the pool at or above
//! the expected client concurrency.
//!
//! Graceful shutdown: [`ServerHandle::shutdown`] sets a flag and joins.
//! The acceptor stops accepting and drops its channel sender; workers
//! finish the request in flight, answer it, close their connections
//! (`Connection: close`), drain any connections still queued, and exit.
//! Nothing in flight is dropped.

use crate::cache::{CacheStats, ResponseCache};
use crate::http::{
    error_body, parse_head, render_response, render_response_typed, Limits, ParseOutcome,
    PROMETHEUS_TEXT,
};
use crate::metrics::ServeMetrics;
use crate::routes;
use crate::snapshot::{CubeSnapshot, SnapshotCell};
use crossbeam::channel::{self, RecvTimeoutError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads (= maximum concurrent connections).
    pub workers: usize,
    /// Parser and connection limits.
    pub limits: Limits,
    /// Response-cache capacity in entries.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            limits: Limits::default(),
            cache_capacity: 4096,
        }
    }
}

/// A point-in-time copy of the server's request counters (which live in
/// [`ServeMetrics`] and are also exported at `GET /metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered with 2xx.
    pub ok: u64,
    /// Requests answered with 4xx/5xx.
    pub errors: u64,
    /// Requests answered with 408.
    pub timeouts: u64,
}

struct Shared {
    cell: SnapshotCell,
    cache: ResponseCache,
    limits: Limits,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
}

/// A running server: the bound address plus control-plane methods.
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaks
/// the threads (they keep serving); tests and the CLI always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds, spawns the pool, and starts serving `initial`.
pub fn start(config: ServeConfig, initial: Arc<CubeSnapshot>) -> std::io::Result<ServerHandle> {
    let addr =
        config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad bind address")
        })?;
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = ServeMetrics::new();
    let cache = ResponseCache::with_counters(config.cache_capacity, metrics.cache_counters());
    let shared = Arc::new(Shared {
        metrics,
        cache,
        cell: SnapshotCell::new(initial),
        limits: config.limits,
        shutdown: AtomicBool::new(false),
    });
    // The initial snapshot counts as the first publication.
    shared
        .metrics
        .snapshot_epoch
        .set(shared.cell.epoch() as f64);
    shared.metrics.snapshot_publishes.inc();

    let (tx, rx) = channel::unbounded::<TcpStream>();
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("webdep-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("webdep-serve-acceptor".to_string())
            .spawn(move || {
                // `tx` moves in here; dropping it on exit disconnects the
                // workers once the queue drains.
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            shared.metrics.connections.inc();
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound socket address (the ephemeral port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently-published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Publishes a new snapshot and purges stale-epoch cache entries.
    /// Returns the new epoch.
    pub fn publish(&self, next: Arc<CubeSnapshot>) -> u64 {
        let epoch = self.shared.cell.publish(next);
        self.shared.cache.purge_older(epoch);
        self.shared.metrics.snapshot_epoch.set(epoch as f64);
        self.shared.metrics.snapshot_publishes.inc();
        epoch
    }

    /// Response-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Request counters (the same values `GET /metrics` exports).
    pub fn stats(&self) -> StatsSnapshot {
        let m = &self.shared.metrics;
        StatsSnapshot {
            connections: m.connections.get(),
            ok: m.ok.get(),
            errors: m.errors.get(),
            timeouts: m.timeouts.get(),
        }
    }

    /// The server's metrics (per-route counters, latency histograms,
    /// snapshot gauges); also rendered at `GET /metrics`.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The `GET /metrics` body as this server would render it now.
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .render(self.shared.cell.epoch(), &self.shared.cache)
    }

    /// Requests shutdown without blocking (idempotent); pair with
    /// [`ServerHandle::shutdown`] to join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish and queued connections drain, then join all threads.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &channel::Receiver<TcpStream>, shared: &Shared) {
    // Per-worker snapshot cache: revalidated by one atomic epoch load per
    // request, dropped on idle ticks once the epoch moves so a drained
    // old snapshot is actually freed (the swap test watches a Weak).
    let mut snap_cache: Option<Arc<CubeSnapshot>> = None;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => serve_connection(stream, shared, &mut snap_cache),
            Err(RecvTimeoutError::Timeout) => {
                if let Some(snap) = &snap_cache {
                    if snap.epoch != shared.cell.epoch() {
                        snap_cache = None;
                    }
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain anything still queued, then exit.
                    while let Ok(stream) = rx.try_recv() {
                        serve_connection(stream, shared, &mut snap_cache);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Owns one connection until it closes: reads heads in 250 ms ticks (so
/// deadlines and shutdown are checked even while a peer stalls), answers
/// each complete head, and drains pipelined bytes via the consumed offset.
fn serve_connection(
    mut stream: TcpStream,
    shared: &Shared,
    snap_cache: &mut Option<Arc<CubeSnapshot>>,
) {
    let limits = &shared.limits;
    if stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Set when the current head's first byte arrived (read deadline);
    // None while idle between keep-alive requests (idle timeout).
    let mut head_started: Option<Instant> = None;
    let mut idle_since = Instant::now();
    loop {
        match parse_head(&buf, limits) {
            ParseOutcome::Complete { request, consumed } => {
                buf.drain(..consumed);
                head_started = if buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                idle_since = Instant::now();
                let t0 = Instant::now();
                let snap = shared.cell.load_cached(snap_cache);
                // `/metrics` is answered here rather than in the route
                // table because the exporter needs the server's registry
                // and cache, which routes never see.
                let (routed, content_type) = if request.path == "/metrics" {
                    let text = shared.metrics.render(snap.epoch, &shared.cache);
                    let routed = routes::Routed {
                        status: 200,
                        body: Arc::new(text.into_bytes()),
                        cache_hit: false,
                        route: "metrics",
                    };
                    (routed, PROMETHEUS_TEXT)
                } else {
                    let routed = routes::handle(&request, &snap, &shared.cache);
                    (routed, "application/json")
                };
                shared
                    .metrics
                    .observe_request(routed.route, routed.status, t0.elapsed());
                // On shutdown, answer what we have and close.
                let keep = request.keep_alive && !shared.shutdown.load(Ordering::Acquire);
                let resp = render_response_typed(
                    routed.status,
                    &routed.body,
                    Some(snap.epoch),
                    keep,
                    content_type,
                );
                if stream.write_all(&resp).is_err() || !keep {
                    return;
                }
            }
            ParseOutcome::Error(e) => {
                shared.metrics.errors.inc();
                let resp =
                    render_response(e.status(), &error_body(e.status(), e.reason()), None, false);
                let _ = stream.write_all(&resp);
                return;
            }
            ParseOutcome::Partial => match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => {
                    if buf.is_empty() {
                        head_started = Some(Instant::now());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    match head_started {
                        Some(t0) if t0.elapsed() >= limits.read_deadline => {
                            // A peer trickling a head: answer 408, close.
                            shared.metrics.timeouts.inc();
                            let resp = render_response(
                                408,
                                &error_body(408, "request head not received in time"),
                                None,
                                false,
                            );
                            let _ = stream.write_all(&resp);
                            return;
                        }
                        None if idle_since.elapsed() >= limits.idle_timeout
                            || shared.shutdown.load(Ordering::Acquire) =>
                        {
                            // Idle keep-alive connection: close silently.
                            return;
                        }
                        _ => {}
                    }
                }
                Err(_) => return,
            },
        }
    }
}

/// SIGINT support for the CLI, kept libc-free: a direct `signal(2)`
/// binding storing into a process-global flag. Only the `webdep serve`
/// subcommand installs it; library users and tests never touch process
/// signal state.
pub mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        INTERRUPTED.store(true, Ordering::Release);
    }

    /// Installs the SIGINT handler. Returns `false` if the kernel refused.
    pub fn install_sigint() -> bool {
        #[allow(unsafe_code)]
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
            }
            signal(SIGINT, on_sigint) != -1
        }
    }

    /// Whether SIGINT has been received since install.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Acquire)
    }
}
