//! The listener, worker pool, connection loop, and overload control.
//!
//! Thread model: one acceptor thread polls a non-blocking
//! `TcpListener` (sleeping ~1 ms between empty polls so the shutdown flag
//! is observed promptly) and hands accepted connections to a fixed pool of
//! worker threads over an MPMC channel. A worker owns a connection while
//! it is actively serving it, but under queue pressure it *parks* the
//! connection — re-enqueues it behind the waiting ones — whenever a read
//! tick comes back empty, so a slow-loris peer or an idle keep-alive
//! client costs at most one short tick before the worker moves on. With an
//! empty queue the worker keeps the connection warm exactly as before.
//!
//! Admission control is two-level. At accept time the queue has a hard
//! cap ([`OverloadConfig::queue_depth`]): a connection arriving beyond it
//! is answered with a blind `503 + Retry-After` and closed, before any
//! parsing. After a head parses, a second path-aware check sheds the
//! request (again `503 + Retry-After`) when the queue is deeper than
//! [`OverloadConfig::shed_depth`] or the latency EWMA has crossed
//! [`OverloadConfig::p99_budget`] — except `/healthz` and `/metrics`,
//! which are always admitted so orchestrators and scrapers see a live
//! server even mid-storm. Finally, every dispatched request carries a soft
//! deadline ([`OverloadConfig::route_deadline`]): cube work past budget is
//! aborted between bootstrap chunks and answered `503` instead of wedging
//! the worker.
//!
//! Graceful shutdown: [`ServerHandle::shutdown`] sets a flag and joins.
//! The acceptor stops accepting and drops its channel sender; workers
//! finish the request in flight, answer it, close their connections
//! (`Connection: close`), drain any connections still queued, and exit.
//! Parking is disabled once the flag is up so the drain terminates.

use crate::cache::{CacheStats, ResponseCache};
use crate::http::{
    error_body, parse_head, render_response, render_response_retry, Limits, ParseOutcome,
    PROMETHEUS_TEXT,
};
use crate::metrics::ServeMetrics;
use crate::routes::{self, Budget};
use crate::snapshot::{CubeSnapshot, SnapshotCell};
use crossbeam::channel::{self, RecvTimeoutError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use webdep_webgen::WorldDelta;

/// Overload-control thresholds. All are per-server; the defaults keep the
/// machinery invisible until the server is genuinely saturated.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Hard cap on connections queued for (or parked between) workers.
    /// Beyond it, accepts are answered with a blind `503 + Retry-After`
    /// and closed before any parsing.
    pub queue_depth: usize,
    /// Dispatch-time shed threshold: a parsed non-exempt request is shed
    /// while more than this many connections are waiting in the queue.
    pub shed_depth: usize,
    /// Dispatch-time latency threshold: a parsed non-exempt request is
    /// shed while the quantile-biased latency EWMA is at or above this.
    /// `Duration::ZERO` therefore sheds every non-exempt request — the
    /// deterministic setting the overload gate uses.
    pub p99_budget: Duration,
    /// Soft per-request deadline: cube work (bootstrap replicates) past it
    /// is aborted between chunks and answered `503`.
    pub route_deadline: Duration,
    /// `Retry-After` seconds advertised on every shed or deadline `503`.
    pub retry_after_secs: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_depth: 256,
            shed_depth: 64,
            p99_budget: Duration::from_secs(2),
            route_deadline: Duration::from_secs(10),
            retry_after_secs: 1,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads. Connection parking multiplexes more connections
    /// than workers under pressure, but the pool still bounds concurrent
    /// *dispatches*.
    pub workers: usize,
    /// Parser and connection limits.
    pub limits: Limits,
    /// Response-cache capacity in entries.
    pub cache_capacity: usize,
    /// Overload-control thresholds.
    pub overload: OverloadConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            limits: Limits::default(),
            cache_capacity: 4096,
            overload: OverloadConfig::default(),
        }
    }
}

/// A point-in-time copy of the server's request counters (which live in
/// [`ServeMetrics`] and are also exported at `GET /metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered with 2xx.
    pub ok: u64,
    /// Requests answered with 4xx/5xx.
    pub errors: u64,
    /// Requests answered with 408.
    pub timeouts: u64,
}

struct Shared {
    cell: SnapshotCell,
    cache: ResponseCache,
    limits: Limits,
    overload: OverloadConfig,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    /// Connections currently in the channel (enqueued or parked). The
    /// vendored channel is unbounded; this counter is the bound.
    depth: AtomicUsize,
    /// Requests currently inside route dispatch.
    inflight: AtomicUsize,
    /// Quantile-biased request-latency EWMA, microseconds.
    ewma_us: AtomicU64,
}

/// One connection's parkable state: the stream plus everything the
/// read-loop needs to resume where it left off after a park.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// When the current head's first byte arrived (read deadline);
    /// `None` while idle between keep-alive requests (idle timeout).
    head_started: Option<Instant>,
    idle_since: Instant,
    /// The read timeout currently set on the stream, so the loop only
    /// pays the syscall when the pressure-scaled tick actually changes.
    read_tick: Option<Duration>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            head_started: None,
            idle_since: Instant::now(),
            read_tick: None,
        }
    }
}

/// A running server: the bound address plus control-plane methods.
/// Dropping the handle without calling [`ServerHandle::shutdown`] leaks
/// the threads (they keep serving); tests and the CLI always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds, spawns the pool, and starts serving `initial`.
pub fn start(config: ServeConfig, initial: Arc<CubeSnapshot>) -> std::io::Result<ServerHandle> {
    let addr =
        config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad bind address")
        })?;
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = ServeMetrics::new();
    let cache = ResponseCache::with_counters(config.cache_capacity, metrics.cache_counters());
    let shared = Arc::new(Shared {
        metrics,
        cache,
        cell: SnapshotCell::new(initial),
        limits: config.limits,
        overload: config.overload,
        shutdown: AtomicBool::new(false),
        depth: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        ewma_us: AtomicU64::new(0),
    });
    // The initial snapshot counts as the first publication.
    shared
        .metrics
        .snapshot_epoch
        .set(shared.cell.epoch() as f64);
    shared.metrics.snapshot_publishes.inc();

    let (tx, rx) = channel::unbounded::<Conn>();
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let rx = rx.clone();
            let tx = tx.clone();
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("webdep-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &tx, &shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("webdep-serve-acceptor".to_string())
            .spawn(move || {
                // `tx` moves in here; workers hold their own clones for
                // parking and exit via the shutdown flag.
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            shared.metrics.connections.inc();
                            let _ = stream.set_nodelay(true);
                            if let Err(conn) = try_enqueue(&shared, &tx, Conn::new(stream)) {
                                shed_connection(&shared, conn.stream);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound socket address (the ephemeral port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently-published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Publishes a new snapshot and purges stale-epoch cache entries.
    /// Returns the new epoch.
    pub fn publish(&self, next: Arc<CubeSnapshot>) -> u64 {
        let epoch = self.shared.cell.publish(next);
        self.shared.cache.purge_older(epoch);
        self.shared.metrics.snapshot_epoch.set(epoch as f64);
        self.shared.metrics.snapshot_publishes.inc();
        epoch
    }

    /// [`ServerHandle::publish`] gated by [`CubeSnapshot::validate`]: the
    /// candidate is checked against the currently-published snapshot (and
    /// the delta that produced it, when there is one) *before* the swap.
    /// A failing candidate is rejected — the previous epoch keeps serving,
    /// the `publish_rejected` counter increments, and the first violated
    /// invariant comes back as the error.
    pub fn publish_validated(
        &self,
        next: Arc<CubeSnapshot>,
        delta: Option<&WorldDelta>,
    ) -> Result<u64, String> {
        let prev = self.shared.cell.load();
        if let Err(why) = next.validate(Some(&prev), delta) {
            self.shared.metrics.publish_rejected.inc();
            return Err(why);
        }
        Ok(self.publish(next))
    }

    /// Response-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Request counters (the same values `GET /metrics` exports).
    pub fn stats(&self) -> StatsSnapshot {
        let m = &self.shared.metrics;
        StatsSnapshot {
            connections: m.connections.get(),
            ok: m.ok.get(),
            errors: m.errors.get(),
            timeouts: m.timeouts.get(),
        }
    }

    /// The server's metrics (per-route counters, latency histograms,
    /// snapshot gauges); also rendered at `GET /metrics`.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The `GET /metrics` body as this server would render it now.
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .render(self.shared.cell.epoch(), &self.shared.cache)
    }

    /// Requests shutdown without blocking (idempotent); pair with
    /// [`ServerHandle::shutdown`] to join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish and queued connections drain, then join all threads.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Enqueues a connection, respecting the hard queue cap. On overflow (or a
/// dead channel) the connection comes back to the caller.
fn try_enqueue(shared: &Shared, tx: &channel::Sender<Conn>, conn: Conn) -> Result<(), Conn> {
    let cap = shared.overload.queue_depth.max(1);
    let d = shared.depth.fetch_add(1, Ordering::AcqRel) + 1;
    if d > cap {
        shared.depth.fetch_sub(1, Ordering::AcqRel);
        return Err(conn);
    }
    shared.metrics.queue_depth.set(d as f64);
    match tx.send(conn) {
        Ok(()) => Ok(()),
        Err(e) => {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            Err(e.0)
        }
    }
}

/// Answers an over-capacity connection with a blind `503 + Retry-After`
/// (best-effort: the response goes out before the peer's request is read)
/// and closes it.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.shed_queue.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let resp = render_response_retry(
        503,
        &error_body(503, "admission queue full"),
        None,
        false,
        "application/json",
        Some(shared.overload.retry_after_secs),
    );
    let _ = stream.write_all(&resp);
}

/// Folds one observed request latency into the overload EWMA. The update
/// is asymmetric — rises at α=1/4, decays at α=1/32 — so the value tracks
/// the latency *tail* rather than the mean: a cheap p99 proxy in one
/// atomic word.
fn update_ewma(shared: &Shared, elapsed: Duration) {
    let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    let _ = shared
        .ewma_us
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(if sample > cur {
                cur + ((sample - cur) / 4).max(1)
            } else if sample < cur {
                cur - ((cur - sample) / 32).max(1)
            } else {
                cur
            })
        });
    shared
        .metrics
        .latency_ewma
        .set(shared.ewma_us.load(Ordering::Relaxed) as f64 / 1e6);
}

/// Whether a parsed non-exempt request should be shed before dispatch.
fn overloaded(shared: &Shared) -> bool {
    let o = &shared.overload;
    if shared.depth.load(Ordering::Acquire) > o.shed_depth {
        return true;
    }
    let budget_us = u64::try_from(o.p99_budget.as_micros()).unwrap_or(u64::MAX);
    shared.ewma_us.load(Ordering::Relaxed) >= budget_us
}

fn worker_loop(rx: &channel::Receiver<Conn>, tx: &channel::Sender<Conn>, shared: &Shared) {
    // Per-worker snapshot cache: revalidated by one atomic epoch load per
    // request, dropped on idle ticks once the epoch moves so a drained
    // old snapshot is actually freed (the swap test watches a Weak).
    let mut snap_cache: Option<Arc<CubeSnapshot>> = None;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(conn) => {
                let d = shared
                    .depth
                    .fetch_sub(1, Ordering::AcqRel)
                    .saturating_sub(1);
                shared.metrics.queue_depth.set(d as f64);
                drive_connection(conn, shared, tx, &mut snap_cache);
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(snap) = &snap_cache {
                    if snap.epoch != shared.cell.epoch() {
                        snap_cache = None;
                    }
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain anything still queued (parking is off once the
                    // flag is up, so this terminates), then exit.
                    while let Ok(conn) = rx.try_recv() {
                        let d = shared
                            .depth
                            .fetch_sub(1, Ordering::AcqRel)
                            .saturating_sub(1);
                        shared.metrics.queue_depth.set(d as f64);
                        drive_connection(conn, shared, tx, &mut snap_cache);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Drives one connection until it closes or parks: reads heads in
/// pressure-scaled ticks (250 ms warm, 5 ms while other connections wait,
/// so deadlines and shutdown are checked even while a peer stalls),
/// answers each complete head, and drains pipelined bytes via the consumed
/// offset. An empty read tick with a non-empty queue parks the connection
/// — re-enqueues it and returns the worker to the pool — which is what
/// keeps fast requests flowing through a pool saturated by slow peers.
fn drive_connection(
    mut conn: Conn,
    shared: &Shared,
    tx: &channel::Sender<Conn>,
    snap_cache: &mut Option<Arc<CubeSnapshot>>,
) {
    let limits = &shared.limits;
    let mut chunk = [0u8; 4096];
    loop {
        match parse_head(&conn.buf, limits) {
            ParseOutcome::Complete { request, consumed } => {
                conn.buf.drain(..consumed);
                conn.head_started = if conn.buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                conn.idle_since = Instant::now();
                let t0 = Instant::now();
                let snap = shared.cell.load_cached(snap_cache);
                // `/healthz` and `/metrics` are always admitted: an
                // orchestrator probing liveness or a scraper reading the
                // shed counters must see the server, not the storm.
                let exempt = request.path == "/healthz" || request.path == "/metrics";
                if !exempt && overloaded(shared) {
                    let route = routes::route_label(&request.path);
                    shared.metrics.shed_load.inc();
                    shared.metrics.observe_request(route, 503, t0.elapsed());
                    let resp = render_response_retry(
                        503,
                        &error_body(503, "server overloaded"),
                        Some(snap.epoch),
                        false,
                        "application/json",
                        Some(shared.overload.retry_after_secs),
                    );
                    let _ = conn.stream.write_all(&resp);
                    return;
                }
                let inflight = shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
                shared.metrics.inflight.set(inflight as f64);
                // `/metrics` is answered here rather than in the route
                // table because the exporter needs the server's registry
                // and cache, which routes never see.
                let (routed, content_type) = if request.path == "/metrics" {
                    let text = shared.metrics.render(snap.epoch, &shared.cache);
                    let routed = routes::Routed {
                        status: 200,
                        body: Arc::new(text.into_bytes()),
                        cache_hit: false,
                        route: "metrics",
                        deadline_abort: false,
                    };
                    (routed, PROMETHEUS_TEXT)
                } else {
                    let budget = Budget::expiring(shared.overload.route_deadline);
                    let routed = routes::handle(&request, &snap, &shared.cache, budget);
                    (routed, "application/json")
                };
                let inflight = shared
                    .inflight
                    .fetch_sub(1, Ordering::AcqRel)
                    .saturating_sub(1);
                shared.metrics.inflight.set(inflight as f64);
                let elapsed = t0.elapsed();
                if routed.deadline_abort {
                    shared.metrics.deadline_aborts.inc();
                }
                shared
                    .metrics
                    .observe_request(routed.route, routed.status, elapsed);
                update_ewma(shared, elapsed);
                // Shed and deadline 503s close the connection (freeing it
                // is the point) and advertise a retry delay.
                let shed_close = routed.status == 503;
                let keep =
                    request.keep_alive && !shed_close && !shared.shutdown.load(Ordering::Acquire);
                let retry_after = shed_close.then_some(shared.overload.retry_after_secs);
                let resp = render_response_retry(
                    routed.status,
                    &routed.body,
                    Some(snap.epoch),
                    keep,
                    content_type,
                    retry_after,
                );
                if conn.stream.write_all(&resp).is_err() || !keep {
                    return;
                }
                // Answered and idle: with other connections waiting, park
                // so the worker serves them instead of sitting on a warm
                // keep-alive socket.
                if conn.buf.is_empty()
                    && !shared.shutdown.load(Ordering::Acquire)
                    && shared.depth.load(Ordering::Acquire) > 0
                {
                    // On overflow the connection is idle and answered —
                    // closing it quietly is the cheapest outcome.
                    let _ = try_enqueue(shared, tx, conn);
                    return;
                }
            }
            ParseOutcome::Error(e) => {
                shared.metrics.errors.inc();
                let resp =
                    render_response(e.status(), &error_body(e.status(), e.reason()), None, false);
                let _ = conn.stream.write_all(&resp);
                return;
            }
            ParseOutcome::Partial => {
                // Pressure-scaled read tick: a parked-and-resumed stalling
                // peer must not hold a worker for a full 250 ms while
                // others wait.
                let tick = if shared.depth.load(Ordering::Acquire) > 0 {
                    Duration::from_millis(5)
                } else {
                    Duration::from_millis(250)
                };
                if conn.read_tick != Some(tick) {
                    if conn.stream.set_read_timeout(Some(tick)).is_err() {
                        return;
                    }
                    conn.read_tick = Some(tick);
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => {
                        if conn.buf.is_empty() {
                            conn.head_started = Some(Instant::now());
                        }
                        conn.buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        match conn.head_started {
                            Some(t0) if t0.elapsed() >= limits.read_deadline => {
                                // A peer trickling a head: answer 408, close.
                                shared.metrics.timeouts.inc();
                                let resp = render_response(
                                    408,
                                    &error_body(408, "request head not received in time"),
                                    None,
                                    false,
                                );
                                let _ = conn.stream.write_all(&resp);
                                return;
                            }
                            None if conn.idle_since.elapsed() >= limits.idle_timeout
                                || shared.shutdown.load(Ordering::Acquire) =>
                            {
                                // Idle keep-alive connection: close silently.
                                return;
                            }
                            _ => {
                                // An empty tick with a non-empty queue:
                                // park so a waiting connection gets this
                                // worker. Overflow means the queue refilled
                                // past the cap behind us — shed.
                                if !shared.shutdown.load(Ordering::Acquire)
                                    && shared.depth.load(Ordering::Acquire) > 0
                                {
                                    if let Err(conn) = try_enqueue(shared, tx, conn) {
                                        shed_connection(shared, conn.stream);
                                    }
                                    return;
                                }
                            }
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }
}

/// SIGINT/SIGTERM support for the CLI, kept libc-free: a direct
/// `signal(2)` binding storing into a process-global flag. Only the
/// `webdep` CLI installs it; library users and tests never touch process
/// signal state.
pub mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        INTERRUPTED.store(true, Ordering::Release);
    }

    fn install(signum: i32) -> bool {
        #[allow(unsafe_code)]
        unsafe {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
            }
            signal(signum, on_signal) != -1
        }
    }

    /// Installs the shared handler for SIGINT *and* SIGTERM (container
    /// orchestrators send SIGTERM first; both request the same graceful
    /// drain). Returns `false` if the kernel refused either.
    pub fn install_handlers() -> bool {
        let int_ok = install(SIGINT);
        let term_ok = install(SIGTERM);
        int_ok && term_ok
    }

    /// Whether SIGINT or SIGTERM has been received since install.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Acquire)
    }
}
