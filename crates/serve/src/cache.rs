//! Bounded, epoch-aware response cache.
//!
//! Keys are `(epoch, canonical query key)` so entries built against an old
//! snapshot can never satisfy a request routed to a newer one: after a
//! publish, lookups carry the new epoch and simply miss.  Stale entries are
//! additionally purged eagerly via [`ResponseCache::purge_older`] so the
//! capacity budget is not wasted on unreachable epochs.
//!
//! The cache is sharded by key hash; each shard is an independent
//! `Mutex<HashMap>` plus a FIFO eviction queue, so concurrent readers on
//! different keys rarely contend on the same lock.  Values are
//! `Arc<Vec<u8>>` rendered response bodies — a hit clones the `Arc`, never
//! the bytes.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use webdep_core::metrics::Counter;

const SHARDS: usize = 16;

/// Counters describing cache effectiveness since startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to render the response.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries dropped because their epoch was superseded.
    pub stale_purged: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

struct Shard {
    map: HashMap<(u64, String), Arc<Vec<u8>>>,
    fifo: VecDeque<(u64, String)>,
}

/// Counter handles for the cache's four event streams. Pass handles
/// registered in a metrics registry (see `ServeMetrics::cache_counters`)
/// to expose them at `GET /metrics`; [`CacheCounters::default`] makes
/// unregistered, process-private ones.
///
/// Exactness contract (audited for the `/metrics` exporter): every update
/// is an atomic read-modify-write (`fetch_add`), so concurrent shard
/// access never loses increments — `hits + misses` equals the number of
/// `get` calls exactly, and `evictions`/`stale_purged` are incremented
/// under the owning shard's lock in the same critical section that
/// removes the entry. The one deliberate softness: `get` counts *after*
/// releasing the shard lock, so a scrape racing a lookup may see the
/// lookup's map effect before its counter tick (never the reverse of
/// exactness — totals converge the instant in-flight calls return).
#[derive(Clone, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: Counter,
    /// Lookups that had to render the response.
    pub misses: Counter,
    /// Entries dropped to stay within capacity.
    pub evictions: Counter,
    /// Entries dropped because their epoch was superseded.
    pub stale_purged: Counter,
}

/// Sharded `(epoch, canonical key) → rendered body` cache with FIFO
/// eviction and a global capacity bound.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    counters: CacheCounters,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard), with
    /// process-private counters.
    pub fn new(capacity: usize) -> Self {
        Self::with_counters(capacity, CacheCounters::default())
    }

    /// Like [`ResponseCache::new`], but counting into the given handles
    /// (typically registered in a metrics registry).
    pub fn with_counters(capacity: usize, counters: CacheCounters) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        ResponseCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        fifo: VecDeque::new(),
                    })
                })
                .collect(),
            capacity_per_shard,
            counters,
        }
    }

    fn shard_of(&self, epoch: u64, key: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        epoch.hash(&mut h);
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Looks up a rendered body, counting a hit or a miss.
    pub fn get(&self, epoch: u64, key: &str) -> Option<Arc<Vec<u8>>> {
        let shard = &self.shards[self.shard_of(epoch, key)];
        let guard = shard.lock().expect("cache shard poisoned");
        let found = guard.map.get(&(epoch, key.to_string())).map(Arc::clone);
        drop(guard);
        if found.is_some() {
            self.counters.hits.inc();
        } else {
            self.counters.misses.inc();
        }
        found
    }

    /// Inserts a rendered body, evicting the oldest entry in the shard if
    /// the shard is at capacity. Re-inserting an existing key is a no-op.
    pub fn insert(&self, epoch: u64, key: &str, body: Arc<Vec<u8>>) {
        let shard = &self.shards[self.shard_of(epoch, key)];
        let mut guard = shard.lock().expect("cache shard poisoned");
        let owned = (epoch, key.to_string());
        if guard.map.contains_key(&owned) {
            return;
        }
        while guard.map.len() >= self.capacity_per_shard {
            match guard.fifo.pop_front() {
                Some(oldest) => {
                    if guard.map.remove(&oldest).is_some() {
                        self.counters.evictions.inc();
                    }
                }
                None => break,
            }
        }
        guard.fifo.push_back(owned.clone());
        guard.map.insert(owned, body);
    }

    /// Drops every entry whose epoch is older than `epoch`. Called on
    /// publish so superseded bodies release their memory immediately.
    pub fn purge_older(&self, epoch: u64) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard poisoned");
            let before = guard.map.len();
            guard.map.retain(|(e, _), _| *e >= epoch);
            guard.fifo.retain(|(e, _)| *e >= epoch);
            let dropped = (before - guard.map.len()) as u64;
            if dropped > 0 {
                self.counters.stale_purged.add(dropped);
            }
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard poisoned");
            guard.map.clear();
            guard.fifo.clear();
        }
    }

    /// Current counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
            stale_purged: self.counters.stale_purged.get(),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = ResponseCache::new(64);
        assert!(cache.get(1, "a").is_none());
        cache.insert(1, "a", body("x"));
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"x");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.len, 1);
        assert_eq!(stats.hit_rate(), Some(0.5));
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("old"));
        assert!(cache.get(2, "a").is_none(), "new epoch must miss");
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"old");
    }

    #[test]
    fn purge_older_drops_stale_epochs_only() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("old"));
        cache.insert(2, "a", body("new"));
        cache.purge_older(2);
        assert!(cache.get(1, "a").is_none());
        assert_eq!(cache.get(2, "a").unwrap().as_slice(), b"new");
        assert_eq!(cache.stats().stale_purged, 1);
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let cache = ResponseCache::new(16); // 1 entry per shard
        for i in 0..200 {
            cache.insert(1, &format!("k{i}"), body("v"));
        }
        let stats = cache.stats();
        assert!(stats.len <= 16, "len {} exceeds capacity", stats.len);
        assert!(stats.evictions >= 200 - 16);
    }

    /// The exactness audit behind the `/metrics` exporter: hammer every
    /// operation from many threads and check the counters balance to the
    /// exact operation totals — a single lost increment (a non-atomic
    /// read-modify-write anywhere) fails the accounting identities.
    #[test]
    fn counters_are_exact_under_concurrent_shard_access() {
        const THREADS: u64 = 8;
        const OPS: u64 = 2_000;
        let cache = ResponseCache::new(32); // 2 entries/shard: constant eviction pressure
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..OPS {
                        // Overlapping key ranges force cross-thread contention
                        // on the same shards.
                        let key = format!("k{}", (t * OPS / 2 + i) % 64);
                        if cache.get(1, &key).is_none() {
                            cache.insert(1, &key, body("v"));
                        }
                        if i % 128 == 0 {
                            cache.purge_older(1); // no-op epoch-wise, must not distort counts
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            THREADS * OPS,
            "lookup accounting lost increments: {stats:?}"
        );
        assert_eq!(stats.stale_purged, 0, "purge_older(1) dropped live entries");
        // Every insert either remains resident, was evicted, or was a
        // same-key no-op; evictions can never exceed misses (each miss is
        // the only path to an insert attempt).
        assert!(
            stats.evictions + (stats.len as u64) <= stats.misses,
            "eviction accounting inconsistent: {stats:?}"
        );
    }

    #[test]
    fn reinsert_same_key_keeps_first_body() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("first"));
        cache.insert(1, "a", body("second"));
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"first");
        assert_eq!(cache.stats().len, 1);
    }
}
