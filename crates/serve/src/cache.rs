//! Bounded, epoch-aware response cache.
//!
//! Keys are `(epoch, canonical query key)` so entries built against an old
//! snapshot can never satisfy a request routed to a newer one: after a
//! publish, lookups carry the new epoch and simply miss.  Stale entries are
//! additionally purged eagerly via [`ResponseCache::purge_older`] so the
//! capacity budget is not wasted on unreachable epochs.
//!
//! The cache is sharded by key hash; each shard is an independent
//! `Mutex<HashMap>` plus a FIFO eviction queue, so concurrent readers on
//! different keys rarely contend on the same lock.  Values are
//! `Arc<Vec<u8>>` rendered response bodies — a hit clones the `Arc`, never
//! the bytes.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// Counters describing cache effectiveness since startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to render the response.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries dropped because their epoch was superseded.
    pub stale_purged: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

struct Shard {
    map: HashMap<(u64, String), Arc<Vec<u8>>>,
    fifo: VecDeque<(u64, String)>,
}

/// Sharded `(epoch, canonical key) → rendered body` cache with FIFO
/// eviction and a global capacity bound.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_purged: AtomicU64,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        ResponseCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        fifo: VecDeque::new(),
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_purged: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, epoch: u64, key: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        epoch.hash(&mut h);
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Looks up a rendered body, counting a hit or a miss.
    pub fn get(&self, epoch: u64, key: &str) -> Option<Arc<Vec<u8>>> {
        let shard = &self.shards[self.shard_of(epoch, key)];
        let guard = shard.lock().expect("cache shard poisoned");
        let found = guard.map.get(&(epoch, key.to_string())).map(Arc::clone);
        drop(guard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts a rendered body, evicting the oldest entry in the shard if
    /// the shard is at capacity. Re-inserting an existing key is a no-op.
    pub fn insert(&self, epoch: u64, key: &str, body: Arc<Vec<u8>>) {
        let shard = &self.shards[self.shard_of(epoch, key)];
        let mut guard = shard.lock().expect("cache shard poisoned");
        let owned = (epoch, key.to_string());
        if guard.map.contains_key(&owned) {
            return;
        }
        while guard.map.len() >= self.capacity_per_shard {
            match guard.fifo.pop_front() {
                Some(oldest) => {
                    if guard.map.remove(&oldest).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        guard.fifo.push_back(owned.clone());
        guard.map.insert(owned, body);
    }

    /// Drops every entry whose epoch is older than `epoch`. Called on
    /// publish so superseded bodies release their memory immediately.
    pub fn purge_older(&self, epoch: u64) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard poisoned");
            let before = guard.map.len();
            guard.map.retain(|(e, _), _| *e >= epoch);
            guard.fifo.retain(|(e, _)| *e >= epoch);
            let dropped = (before - guard.map.len()) as u64;
            if dropped > 0 {
                self.stale_purged.fetch_add(dropped, Ordering::Relaxed);
            }
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard poisoned");
            guard.map.clear();
            guard.fifo.clear();
        }
    }

    /// Current counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_purged: self.stale_purged.load(Ordering::Relaxed),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = ResponseCache::new(64);
        assert!(cache.get(1, "a").is_none());
        cache.insert(1, "a", body("x"));
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"x");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.len, 1);
        assert_eq!(stats.hit_rate(), Some(0.5));
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("old"));
        assert!(cache.get(2, "a").is_none(), "new epoch must miss");
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"old");
    }

    #[test]
    fn purge_older_drops_stale_epochs_only() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("old"));
        cache.insert(2, "a", body("new"));
        cache.purge_older(2);
        assert!(cache.get(1, "a").is_none());
        assert_eq!(cache.get(2, "a").unwrap().as_slice(), b"new");
        assert_eq!(cache.stats().stale_purged, 1);
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let cache = ResponseCache::new(16); // 1 entry per shard
        for i in 0..200 {
            cache.insert(1, &format!("k{i}"), body("v"));
        }
        let stats = cache.stats();
        assert!(stats.len <= 16, "len {} exceeds capacity", stats.len);
        assert!(stats.evictions >= 200 - 16);
    }

    #[test]
    fn reinsert_same_key_keeps_first_body() {
        let cache = ResponseCache::new(64);
        cache.insert(1, "a", body("first"));
        cache.insert(1, "a", body("second"));
        assert_eq!(cache.get(1, "a").unwrap().as_slice(), b"first");
        assert_eq!(cache.stats().len, 1);
    }
}
