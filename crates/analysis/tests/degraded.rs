//! End-to-end degradation: measure a world through a hostile fault plan,
//! then render every report table from what survived. Reduced coverage
//! must show up in the numbers, never as a panic or a missing table.

use std::sync::Arc;
use std::time::Duration;
use webdep_analysis::centralization::layer_table;
use webdep_analysis::insularity::insularity_table;
use webdep_analysis::regional::subregion_summary;
use webdep_analysis::report::{insularity_markdown, layer_table_markdown, subregion_markdown};
use webdep_analysis::{coverage_model, AnalysisCtx};
use webdep_dns::resolver::ResolverConfig;
use webdep_netsim::{FaultKind, FaultPlan};
use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig, SiteObservation};
use webdep_tls::scanner::ScannerConfig;
use webdep_webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn small_world() -> World {
    World::generate(WorldConfig {
        seed: 42,
        sites_per_country: 60,
        global_pool_size: 300,
        tail_scale: 0.04,
        pool_target: 40,
    })
}

#[test]
fn every_table_renders_under_heavy_faults() {
    let world = small_world();
    let plan = FaultPlan {
        seed: 21,
        outage_fraction: 0.35,
        flaky_fraction: 0.5,
        fail_rate: 0.8,
        kinds: vec![FaultKind::ServFail, FaultKind::Drop],
        ..FaultPlan::none()
    };
    let dep = DeployedWorld::deploy(
        &world,
        DeployConfig {
            faults: Some(Arc::new(plan)),
            ..Default::default()
        },
    );
    let ds = measure(
        &world,
        &dep,
        &PipelineConfig {
            workers: 8,
            resolver: ResolverConfig {
                timeout: Duration::from_millis(5),
                retries: 0,
                ..Default::default()
            },
            scanner: ScannerConfig {
                timeout: Duration::from_millis(5),
                retries: 0,
                site_deadline: None,
            },
            ..Default::default()
        },
    );
    let tax = ds.failure_taxonomy();
    assert!(tax.clean < tax.total, "the plan must actually degrade");
    assert!(!tax.to_markdown().is_empty());

    let ctx = AnalysisCtx::new(&world, &ds);
    let cov = coverage_model(&ctx);
    assert!(
        cov.layer(Layer::Hosting).fraction() < 1.0,
        "heavy faults must dent hosting coverage"
    );
    assert!(cov.to_markdown().contains("| hosting |"));

    for &layer in &Layer::ALL {
        let t = layer_table(&ctx, layer);
        let md = layer_table_markdown(&t, 5, 5);
        assert!(md.contains("centralization"), "{}: {md}", layer.name());
        // Whatever was scored carries its own coverage fraction.
        for row in &t.rows {
            assert!(row.coverage > 0.0 && row.coverage <= 1.0, "{}", row.code);
        }
        let imd = insularity_markdown(&insularity_table(&ctx, layer), 5);
        assert!(imd.contains("insularity"), "{}", layer.name());
    }
    let smd = subregion_markdown(&subregion_summary(&ctx));
    assert!(smd.contains("| subregion |"));
}

#[test]
fn layer_tables_render_even_when_nothing_measured() {
    let world = small_world();
    let ds = MeasuredDataset {
        observations: world
            .sites
            .iter()
            .map(|s| SiteObservation::blank(&s.domain, &s.language))
            .collect(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: "blank".into(),
    };
    let ctx = AnalysisCtx::new(&world, &ds);
    for &layer in &[Layer::Hosting, Layer::Dns, Layer::Ca] {
        let t = layer_table(&ctx, layer);
        assert!(t.summary.is_none(), "{}", layer.name());
        let md = layer_table_markdown(&t, 5, 5);
        assert!(md.contains("unmeasured"), "{}: {md}", layer.name());
    }
}
