//! The experiment suite: every table and figure, paper value vs measured
//! value, with a pass flag per the reproduction's shape criteria. This is
//! what `examples/full_reproduction.rs` runs to regenerate
//! `EXPERIMENTS.md`.

use crate::breakdown::{ca_breakdown, provider_breakdown, tld_breakdown};
use crate::cases::{afghan_persian_case, dependence_on, foreign_dependence_cases};
use crate::centralization::layer_table;
use crate::classes::{classify, ProviderClass};
use crate::correlations::{class_correlations, hosting_vs_tld_insularity, layer_score_correlation};
use crate::ctx::AnalysisCtx;
use crate::figures::{
    fig12_histograms, fig1_topn_shortcoming, fig2_emd_example, fig3_example_curves,
    fig4_usage_endemicity,
};
use crate::insularity::insularity_table;
use crate::longitudinal::compare;
use crate::regional::{continent_matrix, subregion_summary, Attribution};
use crate::vantage::validate_vantage;
use serde::Serialize;
use std::fmt::Write as _;
use webdep_webgen::{DeployedWorld, Layer, World, COUNTRIES};

/// One experiment's paper-vs-measured outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Paper table/figure/section id, e.g. `Fig 5 / Tab 5`.
    pub id: String,
    /// What is being reproduced.
    pub description: String,
    /// The paper's reported value (as text).
    pub paper: String,
    /// The measured value (as text).
    pub measured: String,
    /// Whether the reproduction criterion holds.
    pub pass: bool,
}

/// The full suite.
#[derive(Debug, Clone, Serialize, Default)]
pub struct ExperimentSuite {
    /// All experiment results, paper order.
    pub results: Vec<ExperimentResult>,
}

impl ExperimentSuite {
    fn push(&mut self, id: &str, description: &str, paper: String, measured: String, pass: bool) {
        self.results.push(ExperimentResult {
            id: id.to_string(),
            description: description.to_string(),
            paper,
            measured,
            pass,
        });
    }

    /// Experiments that passed.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.pass).count()
    }

    /// Total experiments.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Markdown rendering for `EXPERIMENTS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| id | what | paper | measured | ok |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for r in &self.results {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                r.id,
                r.description,
                r.paper,
                r.measured,
                if r.pass { "yes" } else { "NO" }
            );
        }
        out
    }

    /// Runs every experiment the primary snapshot supports. Pass the 2025
    /// snapshot for §5.4 and a live deployment for §3.4; they are skipped
    /// (not failed) when absent.
    pub fn run(
        ctx: &AnalysisCtx<'_>,
        evolved: Option<&AnalysisCtx<'_>>,
        deployment: Option<&DeployedWorld>,
    ) -> ExperimentSuite {
        let mut suite = ExperimentSuite::default();

        // --- Metric figures (measurement-independent) ---
        let f2 = fig2_emd_example();
        suite.push(
            "Fig 2",
            "worked EMD example (countries A/B)",
            "S_A=0.28, S_B=0.32".into(),
            format!("S_A={:.4}, S_B={:.4}", f2.country_a.1, f2.country_b.1),
            (f2.country_a.1 - 0.28).abs() < 0.01 && (f2.country_b.1 - 0.32).abs() < 0.01,
        );
        let f3 = fig3_example_curves(10_000);
        let f3_ok = f3
            .curves
            .iter()
            .all(|(t, a, _)| (t - a).abs() < 0.02 * (1.0 + t * 10.0));
        suite.push(
            "Fig 3",
            "synthetic score ladder",
            format!("{:?}", crate::figures::FIG3_TARGETS),
            format!(
                "{:?}",
                f3.curves
                    .iter()
                    .map(|c| (c.1 * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>()
            ),
            f3_ok,
        );

        // --- Figure 1 ---
        let f1 = fig1_topn_shortcoming(ctx);
        let get = |code: &str| f1.curves.iter().find(|c| c.0 == code);
        if let (Some(az), Some(hk)) = (get("AZ"), get("HK")) {
            suite.push(
                "Fig 1",
                "top-N blind spot: AZ vs HK",
                "similar top-5, S_AZ > S_HK".into(),
                format!(
                    "top5 {:.2} vs {:.2}; S {:.4} vs {:.4}",
                    az.2, hk.2, az.3, hk.3
                ),
                az.3 > hk.3,
            );
        }

        // --- Layer tables (Tables 5-8, Figures 5, 17-19) ---
        let tables: Vec<_> = Layer::ALL
            .iter()
            .map(|&l| (l, layer_table(ctx, l)))
            .collect();
        for (layer, t) in &tables {
            let corr = t.paper_correlation().map(|c| c.rho).unwrap_or(0.0);
            let mean = t.summary.as_ref().map(|s| s.mean).unwrap_or(f64::NAN);
            suite.push(
                &format!("Tab {} ", 5 + layer.index()),
                &format!("{} per-country scores vs paper", layer.name()),
                "rank/shape match (rho ~ 1)".into(),
                format!("rho = {corr:.3}, mean {mean:.4}"),
                corr > 0.9,
            );
        }

        // --- Coverage (graceful-degradation accounting) ---
        let cov = crate::coverage::coverage_model(ctx);
        let min_frac = cov
            .layers
            .iter()
            .map(|l| l.fraction())
            .fold(f64::INFINITY, f64::min);
        let tax = ctx.ds.failure_taxonomy();
        suite.push(
            "§3.4",
            "measurement coverage per layer",
            "every toplist site observed".into(),
            format!(
                "min layer coverage {:.1}%; {} / {} sites clean",
                100.0 * min_frac,
                tax.clean,
                tax.total
            ),
            min_frac > 0.99,
        );
        let hosting = &tables[0].1;
        let th = hosting.row("TH").map(|r| r.rank).unwrap_or(999);
        let ir = hosting.row("IR").map(|r| r.rank).unwrap_or(0);
        suite.push(
            "§5.1",
            "hosting extremes: TH most / IR least centralized",
            "TH #1 (0.3548), IR #150 (0.0411)".into(),
            format!("TH #{th}, IR #{ir}"),
            th <= 10 && ir >= 140,
        );
        suite.push(
            "§5.1",
            "90% of sites served by < 206 providers everywhere",
            "< 206".into(),
            format!("max {}", hosting.max_providers_for_90pct()),
            hosting.max_providers_for_90pct() < 206,
        );
        // Bootstrap 95% CIs on every per-country hosting score (the
        // paper's scores are point estimates over a sampled toplist; the
        // reproduction quantifies that sampling noise). 500 replicates per
        // country resample the per-site owner labels, all through one
        // reused scratch — the batched kernel path.
        let mut scratch = webdep_stats::BootstrapScratch::new();
        let cis: Vec<_> = (0..COUNTRIES.len())
            .filter_map(|ci| ctx.score_ci_scratch(ci, Layer::Hosting, 500, 0.95, 42, &mut scratch))
            .collect();
        let max_width = cis.iter().map(|c| c.width()).fold(0.0, f64::max);
        let th_ci = World::country_index("TH")
            .and_then(|i| ctx.score_ci_scratch(i, Layer::Hosting, 500, 0.95, 42, &mut scratch));
        let ir_ci = World::country_index("IR")
            .and_then(|i| ctx.score_ci_scratch(i, Layer::Hosting, 500, 0.95, 42, &mut scratch));
        let separated = match (&th_ci, &ir_ci) {
            (Some(th), Some(ir)) => th.lo > ir.hi,
            _ => false,
        };
        suite.push(
            "Tab 5",
            "per-country score CIs tight; TH/IR extremes separated",
            "point estimates stable under resampling".into(),
            format!(
                "{} countries, max CI width {:.3}; TH [{:.3}, {:.3}] vs IR [{:.3}, {:.3}]",
                cis.len(),
                max_width,
                th_ci.as_ref().map(|c| c.lo).unwrap_or(0.0),
                th_ci.as_ref().map(|c| c.hi).unwrap_or(0.0),
                ir_ci.as_ref().map(|c| c.lo).unwrap_or(0.0),
                ir_ci.as_ref().map(|c| c.hi).unwrap_or(0.0),
            ),
            cis.len() == COUNTRIES.len() && separated && max_width < 0.2,
        );
        let se = hosting.subregion_mean("South-eastern Asia").unwrap_or(0.0);
        let ca_sub = hosting.subregion_mean("Central Asia").unwrap_or(1.0);
        suite.push(
            "Fig 9",
            "SE Asia most / Central Asia least centralized subregions (hosting)",
            "0.2403 vs 0.0788".into(),
            format!("{se:.4} vs {ca_sub:.4}"),
            se > ca_sub,
        );

        // --- CA layer specifics (§7) ---
        let ca_table = &tables[2].1;
        let (ca_mean, ca_var) = ca_table
            .summary
            .as_ref()
            .map(|s| (s.mean, s.var))
            .unwrap_or((f64::NAN, f64::NAN));
        suite.push(
            "§7.1",
            "CA centralization tight across countries",
            "mean 0.2007, var 0.0007".into(),
            format!("mean {ca_mean:.4}, var {ca_var:.5}"),
            ca_var < 0.01,
        );

        // --- Classes (Tables 1-3, Figure 6) ---
        let hosting_classes = classify(ctx, Layer::Hosting);
        let xl = hosting_classes.members(ProviderClass::XlGp);
        let xl_names: Vec<&str> = xl
            .iter()
            .map(|&id| ctx.world.universe.provider(id).name.as_str())
            .collect();
        suite.push(
            "Tab 1 / Fig 6",
            "hosting XL-GP class = the two hyperscalers",
            "Cloudflare, Amazon".into(),
            format!("{xl_names:?} ({} clusters)", hosting_classes.num_clusters),
            xl_names.contains(&"Cloudflare") && xl_names.contains(&"Amazon") && xl.len() == 2,
        );
        let dns_classes = classify(ctx, Layer::Dns);
        let nsone_global = ctx
            .world
            .universe
            .provider_by_name("NSONE")
            .map(|id| dns_classes.class(id).is_global())
            .unwrap_or(false);
        suite.push(
            "Tab 2",
            "managed DNS providers classify as global",
            "NSONE, UltraDNS L-GP".into(),
            format!("NSONE global = {nsone_global}"),
            nsone_global,
        );
        let ca_classes = classify(ctx, Layer::Ca);
        let asseco_regional = ctx
            .world
            .universe
            .ca_by_name("Asseco")
            .map(|id| !ca_classes.class(id).is_global())
            .unwrap_or(false);
        suite.push(
            "Tab 3",
            "CA classes: big-7 global, Asseco regional",
            "7 L-GP; Asseco L-RP".into(),
            format!("Asseco regional = {asseco_regional}"),
            asseco_regional,
        );

        // --- Breakdowns (Figures 7, 14, 15, 16) ---
        let b7 = provider_breakdown(ctx, Layer::Hosting, &hosting_classes);
        let top_cf = b7.stacks.first().map(|s| s.shares[0]).unwrap_or(0.0);
        let bottom_cf = b7.stacks.last().map(|s| s.shares[0]).unwrap_or(0.0);
        suite.push(
            "Fig 7",
            "Cloudflare share drives centralization ordering",
            "top country ~60%, bottom ~14%".into(),
            format!("{:.0}% vs {:.0}%", 100.0 * top_cf, 100.0 * bottom_cf),
            top_cf > bottom_cf + 0.2,
        );
        let b15 = ca_breakdown(ctx, &ca_classes);
        let min_big7 = b15
            .stacks
            .iter()
            .map(|s| s.shares[..7].iter().sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        suite.push(
            "Fig 15",
            "7 large CAs dominate everywhere",
            "80-99.7% per country".into(),
            format!("min {:.0}%", 100.0 * min_big7),
            min_big7 > 0.6,
        );
        let b16 = tld_breakdown(ctx);
        let us_com = b16.share("US", "com").unwrap_or(0.0);
        suite.push(
            "Fig 16 / App B",
            ".com dominates the US TLD mix",
            "77%".into(),
            format!("{:.0}%", 100.0 * us_com),
            us_com > 0.6,
        );
        // DNS breakdown (Figure 14) exists for every country.
        let b14 = provider_breakdown(ctx, Layer::Dns, &dns_classes);
        suite.push(
            "Fig 14",
            "DNS class breakdown computed for all countries",
            "150 countries".into(),
            format!("{} countries", b14.stacks.len()),
            b14.stacks.len() == 150,
        );

        // --- Correlations (§5.2, §5.3.1, §6, App B) ---
        let corr = class_correlations(ctx, Layer::Hosting, &hosting_classes);
        let rho_xl = corr.s_vs_xlgp.map(|c| c.rho).unwrap_or(0.0);
        suite.push(
            "§5.2",
            "S vs XL-GP share",
            "rho = 0.90 (strong)".into(),
            format!("rho = {rho_xl:.2}"),
            rho_xl > 0.7,
        );
        let rho_l = corr.s_vs_lgp.map(|c| c.rho).unwrap_or(1.0);
        suite.push(
            "§5.2",
            "S vs other L-GP share (weak)",
            "rho = 0.19 (poor)".into(),
            format!("rho = {rho_l:.2}"),
            rho_l.abs() < rho_xl.abs(),
        );
        let rho_lrp = corr.s_vs_lrp.map(|c| c.rho).unwrap_or(0.0);
        suite.push(
            "§5.2",
            "S vs L-RP share (negative)",
            "rho = -0.72 (moderate)".into(),
            format!("rho = {rho_lrp:.2}"),
            rho_lrp < -0.3,
        );
        let rho_ins = corr.s_vs_insularity.map(|c| c.rho).unwrap_or(0.0);
        suite.push(
            "§5.3.1",
            "S vs insularity (negative)",
            "rho = -0.61 (moderate)".into(),
            format!("rho = {rho_ins:.2}"),
            rho_ins < -0.2,
        );
        let rho_hd = layer_score_correlation(ctx, Layer::Hosting, Layer::Dns)
            .map(|c| c.rho)
            .unwrap_or(0.0);
        suite.push(
            "§6.1",
            "hosting and DNS centralization track",
            "similar distributions".into(),
            format!("rho = {rho_hd:.2}"),
            rho_hd > 0.8,
        );
        let rho_tld = hosting_vs_tld_insularity(ctx).map(|c| c.rho).unwrap_or(0.0);
        suite.push(
            "App B",
            "hosting insularity vs TLD insularity",
            "rho = 0.70 (moderate)".into(),
            format!("rho = {rho_tld:.2}"),
            rho_tld > 0.35,
        );

        // --- Insularity (§5.3.1, §7.2, Figures 10/11/13/20-22) ---
        let ins_host = insularity_table(ctx, Layer::Hosting);
        let top4: Vec<&str> = ins_host.rows.iter().take(4).map(|r| r.code).collect();
        suite.push(
            "Fig 20",
            "hosting insularity top: US, IR, CZ, RU",
            "92.1% / 64.8% / 54.5% / 51.1%".into(),
            format!("{top4:?} ({:.0}%)", 100.0 * ins_host.rows[0].insularity),
            top4[0] == "US"
                && ["IR", "CZ", "RU"]
                    .iter()
                    .all(|c| ins_host.row(c).map(|r| r.rank <= 15).unwrap_or(false)),
        );
        let ins_ca = insularity_table(ctx, Layer::Ca);
        suite.push(
            "Fig 13",
            "few countries have domestic CA usage",
            "24 countries".into(),
            format!("{} countries", ins_ca.countries_with_nonzero()),
            (5..=45).contains(&ins_ca.countries_with_nonzero()),
        );
        let ins_tld = insularity_table(ctx, Layer::Tld);
        let tld_mean: f64 =
            ins_tld.rows.iter().map(|r| r.insularity).sum::<f64>() / ins_tld.rows.len() as f64;
        let host_mean: f64 =
            ins_host.rows.iter().map(|r| r.insularity).sum::<f64>() / ins_host.rows.len() as f64;
        suite.push(
            "Fig 11",
            "countries are most insular at the TLD layer",
            "TLD CDF right of other layers".into(),
            format!("mean {:.2} vs hosting {:.2}", tld_mean, host_mean),
            tld_mean > host_mean,
        );

        // --- Regional (Figure 8) ---
        let hq = continent_matrix(ctx, Attribution::HostingHq);
        let af_ext = crate::regional::africa_external_reliance(&hq);
        suite.push(
            "Fig 8a",
            "Africa relies on N. American + European providers",
            "dominant share".into(),
            format!("{:.0}%", 100.0 * af_ext),
            af_ext > 0.6,
        );
        let ip = continent_matrix(ctx, Attribution::IpGeo);
        let anycast_mean: f64 = (0..6).map(|r| ip.share[r][6]).sum::<f64>() / 6.0;
        suite.push(
            "Fig 8b",
            "anycast + regional serving visible in IP geolocation",
            "NA-provider content served in-region".into(),
            format!("mean anycast {:.0}%", 100.0 * anycast_mean),
            anycast_mean > 0.05,
        );
        let ns = continent_matrix(ctx, Attribution::NsGeo);
        let ns_anycast: f64 = (0..6).map(|r| ns.share[r][6]).sum::<f64>() / 6.0;
        suite.push(
            "Fig 8c",
            "anycast heavy in nameserver infrastructure",
            "higher than hosting".into(),
            format!("mean anycast {:.0}%", 100.0 * ns_anycast),
            ns_anycast > 0.05,
        );
        let subs = subregion_summary(ctx);
        suite.push(
            "Fig 10",
            "subregion insularity summary computed",
            "all subregions".into(),
            format!("{} subregions", subs.len()),
            subs.iter().map(|s| s.countries).sum::<usize>() == 150,
        );

        // --- Figures 4 and 12 ---
        let f4 = fig4_usage_endemicity(ctx, "Cloudflare", "Beget");
        let f4_ok = f4.len() == 2 && f4[0].endemicity_ratio < f4[1].endemicity_ratio;
        suite.push(
            "Fig 4",
            "global provider larger + less endemic than regional",
            "Cloudflare vs Beget-like".into(),
            f4.iter()
                .map(|f| format!("{}: U={:.0} E_R={:.2}", f.name, f.usage, f.endemicity_ratio))
                .collect::<Vec<_>>()
                .join("; "),
            f4_ok,
        );
        let f12 = fig12_histograms(ctx);
        let marker_host = f12.layers[0].2.unwrap_or(0.0);
        let hosting_mean = hosting.summary.as_ref().map(|s| s.mean).unwrap_or(f64::NAN);
        let marker_ok = (marker_host - hosting_mean).abs() < 0.08;
        suite.push(
            "Fig 12",
            "global-top marker representative for hosting",
            "near the mean".into(),
            format!("marker {marker_host:.3} vs mean {hosting_mean:.3}"),
            marker_ok,
        );

        // --- Case studies (§5.3.3) ---
        let cases = foreign_dependence_cases(ctx, Layer::Hosting, 0.10);
        let ru_cases = cases.iter().filter(|c| c.on == "RU").count();
        suite.push(
            "§5.3.3",
            "CIS states depend on Russian providers",
            "TM 33%, TJ 23%, KG 22%, KZ 21%, BY 18%".into(),
            format!(
                "{} RU cases; TM {:.0}%",
                ru_cases,
                100.0 * dependence_on(ctx, "TM", "RU", Layer::Hosting)
            ),
            ru_cases >= 5 && dependence_on(ctx, "TM", "RU", Layer::Hosting) > 0.15,
        );
        suite.push(
            "§5.3.3",
            "France serves DOM + former colonies",
            "RE 36%, GP 34%, MQ 35%, BF 21%".into(),
            format!(
                "RE {:.0}%, BF {:.0}%",
                100.0 * dependence_on(ctx, "RE", "FR", Layer::Hosting),
                100.0 * dependence_on(ctx, "BF", "FR", Layer::Hosting)
            ),
            dependence_on(ctx, "RE", "FR", Layer::Hosting) > 0.2,
        );
        suite.push(
            "§5.3.3",
            "Slovakia on Czechia",
            "26%".into(),
            format!(
                "{:.0}%",
                100.0 * dependence_on(ctx, "SK", "CZ", Layer::Hosting)
            ),
            dependence_on(ctx, "SK", "CZ", Layer::Hosting) > 0.15,
        );
        if let Some(persian) = afghan_persian_case(ctx) {
            suite.push(
                "§5.3.3",
                "Afghan Persian sites hosted in Iran",
                "31.4% Persian, 60.8% of them in Iran".into(),
                format!(
                    "{:.1}% Persian, {:.1}% in Iran",
                    100.0 * persian.persian_fraction,
                    100.0 * persian.persian_iran_hosted
                ),
                persian.persian_fraction > 0.2 && persian.persian_iran_hosted > 0.35,
            );
        }

        // --- Appendix B: TLD deep-dive ---
        let ru_adoption = crate::tld_appendix::external_cc_adoption(ctx, "RU", 0.05);
        suite.push(
            "App B",
            ".ru used across the CIS",
            "KG 22%, TJ, TM, KZ, BY ...".into(),
            format!(
                "{} countries, top {} at {:.0}%",
                ru_adoption.len(),
                ru_adoption.first().map(|u| u.country).unwrap_or("-"),
                100.0 * ru_adoption.first().map(|u| u.share).unwrap_or(0.0)
            ),
            ru_adoption.len() >= 5,
        );
        let fr_adoption = crate::tld_appendix::external_cc_adoption(ctx, "FR", 0.05);
        let fr_outranking = fr_adoption.iter().filter(|u| u.outranks_local).count();
        suite.push(
            "App B",
            ".fr more popular than local ccTLDs in the DOM + former colonies",
            "14 countries use .fr; several above their own ccTLD".into(),
            format!(
                "{} users, {} outrank local",
                fr_adoption.len(),
                fr_outranking
            ),
            fr_adoption.len() >= 5 && fr_outranking >= 3,
        );
        let ext_corr = crate::tld_appendix::external_cc_vs_centralization(ctx)
            .map(|c| c.rho)
            .unwrap_or(0.0);
        suite.push(
            "Fig 16",
            "external-ccTLD use correlates with lower TLD centralization",
            "strong negative".into(),
            format!("rho = {ext_corr:.2}"),
            ext_corr < -0.3,
        );

        // --- Longitudinal (§5.4) ---
        if let Some(evolved) = evolved {
            let rep = compare(ctx, evolved);
            let rho = rep.score_correlation.map(|c| c.rho).unwrap_or(0.0);
            suite.push(
                "§5.4",
                "2023-2025 score stability",
                "rho = 0.98".into(),
                format!("rho = {rho:.3}"),
                rho > 0.9,
            );
            suite.push(
                "§5.4",
                "Cloudflare adoption up; Jaccard churn",
                "+3.8 pts avg; Jaccard ~0.37".into(),
                format!(
                    "+{:.1} pts; Jaccard {:.2}",
                    rep.mean_cloudflare_delta_pts, rep.mean_jaccard
                ),
                rep.mean_cloudflare_delta_pts > 1.0 && (0.2..0.6).contains(&rep.mean_jaccard),
            );
            let tm = rep
                .delta("TM")
                .map(|d| d.cloudflare_delta_pts)
                .unwrap_or(0.0);
            let ru = rep
                .delta("RU")
                .map(|d| d.cloudflare_delta_pts)
                .unwrap_or(9.0);
            suite.push(
                "§5.4",
                "extremes: TM +11.3 pts, RU -2.0 pts",
                "+11.3 / -2.0".into(),
                format!("TM {tm:+.1}, RU {ru:+.1}"),
                tm > 6.0 && ru <= 0.5,
            );
        }

        // --- Vantage validation (§3.4) ---
        if let Some(dep) = deployment {
            let v = validate_vantage(ctx, dep, 60, 5);
            let rho = v.correlation.map(|c| c.rho).unwrap_or(0.0);
            suite.push(
                "§3.4",
                "vantage-point validation (RIPE analogue)",
                "rho = 0.96".into(),
                format!("rho = {rho:.3} over {} countries", v.scores.len()),
                rho > 0.9,
            );
        }

        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn suite_runs_and_mostly_passes() {
        let c = ctx();
        let suite = ExperimentSuite::run(&c, None, None);
        assert!(suite.total() >= 25, "experiments: {}", suite.total());
        let failed: Vec<&ExperimentResult> = suite.results.iter().filter(|r| !r.pass).collect();
        assert!(
            failed.is_empty(),
            "failing experiments: {:#?}",
            failed
                .iter()
                .map(|r| format!("{}: {} ({})", r.id, r.description, r.measured))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn markdown_renders() {
        let c = ctx();
        let suite = ExperimentSuite::run(&c, None, None);
        let md = suite.to_markdown();
        assert!(md.contains("| Fig 2 |"));
        assert!(md.lines().count() >= suite.total() + 2);
    }

    /// Regenerating the report must be byte-identical: two fresh contexts
    /// (two cube builds, so two parallel passes at whatever thread count
    /// this host has), two suite runs, one answer. Guards every ordering
    /// and parallelism decision in the engine at once.
    #[test]
    fn report_regeneration_is_byte_identical() {
        let first = ExperimentSuite::run(&ctx(), None, None).to_markdown();
        let second = ExperimentSuite::run(&ctx(), None, None).to_markdown();
        assert_eq!(first, second);
    }
}
