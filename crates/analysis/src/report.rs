//! Rendering: markdown tables for the terminal/README and JSON export for
//! the data release (the paper publishes its dataset; `webdep` exports the
//! regenerated equivalent).

use crate::centralization::LayerTable;
use crate::insularity::InsularityTable;
use crate::regional::SubregionSummary;
use serde::Serialize;
use std::fmt::Write as _;

/// Renders a layer table as markdown (top `head` + bottom `tail` rows).
///
/// Renders a stub (header only) when the layer measured nothing — an
/// all-faults world still produces a report, it just says so.
pub fn layer_table_markdown(t: &LayerTable, head: usize, tail: usize) -> String {
    let mut out = String::new();
    let Some(summary) = &t.summary else {
        let _ = writeln!(
            out,
            "### {} centralization (unmeasured, coverage {:.1}%)\n",
            t.layer_name,
            100.0 * t.mean_coverage
        );
        return out;
    };
    let _ = writeln!(
        out,
        "### {} centralization (mean {:.4}, var {:.5}, median country {}, coverage {:.1}%)\n",
        t.layer_name,
        summary.mean,
        summary.var,
        t.median_country.unwrap_or("-"),
        100.0 * t.mean_coverage
    );
    let _ = writeln!(
        out,
        "| rank | country | S | paper S | top share | providers |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    let render = |out: &mut String, r: &crate::centralization::CountryScore| {
        let _ = writeln!(
            out,
            "| {} | {} ({}) | {:.4} | {:.4} | {:.1}% | {} |",
            r.rank,
            r.code,
            r.continent,
            r.s,
            r.paper_s,
            100.0 * r.top_share,
            r.num_providers
        );
    };
    for r in t.rows.iter().take(head) {
        render(&mut out, r);
    }
    if t.rows.len() > head + tail {
        let _ = writeln!(out, "| ... | | | | | |");
    }
    for r in t.rows.iter().skip(t.rows.len().saturating_sub(tail)) {
        render(&mut out, r);
    }
    out
}

/// Renders an insularity table as markdown (top rows only).
pub fn insularity_markdown(t: &InsularityTable, head: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} insularity\n", t.layer_name);
    let _ = writeln!(out, "| rank | country | insularity | top dependence |");
    let _ = writeln!(out, "|---|---|---|---|");
    for r in t.rows.iter().take(head) {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {} ({:.1}%) |",
            r.rank,
            r.code,
            100.0 * r.insularity,
            r.top_dependence.0,
            100.0 * r.top_dependence.1
        );
    }
    out
}

/// Renders the subregion summary (Figures 9/10 as a table).
pub fn subregion_markdown(rows: &[SubregionSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| subregion | n | S host | S dns | S ca | S tld | ins host | ins tld |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    let mut sorted: Vec<&SubregionSummary> = rows.iter().collect();
    sorted.sort_by(|a, b| b.mean_s[0].partial_cmp(&a.mean_s[0]).expect("finite"));
    for s in sorted {
        let _ = writeln!(
            out,
            "| {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.1}% | {:.1}% |",
            s.subregion,
            s.countries,
            s.mean_s[0],
            s.mean_s[1],
            s.mean_s[2],
            s.mean_s[3],
            100.0 * s.mean_insularity[0],
            100.0 * s.mean_insularity[3]
        );
    }
    out
}

/// Serializes any result to pretty JSON (the data-release format).
pub fn to_json<T: Serialize>(value: &T) -> serde_json::Result<String> {
    serde_json::to_string_pretty(value)
}

/// Writes a JSON export to `path`.
pub fn write_json<T: Serialize>(value: &T, path: &std::path::Path) -> std::io::Result<()> {
    let json = to_json(value).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralization::layer_table;
    use crate::ctx::testutil::ctx;
    use crate::insularity::insularity_table;
    use crate::regional::subregion_summary;
    use webdep_webgen::Layer;

    #[test]
    fn markdown_renders_head_and_tail() {
        let c = ctx();
        let t = layer_table(&c, Layer::Hosting);
        let md = layer_table_markdown(&t, 3, 2);
        assert!(md.contains("| 1 |"));
        assert!(md.contains("| 150 |"));
        assert!(md.contains("..."));
        assert!(md.lines().count() < 12);
    }

    /// An all-faults world produces empty tables; rendering must degrade
    /// to a stub instead of panicking.
    #[test]
    fn markdown_renders_unmeasured_stub() {
        let t = LayerTable {
            layer_name: "hosting",
            rows: vec![],
            summary: None,
            median_country: None,
            global_top_score: None,
            mean_coverage: 0.0,
        };
        let md = layer_table_markdown(&t, 3, 2);
        assert!(md.contains("unmeasured"), "{md}");
        assert!(md.contains("coverage 0.0%"), "{md}");
    }

    #[test]
    fn insularity_markdown_renders() {
        let c = ctx();
        let t = insularity_table(&c, Layer::Hosting);
        let md = insularity_markdown(&t, 5);
        assert!(md.contains("US"));
        assert!(md.contains("%"));
    }

    #[test]
    fn subregion_markdown_renders_sorted() {
        let c = ctx();
        let rows = subregion_summary(&c);
        let md = subregion_markdown(&rows);
        assert!(md.contains("South-eastern Asia"));
        // The first data row is the most centralized subregion.
        let first_data = md.lines().nth(2).unwrap();
        assert!(
            first_data.contains("Asia") || first_data.contains("Africa"),
            "{first_data}"
        );
    }

    #[test]
    fn json_roundtrips() {
        let c = ctx();
        let t = layer_table(&c, Layer::Ca);
        let json = to_json(&t).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 150);
        assert_eq!(parsed["layer_name"], "ca");
    }
}
