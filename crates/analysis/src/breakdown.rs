//! Per-country class-share stacks (Figures 7, 14, 15, 16).

use crate::classes::{Classification, ProviderClass};
use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_webgen::provider::TldKind;
use webdep_webgen::{Layer, COUNTRIES};

/// One country's stacked shares, category order fixed per figure.
#[derive(Debug, Clone, Serialize)]
pub struct CountryStack {
    /// Country code.
    pub code: &'static str,
    /// The country's measured centralization (stacks are sorted by it).
    pub s: f64,
    /// Share per category, matching the breakdown's `categories`.
    pub shares: Vec<f64>,
}

/// A full breakdown figure: categories plus per-country stacks sorted by
/// descending centralization (the paper's x-axis order).
#[derive(Debug, Clone, Serialize)]
pub struct Breakdown {
    /// Category labels, stack order.
    pub categories: Vec<String>,
    /// Country stacks sorted by descending `s`.
    pub stacks: Vec<CountryStack>,
}

/// Provider-class breakdown for hosting or DNS (Figures 7 and 14):
/// Cloudflare and Amazon split out of XL-GP, then the class ladder.
pub fn provider_breakdown(
    ctx: &AnalysisCtx<'_>,
    layer: Layer,
    classes: &Classification,
) -> Breakdown {
    assert!(
        matches!(layer, Layer::Hosting | Layer::Dns),
        "provider breakdown applies to hosting/DNS"
    );
    let cf = ctx.world.universe.provider_by_name("Cloudflare");
    let amazon = ctx.world.universe.provider_by_name("Amazon");
    let categories = vec![
        "Cloudflare".to_string(),
        "Amazon".to_string(),
        "L-GP".to_string(),
        "L-GP (R)".to_string(),
        "M-GP".to_string(),
        "S-GP".to_string(),
        "L-RP".to_string(),
        "S-RP".to_string(),
        "XS-RP".to_string(),
    ];
    let stacks = build_stacks(ctx, layer, categories.len(), |owner| {
        if Some(owner) == cf {
            return 0;
        }
        if Some(owner) == amazon {
            return 1;
        }
        match classes.class(owner) {
            ProviderClass::XlGp | ProviderClass::LGp => 2,
            ProviderClass::LGpR => 3,
            ProviderClass::MGp => 4,
            ProviderClass::SGp => 5,
            ProviderClass::LRp => 6,
            ProviderClass::SRp => 7,
            ProviderClass::XsRp => 8,
        }
    });
    Breakdown { categories, stacks }
}

/// CA breakdown (Figure 15): the seven large global CAs by name, then the
/// class ladder.
pub fn ca_breakdown(ctx: &AnalysisCtx<'_>, classes: &Classification) -> Breakdown {
    let big = [
        "Let's Encrypt",
        "DigiCert",
        "Sectigo",
        "Google Trust Services",
        "Amazon Trust Services",
        "GlobalSign",
        "GoDaddy",
    ];
    let big_ids: Vec<Option<u32>> = big
        .iter()
        .map(|n| ctx.world.universe.ca_by_name(n))
        .collect();
    let mut categories: Vec<String> = big.iter().map(|s| s.to_string()).collect();
    categories.extend(["M-GP", "L-RP", "S-RP", "XS-RP"].map(String::from));
    let stacks = build_stacks(ctx, Layer::Ca, categories.len(), |owner| {
        if let Some(pos) = big_ids.iter().position(|&id| id == Some(owner)) {
            return pos;
        }
        match classes.class(owner) {
            ProviderClass::XlGp | ProviderClass::LGp | ProviderClass::MGp | ProviderClass::SGp => 7,
            ProviderClass::LGpR | ProviderClass::LRp => 8,
            ProviderClass::SRp => 9,
            ProviderClass::XsRp => 10,
        }
    });
    Breakdown { categories, stacks }
}

/// TLD breakdown (Figure 16): com / global TLDs / local ccTLD / external
/// ccTLDs.
pub fn tld_breakdown(ctx: &AnalysisCtx<'_>) -> Breakdown {
    let categories = vec![
        "com".to_string(),
        "Global TLDs".to_string(),
        "Local ccTLD".to_string(),
        "External ccTLDs".to_string(),
    ];
    let mut stacks = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate() {
        let counts = ctx.country_counts(ci, Layer::Tld);
        let total = ctx.country_total(ci, Layer::Tld);
        if total == 0 {
            continue;
        }
        let mut shares = vec![0.0; 4];
        for &(owner, c) in counts.iter() {
            let tld = ctx.world.universe.tld(owner);
            let cat = match &tld.kind {
                TldKind::Com => 0,
                TldKind::Global => 1,
                TldKind::Cc(cc) if cc == country.code => 2,
                TldKind::Cc(_) => 3,
            };
            shares[cat] += c as f64 / total as f64;
        }
        let dist = ctx.country_dist(ci, Layer::Tld).expect("non-empty");
        stacks.push(CountryStack {
            code: country.code,
            s: webdep_core::centralization::centralization_score(&dist),
            shares,
        });
    }
    stacks.sort_by(|a, b| b.s.partial_cmp(&a.s).expect("finite"));
    Breakdown { categories, stacks }
}

fn build_stacks<F: Fn(u32) -> usize>(
    ctx: &AnalysisCtx<'_>,
    layer: Layer,
    n_categories: usize,
    category_of: F,
) -> Vec<CountryStack> {
    let mut stacks = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate() {
        let counts = ctx.country_counts(ci, layer);
        let total = ctx.country_total(ci, layer);
        if total == 0 {
            continue;
        }
        let mut shares = vec![0.0; n_categories];
        for &(owner, c) in counts.iter() {
            shares[category_of(owner)] += c as f64 / total as f64;
        }
        let dist = ctx.country_dist(ci, layer).expect("non-empty");
        stacks.push(CountryStack {
            code: country.code,
            s: webdep_core::centralization::centralization_score(&dist),
            shares,
        });
    }
    stacks.sort_by(|a, b| b.s.partial_cmp(&a.s).expect("finite"));
    stacks
}

impl Breakdown {
    /// A country's stack.
    pub fn stack(&self, code: &str) -> Option<&CountryStack> {
        self.stacks.iter().find(|s| s.code == code)
    }

    /// Share of a category in a country.
    pub fn share(&self, code: &str, category: &str) -> Option<f64> {
        let idx = self.categories.iter().position(|c| c == category)?;
        Some(self.stack(code)?.shares[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::classify;
    use crate::ctx::testutil::ctx;

    #[test]
    fn hosting_stack_shares_sum_to_one() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let b = provider_breakdown(&c, Layer::Hosting, &classes);
        assert_eq!(b.stacks.len(), 150);
        for s in &b.stacks {
            let sum: f64 = s.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", s.code);
        }
        // Sorted by descending centralization.
        assert!(b.stacks.windows(2).all(|w| w[0].s >= w[1].s));
    }

    #[test]
    fn cloudflare_drives_centralized_countries() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let b = provider_breakdown(&c, Layer::Hosting, &classes);
        // The most centralized country's Cloudflare share dwarfs the least
        // centralized one's.
        let top_cf = b.stacks.first().unwrap().shares[0];
        let bottom_cf = b.stacks.last().unwrap().shares[0];
        assert!(top_cf > bottom_cf + 0.2, "{top_cf} vs {bottom_cf}");
        // Iran leans on regional classes (hatched bars in the paper).
        let ir = b.stack("IR").unwrap();
        let regional: f64 = ir.shares[6..].iter().sum();
        assert!(regional > 0.4, "IR regional share {regional}");
    }

    #[test]
    fn ca_breakdown_dominated_by_large_globals() {
        let c = ctx();
        let classes = classify(&c, Layer::Ca);
        let b = ca_breakdown(&c, &classes);
        for s in &b.stacks {
            let big7: f64 = s.shares[..7].iter().sum();
            assert!(big7 > 0.60, "{}: big-7 share {big7}", s.code);
            let sum: f64 = s.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Poland's regional CA usage shows up outside the big seven.
        let pl = b.stack("PL").unwrap();
        let non_big: f64 = pl.shares[7..].iter().sum();
        assert!(non_big > 0.05, "PL regional CA share {non_big}");
    }

    #[test]
    fn tld_breakdown_categories() {
        let c = ctx();
        let b = tld_breakdown(&c);
        let us = b.stack("US").unwrap();
        assert!(us.shares[0] > 0.6, "US .com {}", us.shares[0]);
        let de = b.stack("DE").unwrap();
        assert!(de.shares[2] > 0.3, "DE local ccTLD {}", de.shares[2]);
        let kg = b.stack("KG").unwrap();
        assert!(kg.shares[3] > 0.1, "KG external ccTLD {}", kg.shares[3]);
        for s in &b.stacks {
            let sum: f64 = s.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn share_accessor() {
        let c = ctx();
        let b = tld_breakdown(&c);
        assert!(b.share("US", "com").unwrap() > 0.5);
        assert!(b.share("US", "nope").is_none());
        assert!(b.share("XX", "com").is_none());
    }
}
