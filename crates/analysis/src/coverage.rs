//! Measurement coverage: what fraction of each country's toplist was
//! actually observed at each layer.
//!
//! A centralization score computed from 40% of a toplist is a different
//! claim than one computed from all of it. Under fault injection (and in
//! real measurement, under outages) the pipeline degrades gracefully
//! instead of aborting — so every analysis table carries coverage, and
//! this module aggregates it into the per-layer model the report and the
//! fault-sweep bench read.

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use std::fmt::Write as _;
use webdep_webgen::{Layer, COUNTRIES};

/// One layer's coverage across all 150 countries.
#[derive(Debug, Clone, Serialize)]
pub struct LayerCoverage {
    /// The layer.
    pub layer_name: &'static str,
    /// Fraction of each country's toplist observed, `COUNTRIES` order.
    pub per_country: Vec<f64>,
    /// Toplist entries observed at this layer, summed over countries.
    pub observed: u64,
    /// Toplist entries expected (sum of toplist lengths).
    pub expected: u64,
}

impl LayerCoverage {
    /// Site-weighted coverage over all countries.
    pub fn fraction(&self) -> f64 {
        if self.expected == 0 {
            0.0
        } else {
            self.observed as f64 / self.expected as f64
        }
    }

    /// The worst-covered country and its fraction.
    pub fn min_country(&self) -> Option<(&'static str, f64)> {
        self.per_country
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("fractions are finite"))
            .map(|(ci, &f)| (COUNTRIES[ci].code, f))
    }

    /// Countries with zero observations at this layer.
    pub fn dark_countries(&self) -> usize {
        self.per_country.iter().filter(|&&f| f == 0.0).count()
    }
}

/// Coverage for every layer, in [`Layer::ALL`] order.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageModel {
    /// Per-layer coverage, indexed by [`Layer::index`].
    pub layers: Vec<LayerCoverage>,
}

/// Builds the coverage model from an analysis context.
pub fn coverage_model(ctx: &AnalysisCtx<'_>) -> CoverageModel {
    let layers = Layer::ALL
        .iter()
        .map(|&layer| {
            let mut per_country = Vec::with_capacity(COUNTRIES.len());
            let (mut observed, mut expected) = (0u64, 0u64);
            for ci in 0..COUNTRIES.len() {
                per_country.push(ctx.country_coverage(ci, layer));
                observed += ctx.country_total(ci, layer);
                expected += ctx.toplist_len(ci) as u64;
            }
            LayerCoverage {
                layer_name: layer.name(),
                per_country,
                observed,
                expected,
            }
        })
        .collect();
    CoverageModel { layers }
}

impl CoverageModel {
    /// One layer's coverage.
    pub fn layer(&self, layer: Layer) -> &LayerCoverage {
        &self.layers[layer.index()]
    }

    /// Renders the model as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out =
            String::from("| layer | coverage | worst country | dark |\n|---|---:|---|---:|\n");
        for l in &self.layers {
            let (code, frac) = l.min_country().unwrap_or(("-", 0.0));
            let _ = writeln!(
                out,
                "| {} | {:.1}% | {} ({:.1}%) | {} |",
                l.layer_name,
                100.0 * l.fraction(),
                code,
                100.0 * frac,
                l.dark_countries()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;
    use crate::ctx::AnalysisCtx;

    #[test]
    fn clean_fixture_is_fully_covered() {
        let c = ctx();
        let m = coverage_model(&c);
        assert_eq!(m.layers.len(), Layer::ALL.len());
        for l in &m.layers {
            assert!(l.fraction() > 0.99, "{}: {}", l.layer_name, l.fraction());
            assert_eq!(l.dark_countries(), 0, "{}", l.layer_name);
            assert_eq!(l.per_country.len(), COUNTRIES.len());
            assert_eq!(l.expected, l.observed, "{} loses sites", l.layer_name);
        }
        let md = m.to_markdown();
        assert!(md.contains("| hosting | 100.0% |"), "{md}");
    }

    #[test]
    fn empty_dataset_reports_zero_coverage() {
        use webdep_pipeline::{MeasuredDataset, SiteObservation};
        let (world, _) = crate::ctx::testutil::fixture();
        // All observations blank: every layer dark everywhere.
        let ds = MeasuredDataset {
            observations: world
                .sites
                .iter()
                .map(|s| SiteObservation::blank(&s.domain, &s.language))
                .collect(),
            toplists: world.toplists.clone(),
            global_top: world.global_top.clone(),
            label: "blank".into(),
        };
        let c = AnalysisCtx::new(world, &ds);
        let m = coverage_model(&c);
        assert_eq!(m.layer(Layer::Hosting).fraction(), 0.0);
        assert_eq!(m.layer(Layer::Hosting).dark_countries(), COUNTRIES.len());
        // TLD labels still parse from the domain, so that layer survives.
        assert!(m.layer(Layer::Tld).fraction() > 0.99);
    }
}
