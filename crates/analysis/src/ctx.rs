//! The analysis context: measured data joined with entity metadata.

use crate::cube::DependenceCube;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use webdep_core::CountDist;
use webdep_pipeline::{MeasuredDataset, SiteObservation};
use webdep_stats::{
    bootstrap_ci_indexed, bootstrap_ci_indexed_abortable, bootstrap_ci_indexed_scratch,
    BootstrapAborted, BootstrapCi, BootstrapScratch, Resample,
};
use webdep_webgen::{Layer, World, COUNTRIES};

/// Joins a [`MeasuredDataset`] with the [`World`]'s entity metadata.
///
/// Every per-layer tally keys owners by a dense `u32`: provider org id for
/// hosting/DNS, CA owner id for the CA layer, and TLD id for the TLD layer
/// (observation TLD labels are interned through the universe).
///
/// [`AnalysisCtx::new`] builds a [`DependenceCube`] up front — one parallel
/// pass over the observations — and every accessor below reads borrowed
/// cube slices. [`AnalysisCtx::new_legacy`] keeps the original
/// tally-on-demand behavior; it exists only as the measured baseline for
/// `bench-snapshot` and the equivalence tests, and re-walks a country's
/// toplist on every call.
pub struct AnalysisCtx<'a> {
    /// The generating world (entity names, HQ countries, TLD kinds).
    pub world: &'a World,
    /// The measured dataset under analysis.
    pub ds: &'a MeasuredDataset,
    tld_ids: HashMap<String, u32>,
    cube: CubeSlot<'a>,
}

/// How a context holds its cube: owned (the one-shot paths), borrowed (a
/// long-lived snapshot shared across many short-lived contexts, as in
/// `webdep serve`), or absent (the legacy tally-on-demand baseline).
enum CubeSlot<'a> {
    None,
    Owned(Box<DependenceCube>),
    Borrowed(&'a DependenceCube),
}

impl CubeSlot<'_> {
    fn get(&self) -> Option<&DependenceCube> {
        match self {
            CubeSlot::None => None,
            CubeSlot::Owned(c) => Some(c),
            CubeSlot::Borrowed(c) => Some(c),
        }
    }
}

impl<'a> AnalysisCtx<'a> {
    /// Builds a context backed by a [`DependenceCube`].
    pub fn new(world: &'a World, ds: &'a MeasuredDataset) -> Self {
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        let cube = DependenceCube::build(world, ds, &tld_ids);
        AnalysisCtx {
            world,
            ds,
            tld_ids,
            cube: CubeSlot::Owned(Box::new(cube)),
        }
    }

    /// Builds a context that tallies on demand (the pre-cube behavior).
    ///
    /// Baseline-only: every `country_counts`/`owner_share` call re-walks
    /// the country's observations. Kept so benches can time "before" and
    /// tests can assert the cube reproduces it exactly.
    pub fn new_legacy(world: &'a World, ds: &'a MeasuredDataset) -> Self {
        let tld_ids = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        AnalysisCtx {
            world,
            ds,
            tld_ids,
            cube: CubeSlot::None,
        }
    }

    /// Builds a context around a cube that was constructed elsewhere —
    /// the streaming path, where a [`crate::cube::CubeBuilder`] folded
    /// chunks as they were read and no resident observation vector exists.
    ///
    /// `ds` may be *hollow* (empty `observations`) as long as its toplists
    /// are populated; every cube-backed accessor works, but accessors that
    /// read raw observations (and the legacy fallbacks) must not be used
    /// against a hollow dataset.
    pub fn with_cube(world: &'a World, ds: &'a MeasuredDataset, cube: DependenceCube) -> Self {
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        AnalysisCtx {
            world,
            ds,
            tld_ids,
            cube: CubeSlot::Owned(Box::new(cube)),
        }
    }

    /// Builds a context that *borrows* a cube owned elsewhere — the serving
    /// path, where one immutable epoch snapshot is shared by many
    /// concurrent readers and each request builds a throwaway context
    /// without copying the cube. Same hollow-dataset caveats as
    /// [`AnalysisCtx::with_cube`].
    pub fn with_cube_ref(
        world: &'a World,
        ds: &'a MeasuredDataset,
        cube: &'a DependenceCube,
    ) -> Self {
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        AnalysisCtx {
            world,
            ds,
            tld_ids,
            cube: CubeSlot::Borrowed(cube),
        }
    }

    /// The dependence cube, when this context was built with one.
    pub fn cube(&self) -> Option<&DependenceCube> {
        self.cube.get()
    }

    /// The measured owner of an observation at a layer, if that layer
    /// measured successfully.
    pub fn owner_of(&self, obs: &SiteObservation, layer: Layer) -> Option<u32> {
        match layer {
            Layer::Hosting => obs.hosting_org,
            Layer::Dns => obs.dns_org,
            Layer::Ca => obs.ca_owner,
            Layer::Tld => self.tld_ids.get(&obs.tld).copied(),
        }
    }

    /// The owner's display name.
    pub fn owner_name(&self, layer: Layer, owner: u32) -> &str {
        match layer {
            Layer::Hosting | Layer::Dns => &self.world.universe.provider(owner).name,
            Layer::Ca => &self.world.universe.ca(owner).name,
            Layer::Tld => &self.world.universe.tld(owner).label,
        }
    }

    /// The owner's home country, if it has one (`None` for global TLDs).
    pub fn owner_country(&self, layer: Layer, owner: u32) -> Option<&str> {
        match layer {
            Layer::Hosting | Layer::Dns => {
                Some(self.world.universe.provider(owner).country.as_str())
            }
            Layer::Ca => Some(self.world.universe.ca(owner).country.as_str()),
            Layer::Tld => self.world.universe.tld(owner).home_country(),
        }
    }

    /// The legacy tally: one HashMap pass over a country's observations.
    fn tally_counts(&self, country_idx: usize, layer: Layer) -> Vec<(u32, u64)> {
        let mut tally: HashMap<u32, u64> = HashMap::new();
        for obs in self.ds.country_observations(country_idx) {
            if let Some(owner) = self.owner_of(obs, layer) {
                *tally.entry(owner).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(u32, u64)> = tally.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Per-owner website counts for a country's layer, largest first
    /// (count descending, owner id ascending). Borrowed straight from the
    /// cube; only the legacy baseline allocates.
    pub fn country_counts(&self, country_idx: usize, layer: Layer) -> Cow<'_, [(u32, u64)]> {
        match self.cube.get() {
            Some(cube) => Cow::Borrowed(cube.layer(layer).sorted_counts(country_idx)),
            None => Cow::Owned(self.tally_counts(country_idx, layer)),
        }
    }

    /// The country's measured distribution as a [`CountDist`].
    pub fn country_dist(&self, country_idx: usize, layer: Layer) -> Option<Cow<'_, CountDist>> {
        match self.cube.get() {
            Some(cube) => cube.layer(layer).dist(country_idx).map(Cow::Borrowed),
            None => {
                let counts: Vec<u64> = self
                    .tally_counts(country_idx, layer)
                    .into_iter()
                    .map(|(_, c)| c)
                    .collect();
                CountDist::from_counts(counts).ok().map(Cow::Owned)
            }
        }
    }

    /// Total measured sites for a country's layer.
    pub fn country_total(&self, country_idx: usize, layer: Layer) -> u64 {
        match self.cube.get() {
            Some(cube) => cube.layer(layer).total(country_idx),
            None => self
                .tally_counts(country_idx, layer)
                .iter()
                .map(|&(_, c)| c)
                .sum(),
        }
    }

    /// Share of a country's measured sites belonging to `owner` at `layer`.
    ///
    /// O(1) against the cube (one dense lookup plus the precomputed row
    /// total). The legacy baseline re-tallies the country — the quadratic
    /// path this PR removed from production.
    pub fn owner_share(&self, country_idx: usize, layer: Layer, owner: u32) -> f64 {
        match self.cube.get() {
            Some(cube) => {
                let lc = cube.layer(layer);
                let total = lc.total(country_idx);
                if total == 0 {
                    return 0.0;
                }
                lc.count(country_idx, owner) as f64 / total as f64
            }
            None => {
                let counts = self.tally_counts(country_idx, layer);
                let total: u64 = counts.iter().map(|&(_, c)| c).sum();
                if total == 0 {
                    return 0.0;
                }
                counts
                    .iter()
                    .find(|&&(o, _)| o == owner)
                    .map(|&(_, c)| c as f64 / total as f64)
                    .unwrap_or(0.0)
            }
        }
    }

    /// The global-top tally for a layer, largest first (Figure 12's
    /// marker distribution).
    pub fn global_counts(&self, layer: Layer) -> Cow<'_, [(u32, u64)]> {
        match self.cube.get() {
            Some(cube) => Cow::Borrowed(cube.layer(layer).global_sorted()),
            None => {
                let mut tally: HashMap<u32, u64> = HashMap::new();
                for &oi in &self.ds.global_top {
                    let obs = &self.ds.observations[oi as usize];
                    if let Some(owner) = self.owner_of(obs, layer) {
                        *tally.entry(owner).or_insert(0) += 1;
                    }
                }
                let mut v: Vec<(u32, u64)> = tally.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                Cow::Owned(v)
            }
        }
    }

    /// The global-top distribution for a layer.
    pub fn global_dist(&self, layer: Layer) -> Option<Cow<'_, CountDist>> {
        match self.cube.get() {
            Some(cube) => cube.layer(layer).global_dist().map(Cow::Borrowed),
            None => {
                let counts: Vec<u64> = self.global_counts(layer).iter().map(|&(_, c)| c).collect();
                CountDist::from_counts(counts).ok().map(Cow::Owned)
            }
        }
    }

    /// Per-owner usage matrix for a layer: owner → usage percentage in each
    /// of the 150 countries (the raw material of usage curves, Figure 4).
    pub fn usage_matrix(&self, layer: Layer) -> HashMap<u32, Vec<f64>> {
        let mut m: HashMap<u32, Vec<f64>> = HashMap::new();
        for ci in 0..COUNTRIES.len() {
            let counts = self.country_counts(ci, layer);
            let total = self.country_total(ci, layer);
            if total == 0 {
                continue;
            }
            for &(owner, c) in counts.iter() {
                m.entry(owner).or_insert_with(|| vec![0.0; COUNTRIES.len()])[ci] =
                    100.0 * c as f64 / total as f64;
            }
        }
        m
    }

    /// [`AnalysisCtx::usage_matrix`] in a deterministic shape: one row per
    /// observed owner, ascending owner id. Consumers that feed clustering
    /// or reports should prefer this — HashMap iteration order is not
    /// stable across runs.
    pub fn usage_rows(&self, layer: Layer) -> Vec<(u32, Vec<f64>)> {
        let m = self.usage_matrix(layer);
        let mut rows: Vec<(u32, Vec<f64>)> = m.into_iter().collect();
        rows.sort_by_key(|&(owner, _)| owner);
        rows
    }

    /// Bootstrap confidence interval for a country's centralization score
    /// at a layer, resampling the cube's dense site-label array.
    ///
    /// Replicates draw indices into the label array and tally into a
    /// thread-local scratch row — zero allocation per replicate after the
    /// first on each worker thread. Deterministic per seed, independent of
    /// thread count. Returns `None` for an unmeasured country or for
    /// degenerate `replicates`/`level`.
    ///
    /// The legacy baseline resamples the same per-site owner sequence but
    /// pays the pre-cube per-replicate cost: a gathered sample, a HashMap
    /// tally, and a [`CountDist`] allocation for every replicate. Both
    /// paths draw identical index streams, so the intervals agree to
    /// floating-point summation order.
    pub fn score_ci(
        &self,
        country_idx: usize,
        layer: Layer,
        replicates: usize,
        level: f64,
        seed: u64,
    ) -> Option<BootstrapCi> {
        let Some(cube) = self.cube() else {
            let labels: Vec<u32> = self
                .ds
                .country_observations(country_idx)
                .filter_map(|obs| self.owner_of(obs, layer))
                .collect();
            return webdep_stats::bootstrap_ci(
                &labels,
                |sample: &[u32]| {
                    let mut tally: HashMap<u32, u64> = HashMap::new();
                    for &o in sample {
                        *tally.entry(o).or_insert(0) += 1;
                    }
                    let mut counts: Vec<u64> = tally.into_values().collect();
                    counts.sort_unstable_by(|a, b| b.cmp(a));
                    CountDist::from_counts(counts)
                        .map(|d| webdep_core::centralization_score(&d))
                        .unwrap_or(0.0)
                },
                replicates,
                level,
                seed,
            );
        };
        let lc = cube.layer(layer);
        let labels = lc.site_labels(country_idx);
        bootstrap_ci_indexed(
            labels,
            label_score_statistic(lc.owners().len()),
            replicates,
            level,
            seed,
        )
    }

    /// [`AnalysisCtx::score_ci`] with caller-provided bootstrap scratch:
    /// the serial, zero-steady-state-allocation variant for batched
    /// per-country-per-layer CI sweeps (one scratch reused across all 150
    /// countries instead of fresh index/statistic buffers per country).
    /// Identical results — both variants draw the same per-replicate index
    /// streams. Cube-backed contexts only.
    pub fn score_ci_scratch(
        &self,
        country_idx: usize,
        layer: Layer,
        replicates: usize,
        level: f64,
        seed: u64,
        scratch: &mut BootstrapScratch,
    ) -> Option<BootstrapCi> {
        let cube = self.cube()?;
        let lc = cube.layer(layer);
        let labels = lc.site_labels(country_idx);
        bootstrap_ci_indexed_scratch(
            labels,
            label_score_statistic(lc.owners().len()),
            replicates,
            level,
            seed,
            scratch,
        )
    }

    /// [`AnalysisCtx::score_ci`] that polls `should_abort` between
    /// replicate chunks so a server under deadline pressure can abandon an
    /// expensive CI instead of wedging a worker. When it completes, the
    /// interval is bit-identical to [`AnalysisCtx::score_ci`]'s (same
    /// per-replicate seeding). Cube-backed contexts only.
    #[allow(clippy::too_many_arguments)]
    pub fn score_ci_abortable(
        &self,
        country_idx: usize,
        layer: Layer,
        replicates: usize,
        level: f64,
        seed: u64,
        scratch: &mut BootstrapScratch,
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Option<BootstrapCi>, BootstrapAborted> {
        let Some(cube) = self.cube() else {
            return Ok(None);
        };
        let lc = cube.layer(layer);
        let labels = lc.site_labels(country_idx);
        bootstrap_ci_indexed_abortable(
            labels,
            label_score_statistic(lc.owners().len()),
            replicates,
            level,
            seed,
            scratch,
            should_abort,
        )
    }

    /// Observation count per country toplist (should equal the configured
    /// toplist length).
    pub fn toplist_len(&self, country_idx: usize) -> usize {
        self.ds.toplists[country_idx].len()
    }

    /// Fraction of a country's toplist observed at `layer` — the weight a
    /// reader should put on that country's score under degraded
    /// measurement. 0.0 for an empty toplist.
    pub fn country_coverage(&self, country_idx: usize, layer: Layer) -> f64 {
        let expected = self.toplist_len(country_idx);
        if expected == 0 {
            return 0.0;
        }
        self.country_total(country_idx, layer) as f64 / expected as f64
    }
}

/// The zero-alloc replicate statistic over dense cube labels: tally into a
/// thread-local scratch row, compute `Σ(a/C)² − 1/C`, and zero every
/// touched slot on the way out so the row is clean for the next replicate
/// without a memset.
fn label_score_statistic(n_owners: usize) -> impl Fn(&Resample<'_, u32>) -> f64 {
    thread_local! {
        static SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }
    move |rs| {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            if scratch.len() < n_owners {
                scratch.resize(n_owners, 0);
            }
            let mut total = 0u64;
            for &l in rs.iter() {
                scratch[l as usize] += 1;
                total += 1;
            }
            let c = total as f64;
            let mut hhi = 0.0;
            for &l in rs.iter() {
                let a = scratch[l as usize];
                if a != 0 {
                    let share = a as f64 / c;
                    hhi += share * share;
                    scratch[l as usize] = 0;
                }
            }
            hhi - 1.0 / c
        })
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::OnceLock;
    use webdep_pipeline::{measure, PipelineConfig};
    use webdep_webgen::{DeployConfig, DeployedWorld, WorldConfig};

    /// One shared tiny world + measurement for all analysis tests (the
    /// deployment is expensive enough to amortize).
    pub fn fixture() -> &'static (World, MeasuredDataset) {
        static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let world = World::generate(WorldConfig::tiny());
            let dep = DeployedWorld::deploy(&world, DeployConfig::default());
            let ds = measure(&world, &dep, &PipelineConfig::default());
            (world, ds)
        })
    }

    pub fn ctx() -> AnalysisCtx<'static> {
        let (world, ds) = fixture();
        AnalysisCtx::new(world, ds)
    }

    /// The tally-on-demand baseline over the same fixture.
    pub fn legacy_ctx() -> AnalysisCtx<'static> {
        let (world, ds) = fixture();
        AnalysisCtx::new_legacy(world, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;
    use webdep_webgen::World;

    #[test]
    fn counts_match_ground_truth_distribution() {
        let c = ctx();
        let th = World::country_index("TH").unwrap();
        let measured = c.country_counts(th, Layer::Hosting);
        let truth = c.world.layer_counts(th, Layer::Hosting);
        assert_eq!(
            measured.as_ref(),
            truth.as_slice(),
            "pipeline must recover the ground truth"
        );
    }

    #[test]
    fn owner_metadata_resolves() {
        let c = ctx();
        let us = World::country_index("US").unwrap();
        let counts = c.country_counts(us, Layer::Hosting);
        let (head, _) = counts[0];
        assert_eq!(c.owner_name(Layer::Hosting, head), "Cloudflare");
        assert_eq!(c.owner_country(Layer::Hosting, head), Some("US"));
    }

    #[test]
    fn tld_owner_interning() {
        let c = ctx();
        let us = World::country_index("US").unwrap();
        let counts = c.country_counts(us, Layer::Tld);
        let (head, _) = counts[0];
        assert_eq!(c.owner_name(Layer::Tld, head), "com");
        assert_eq!(c.owner_country(Layer::Tld, head), Some("US"));
    }

    #[test]
    fn usage_matrix_rows_have_country_width() {
        let c = ctx();
        let m = c.usage_matrix(Layer::Hosting);
        let cf = c.world.universe.provider_by_name("Cloudflare").unwrap();
        let row = &m[&cf];
        assert_eq!(row.len(), 150);
        // Cloudflare is used everywhere except possibly a couple of edge
        // countries at tiny scale.
        let used = row.iter().filter(|&&v| v > 0.0).count();
        assert!(used > 140, "{used}");
    }

    #[test]
    fn usage_rows_are_sorted_and_match_matrix() {
        let c = ctx();
        let rows = c.usage_rows(Layer::Hosting);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        let m = c.usage_matrix(Layer::Hosting);
        assert_eq!(rows.len(), m.len());
        for (owner, row) in &rows {
            assert_eq!(&m[owner], row);
        }
    }

    /// Both CI paths draw the same index streams; the statistics differ
    /// only in floating-point summation order, so the intervals must agree
    /// to tight tolerance.
    #[test]
    fn score_ci_legacy_matches_cube() {
        let c = ctx();
        let legacy = crate::ctx::testutil::legacy_ctx();
        for code in ["TH", "US", "IR"] {
            let i = World::country_index(code).unwrap();
            let a = c.score_ci(i, Layer::Hosting, 100, 0.95, 7).unwrap();
            let b = legacy.score_ci(i, Layer::Hosting, 100, 0.95, 7).unwrap();
            assert!((a.point - b.point).abs() < 1e-9, "{code}: {a:?} vs {b:?}");
            assert!((a.lo - b.lo).abs() < 1e-9, "{code}: {a:?} vs {b:?}");
            assert!((a.hi - b.hi).abs() < 1e-9, "{code}: {a:?} vs {b:?}");
        }
    }

    /// The scratch variant draws the same index streams serially; the
    /// intervals must be bit-identical, and the scratch must be safely
    /// reusable across countries and layers.
    #[test]
    fn score_ci_scratch_is_identical_and_reusable() {
        let c = ctx();
        let mut scratch = webdep_stats::BootstrapScratch::new();
        for code in ["TH", "US", "IR"] {
            let i = World::country_index(code).unwrap();
            for layer in [Layer::Hosting, Layer::Dns, Layer::Ca] {
                let a = c.score_ci(i, layer, 100, 0.95, 7).unwrap();
                let b = c
                    .score_ci_scratch(i, layer, 100, 0.95, 7, &mut scratch)
                    .unwrap();
                assert_eq!(a, b, "{code} {layer:?}");
            }
        }
    }

    #[test]
    fn score_ci_brackets_point_and_is_seeded() {
        let c = ctx();
        let th = World::country_index("TH").unwrap();
        let ci = c.score_ci(th, Layer::Hosting, 200, 0.95, 42).unwrap();
        let point = webdep_core::centralization_score(&c.country_dist(th, Layer::Hosting).unwrap());
        assert!((ci.point - point).abs() < 1e-12, "{} vs {point}", ci.point);
        assert!(ci.contains(ci.point));
        assert!(ci.width() > 0.0 && ci.width() < 0.5, "{ci:?}");
        let again = c.score_ci(th, Layer::Hosting, 200, 0.95, 42).unwrap();
        assert_eq!(ci, again);
    }
}
