//! The analysis context: measured data joined with entity metadata.

use std::collections::HashMap;
use webdep_core::CountDist;
use webdep_pipeline::{MeasuredDataset, SiteObservation};
use webdep_webgen::{Layer, World, COUNTRIES};

/// Joins a [`MeasuredDataset`] with the [`World`]'s entity metadata.
///
/// Every per-layer tally keys owners by a dense `u32`: provider org id for
/// hosting/DNS, CA owner id for the CA layer, and TLD id for the TLD layer
/// (observation TLD labels are interned through the universe).
pub struct AnalysisCtx<'a> {
    /// The generating world (entity names, HQ countries, TLD kinds).
    pub world: &'a World,
    /// The measured dataset under analysis.
    pub ds: &'a MeasuredDataset,
    tld_ids: HashMap<String, u32>,
}

impl<'a> AnalysisCtx<'a> {
    /// Builds a context.
    pub fn new(world: &'a World, ds: &'a MeasuredDataset) -> Self {
        let tld_ids = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        AnalysisCtx { world, ds, tld_ids }
    }

    /// The measured owner of an observation at a layer, if that layer
    /// measured successfully.
    pub fn owner_of(&self, obs: &SiteObservation, layer: Layer) -> Option<u32> {
        match layer {
            Layer::Hosting => obs.hosting_org,
            Layer::Dns => obs.dns_org,
            Layer::Ca => obs.ca_owner,
            Layer::Tld => self.tld_ids.get(&obs.tld).copied(),
        }
    }

    /// The owner's display name.
    pub fn owner_name(&self, layer: Layer, owner: u32) -> &str {
        match layer {
            Layer::Hosting | Layer::Dns => &self.world.universe.provider(owner).name,
            Layer::Ca => &self.world.universe.ca(owner).name,
            Layer::Tld => &self.world.universe.tld(owner).label,
        }
    }

    /// The owner's home country, if it has one (`None` for global TLDs).
    pub fn owner_country(&self, layer: Layer, owner: u32) -> Option<&str> {
        match layer {
            Layer::Hosting | Layer::Dns => {
                Some(self.world.universe.provider(owner).country.as_str())
            }
            Layer::Ca => Some(self.world.universe.ca(owner).country.as_str()),
            Layer::Tld => self.world.universe.tld(owner).home_country(),
        }
    }

    /// Per-owner website counts for a country's layer, largest first.
    pub fn country_counts(&self, country_idx: usize, layer: Layer) -> Vec<(u32, u64)> {
        let mut tally: HashMap<u32, u64> = HashMap::new();
        for obs in self.ds.country_observations(country_idx) {
            if let Some(owner) = self.owner_of(obs, layer) {
                *tally.entry(owner).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(u32, u64)> = tally.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The country's measured distribution as a [`CountDist`].
    pub fn country_dist(&self, country_idx: usize, layer: Layer) -> Option<CountDist> {
        let counts: Vec<u64> = self
            .country_counts(country_idx, layer)
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        CountDist::from_counts(counts).ok()
    }

    /// Share of a country's measured sites belonging to `owner` at `layer`.
    pub fn owner_share(&self, country_idx: usize, layer: Layer, owner: u32) -> f64 {
        let counts = self.country_counts(country_idx, layer);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        counts
            .iter()
            .find(|&&(o, _)| o == owner)
            .map(|&(_, c)| c as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Per-owner usage matrix for a layer: owner → usage percentage in each
    /// of the 150 countries (the raw material of usage curves, Figure 4).
    pub fn usage_matrix(&self, layer: Layer) -> HashMap<u32, Vec<f64>> {
        let mut m: HashMap<u32, Vec<f64>> = HashMap::new();
        for ci in 0..COUNTRIES.len() {
            let counts = self.country_counts(ci, layer);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            if total == 0 {
                continue;
            }
            for (owner, c) in counts {
                m.entry(owner)
                    .or_insert_with(|| vec![0.0; COUNTRIES.len()])[ci] =
                    100.0 * c as f64 / total as f64;
            }
        }
        m
    }

    /// Observation count per country toplist (should equal the configured
    /// toplist length).
    pub fn toplist_len(&self, country_idx: usize) -> usize {
        self.ds.toplists[country_idx].len()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::OnceLock;
    use webdep_pipeline::{measure, PipelineConfig};
    use webdep_webgen::{DeployConfig, DeployedWorld, WorldConfig};

    /// One shared tiny world + measurement for all analysis tests (the
    /// deployment is expensive enough to amortize).
    pub fn fixture() -> &'static (World, MeasuredDataset) {
        static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let world = World::generate(WorldConfig::tiny());
            let dep = DeployedWorld::deploy(&world, DeployConfig::default());
            let ds = measure(&world, &dep, &PipelineConfig::default());
            (world, ds)
        })
    }

    pub fn ctx() -> AnalysisCtx<'static> {
        let (world, ds) = fixture();
        AnalysisCtx::new(world, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;
    use webdep_webgen::World;

    #[test]
    fn counts_match_ground_truth_distribution() {
        let c = ctx();
        let th = World::country_index("TH").unwrap();
        let measured = c.country_counts(th, Layer::Hosting);
        let truth = c.world.layer_counts(th, Layer::Hosting);
        assert_eq!(measured, truth, "pipeline must recover the ground truth");
    }

    #[test]
    fn owner_metadata_resolves() {
        let c = ctx();
        let us = World::country_index("US").unwrap();
        let counts = c.country_counts(us, Layer::Hosting);
        let (head, _) = counts[0];
        assert_eq!(c.owner_name(Layer::Hosting, head), "Cloudflare");
        assert_eq!(c.owner_country(Layer::Hosting, head), Some("US"));
    }

    #[test]
    fn tld_owner_interning() {
        let c = ctx();
        let us = World::country_index("US").unwrap();
        let counts = c.country_counts(us, Layer::Tld);
        let (head, _) = counts[0];
        assert_eq!(c.owner_name(Layer::Tld, head), "com");
        assert_eq!(c.owner_country(Layer::Tld, head), Some("US"));
    }

    #[test]
    fn usage_matrix_rows_have_country_width() {
        let c = ctx();
        let m = c.usage_matrix(Layer::Hosting);
        let cf = c.world.universe.provider_by_name("Cloudflare").unwrap();
        let row = &m[&cf];
        assert_eq!(row.len(), 150);
        // Cloudflare is used everywhere except possibly a couple of edge
        // countries at tiny scale.
        let used = row.iter().filter(|&&v| v > 0.0).count();
        assert!(used > 140, "{used}");
    }
}
