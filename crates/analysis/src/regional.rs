//! Regional aggregates: cross-continent dependence matrices (Figure 8) and
//! subregion summaries (Figures 9, 10).

use crate::centralization::layer_table;
use crate::ctx::AnalysisCtx;
use crate::insularity::country_insularity;
use serde::{Deserialize, Serialize};
use webdep_webgen::{Layer, COUNTRIES};

/// Continent codes in matrix order, plus the anycast pseudo-column.
pub const MATRIX_CONTINENTS: [&str; 6] = ["NA", "SA", "EU", "AF", "AS", "OC"];

/// A 6x7 dependence matrix: row = continent where websites are popular,
/// column = continent attribution (provider HQ, IP geolocation, or NS
/// geolocation), with a 7th "anycast" column where applicable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinentMatrix {
    /// What the columns attribute (e.g. "provider HQ").
    pub what: String,
    /// `share[row][col]` fraction of row-continent websites attributed to
    /// column; `share[row][6]` is the anycast fraction.
    pub share: Vec<Vec<f64>>,
}

impl ContinentMatrix {
    /// The share for a (row, col) continent-code pair.
    pub fn get(&self, row: &str, col: &str) -> Option<f64> {
        let r = MATRIX_CONTINENTS.iter().position(|&c| c == row)?;
        if col == "anycast" {
            return self.share[r].get(6).copied();
        }
        let c = MATRIX_CONTINENTS.iter().position(|&c| c == col)?;
        self.share[r].get(c).copied()
    }
}

fn continent_code_of_country(code: &str) -> Option<&'static str> {
    webdep_webgen::CountryRecord::by_code(code).map(|c| c.continent.code())
}

fn continent_index(code: &str) -> Option<usize> {
    MATRIX_CONTINENTS.iter().position(|&c| c == code)
}

/// Kinds of attribution for [`continent_matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attribution {
    /// Hosting provider's HQ country (Figure 8a).
    HostingHq,
    /// Serving-IP geolocation; anycast IPs fill the anycast column
    /// (Figure 8b).
    IpGeo,
    /// Nameserver-IP geolocation with anycast column (Figure 8c).
    NsGeo,
}

/// Builds a cross-continent dependence matrix (Figure 8a/b/c).
pub fn continent_matrix(ctx: &AnalysisCtx<'_>, attribution: Attribution) -> ContinentMatrix {
    // Countries tally independently into one continent row each; fan them
    // across cores and sum the integer partials in country order.
    let per_country = webdep_stats::par_map_indices(
        COUNTRIES.len(),
        webdep_stats::par::default_threads(),
        |ci| {
            let country = &COUNTRIES[ci];
            let mut row_counts = [0u64; 7];
            let Some(row) = continent_index(country.continent.code()) else {
                return (0usize, row_counts, 0u64);
            };
            let mut total = 0u64;
            for obs in ctx.ds.country_observations(ci) {
                let col: Option<usize> = match attribution {
                    Attribution::HostingHq => obs
                        .hosting_org_country
                        .as_deref()
                        .and_then(continent_code_of_country)
                        .and_then(continent_index)
                        .or(Some(0)), // non-dataset HQs (e.g. CN) fold to the fallback
                    Attribution::IpGeo => {
                        if obs.hosting_anycast {
                            Some(6)
                        } else {
                            obs.hosting_ip_country
                                .as_deref()
                                .and_then(continent_code_of_country)
                                .and_then(continent_index)
                        }
                    }
                    Attribution::NsGeo => {
                        if obs.dns_anycast {
                            Some(6)
                        } else {
                            obs.dns_ip_country
                                .as_deref()
                                .and_then(continent_code_of_country)
                                .and_then(continent_index)
                        }
                    }
                };
                if let Some(col) = col {
                    row_counts[col] += 1;
                    total += 1;
                }
            }
            (row, row_counts, total)
        },
    );
    let mut counts = vec![vec![0u64; 7]; 6];
    let mut totals = vec![0u64; 6];
    for (row, row_counts, total) in per_country {
        for (col, &c) in row_counts.iter().enumerate() {
            counts[row][col] += c;
        }
        totals[row] += total;
    }
    let share = counts
        .into_iter()
        .zip(&totals)
        .map(|(row, &t)| {
            row.into_iter()
                .map(|c| if t == 0 { 0.0 } else { c as f64 / t as f64 })
                .collect()
        })
        .collect();
    ContinentMatrix {
        what: format!("{attribution:?}"),
        share,
    }
}

/// A subregion's mean score/insularity across the four layers (Figures 9
/// and 10's underlying data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubregionSummary {
    /// The UN subregion name.
    pub subregion: String,
    /// Countries in the subregion.
    pub countries: usize,
    /// Mean centralization per layer, `[hosting, dns, ca, tld]`.
    pub mean_s: [f64; 4],
    /// Mean insularity per layer.
    pub mean_insularity: [f64; 4],
}

/// Builds the per-subregion summary across all layers.
pub fn subregion_summary(ctx: &AnalysisCtx<'_>) -> Vec<SubregionSummary> {
    let mut subregions: Vec<&str> = COUNTRIES.iter().map(|c| c.subregion).collect();
    subregions.sort_unstable();
    subregions.dedup();

    let tables: Vec<_> = Layer::ALL.iter().map(|&l| layer_table(ctx, l)).collect();

    subregions
        .into_iter()
        .map(|sub| {
            let countries = COUNTRIES.iter().filter(|c| c.subregion == sub).count();
            let mut mean_s = [0.0; 4];
            for (li, t) in tables.iter().enumerate() {
                mean_s[li] = t.subregion_mean(sub).unwrap_or(0.0);
            }
            let mut mean_insularity = [0.0; 4];
            for (li, &layer) in Layer::ALL.iter().enumerate() {
                let vals: Vec<f64> = COUNTRIES
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.subregion == sub)
                    .filter_map(|(ci, _)| country_insularity(ctx, ci, layer))
                    .collect();
                mean_insularity[li] = webdep_stats::describe::mean(&vals).unwrap_or(0.0);
            }
            SubregionSummary {
                subregion: sub.to_string(),
                countries,
                mean_s,
                mean_insularity,
            }
        })
        .collect()
}

/// Continent of a country where websites using a given continent's
/// providers are served from — convenience for the Figure 8b diagonal
/// check: fraction of row-continent sites served (geolocated or anycast)
/// outside North America and Europe.
pub fn africa_external_reliance(matrix: &ContinentMatrix) -> f64 {
    let na = matrix.get("AF", "NA").unwrap_or(0.0);
    let eu = matrix.get("AF", "EU").unwrap_or(0.0);
    na + eu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn hq_matrix_shows_na_dominance() {
        let c = ctx();
        let m = continent_matrix(&c, Attribution::HostingHq);
        // Every continent leans on North-American (US) providers.
        for row in MATRIX_CONTINENTS {
            let na = m.get(row, "NA").unwrap();
            assert!(na > 0.3, "{row} NA share {na}");
        }
        // Europe is substantially self-reliant.
        let eu_eu = m.get("EU", "EU").unwrap();
        assert!(eu_eu > 0.15, "EU self-reliance {eu_eu}");
        // Africa uses almost no African providers.
        let af_af = m.get("AF", "AF").unwrap();
        assert!(af_af < 0.10, "AF self-reliance {af_af}");
    }

    #[test]
    fn ip_geo_matrix_has_anycast_and_local_serving() {
        let c = ctx();
        let m = continent_matrix(&c, Attribution::IpGeo);
        // Anycast (Cloudflare et al.) is a visible column everywhere.
        for row in MATRIX_CONTINENTS {
            let anycast = m.get(row, "anycast").unwrap();
            assert!(anycast > 0.05, "{row} anycast {anycast}");
        }
        // Rows sum to ~1.
        for r in &m.share {
            let sum: f64 = r.iter().sum();
            assert!((sum - 1.0).abs() < 0.05, "row sum {sum}");
        }
        // CDN regional serving: Asia's non-anycast sites still partly
        // geolocate in Asia.
        let as_as = m.get("AS", "AS").unwrap();
        assert!(as_as > 0.05, "AS local serving {as_as}");
    }

    #[test]
    fn ns_geo_matrix_anycast_heavier_than_hosting() {
        let c = ctx();
        let ip = continent_matrix(&c, Attribution::IpGeo);
        let ns = continent_matrix(&c, Attribution::NsGeo);
        // §6.2: anycast is (at least) as prevalent for nameservers.
        let mean_anycast = |m: &ContinentMatrix| {
            MATRIX_CONTINENTS
                .iter()
                .map(|r| m.get(r, "anycast").unwrap())
                .sum::<f64>()
                / 6.0
        };
        assert!(mean_anycast(&ns) >= mean_anycast(&ip) * 0.8);
    }

    #[test]
    fn subregion_summary_covers_all() {
        let c = ctx();
        let summary = subregion_summary(&c);
        let total: usize = summary.iter().map(|s| s.countries).sum();
        assert_eq!(total, 150);
        let se_asia = summary
            .iter()
            .find(|s| s.subregion == "South-eastern Asia")
            .unwrap();
        let central_asia = summary
            .iter()
            .find(|s| s.subregion == "Central Asia")
            .unwrap();
        // Paper: SE Asia most centralized (hosting), Central Asia least.
        assert!(se_asia.mean_s[0] > central_asia.mean_s[0]);
    }

    #[test]
    fn africa_relies_on_na_and_eu() {
        let c = ctx();
        let m = continent_matrix(&c, Attribution::HostingHq);
        assert!(africa_external_reliance(&m) > 0.6);
    }
}
