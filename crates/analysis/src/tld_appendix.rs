//! Appendix B deep-dive: TLD dependence patterns beyond the score table —
//! external-ccTLD adoption (.ru / .fr / .de), ccTLDs outranking local
//! ones, and the two insularity regimes (infrastructure-rich countries
//! insular everywhere vs the Global South insular only at the TLD layer).

use crate::ctx::AnalysisCtx;
use crate::insularity::country_insularity;
use serde::Serialize;
use webdep_webgen::provider::TldKind;
use webdep_webgen::{Layer, COUNTRIES};

/// One country's use of a foreign ccTLD.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExternalCcUse {
    /// The country using the TLD.
    pub country: &'static str,
    /// Share of its top sites under the foreign ccTLD.
    pub share: f64,
    /// Whether the foreign ccTLD outranks the country's own.
    pub outranks_local: bool,
}

/// Countries using `tld_country`'s ccTLD for at least `min_share` of their
/// top sites, sorted by share (Appendix B: `.fr` in 14 countries, `.ru`
/// across the CIS, `.de` in the German-speaking countries).
pub fn external_cc_adoption(
    ctx: &AnalysisCtx<'_>,
    tld_country: &str,
    min_share: f64,
) -> Vec<ExternalCcUse> {
    let Some(foreign_tld) = ctx
        .world
        .universe
        .tld_by_label(&tld_country.to_ascii_lowercase())
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate() {
        if country.code == tld_country {
            continue;
        }
        let counts = ctx.country_counts(ci, Layer::Tld);
        let total = ctx.country_total(ci, Layer::Tld);
        if total == 0 {
            continue;
        }
        let share_of = |tld: u32| {
            counts
                .iter()
                .find(|&&(o, _)| o == tld)
                .map(|&(_, c)| c as f64 / total as f64)
                .unwrap_or(0.0)
        };
        let share = share_of(foreign_tld);
        if share >= min_share {
            let local_share = ctx
                .world
                .universe
                .tld_by_label(&country.code.to_ascii_lowercase())
                .map(&share_of)
                .unwrap_or(0.0);
            out.push(ExternalCcUse {
                country: country.code,
                share,
                outranks_local: share > local_share,
            });
        }
    }
    out.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("finite"));
    out
}

/// The Appendix B insularity-regime classification of a country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum InsularityRegime {
    /// Insular across infrastructure layers *and* the TLD layer (Europe,
    /// East Asia, North America pattern).
    InfrastructureAndTld,
    /// Insular at the TLD layer only — local providers don't exist, but a
    /// ccTLD does (the Global South pattern).
    TldOnly,
    /// Not insular anywhere.
    Neither,
}

/// Classifies every country into an insularity regime using simple share
/// thresholds (hosting ≥ `infra_floor`, TLD ≥ `tld_floor`).
pub fn insularity_regimes(
    ctx: &AnalysisCtx<'_>,
    infra_floor: f64,
    tld_floor: f64,
) -> Vec<(&'static str, InsularityRegime)> {
    COUNTRIES
        .iter()
        .enumerate()
        .map(|(ci, country)| {
            let host = country_insularity(ctx, ci, Layer::Hosting).unwrap_or(0.0);
            let tld = country_insularity(ctx, ci, Layer::Tld).unwrap_or(0.0);
            let regime = if host >= infra_floor && tld >= tld_floor {
                InsularityRegime::InfrastructureAndTld
            } else if tld >= tld_floor {
                InsularityRegime::TldOnly
            } else {
                InsularityRegime::Neither
            };
            (country.code, regime)
        })
        .collect()
}

/// Share of a country's sites on global (non-cc, non-com) TLDs — the
/// Figure 16 "Global TLDs" column, exposed for the Appendix B observation
/// that external-ccTLD use correlates with lower TLD centralization.
pub fn global_tld_share(ctx: &AnalysisCtx<'_>, country_idx: usize) -> f64 {
    let counts = ctx.country_counts(country_idx, Layer::Tld);
    let total = ctx.country_total(country_idx, Layer::Tld);
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&(o, _)| ctx.world.universe.tld(o).kind == TldKind::Global)
        .map(|&(_, c)| c as f64)
        .sum::<f64>()
        / total as f64
}

/// External-ccTLD share (foreign country ccTLDs only) for a country.
pub fn external_cc_share(ctx: &AnalysisCtx<'_>, country_idx: usize) -> f64 {
    let code = COUNTRIES[country_idx].code;
    let counts = ctx.country_counts(country_idx, Layer::Tld);
    let total = ctx.country_total(country_idx, Layer::Tld);
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&(o, _)| match &ctx.world.universe.tld(o).kind {
            TldKind::Cc(cc) => cc != code,
            _ => false,
        })
        .map(|&(_, c)| c as f64)
        .sum::<f64>()
        / total as f64
}

/// Appendix B's closing correlation: external-ccTLD use vs TLD-layer
/// centralization (the paper: "strongly correlated with lower
/// centralization", Figure 16 caption).
pub fn external_cc_vs_centralization(ctx: &AnalysisCtx<'_>) -> Option<webdep_stats::Correlation> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for ci in 0..COUNTRIES.len() {
        let Some(dist) = ctx.country_dist(ci, Layer::Tld) else {
            continue;
        };
        xs.push(external_cc_share(ctx, ci));
        ys.push(webdep_core::centralization::centralization_score(&dist));
    }
    webdep_stats::pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn ru_cctld_used_across_the_cis() {
        let c = ctx();
        let uses = external_cc_adoption(&c, "RU", 0.05);
        let countries: Vec<&str> = uses.iter().map(|u| u.country).collect();
        for cc in ["KG", "TJ", "TM", "KZ", "BY"] {
            assert!(countries.contains(&cc), "{cc} missing: {countries:?}");
        }
    }

    #[test]
    fn fr_cctld_outranks_local_in_francophone_countries() {
        let c = ctx();
        let uses = external_cc_adoption(&c, "FR", 0.05);
        assert!(!uses.is_empty());
        // The DOM heavy users should outrank their own ccTLD (the paper
        // lists 14 countries where .fr beats the local ccTLD).
        let outranking = uses.iter().filter(|u| u.outranks_local).count();
        assert!(
            outranking >= 3,
            "outranking: {outranking} of {}",
            uses.len()
        );
    }

    #[test]
    fn de_cctld_in_german_speaking_countries() {
        let c = ctx();
        let uses = external_cc_adoption(&c, "DE", 0.04);
        let countries: Vec<&str> = uses.iter().map(|u| u.country).collect();
        assert!(countries.contains(&"AT"), "{countries:?}");
    }

    #[test]
    fn regimes_split_as_in_the_paper() {
        let c = ctx();
        let regimes = insularity_regimes(&c, 0.20, 0.15);
        let of = |code: &str| {
            regimes
                .iter()
                .find(|(cc, _)| *cc == code)
                .map(|&(_, r)| r)
                .unwrap()
        };
        // Czechia: local providers + heavy .cz.
        assert_eq!(of("CZ"), InsularityRegime::InfrastructureAndTld);
        // A Global-South ccTLD-headed country without local providers
        // lands TldOnly or Neither; Brazil is ccTLD-headed with thin local
        // hosting.
        assert_ne!(of("BR"), InsularityRegime::InfrastructureAndTld);
        // Somalia: no local infrastructure, .com-headed.
        assert_eq!(of("SO"), InsularityRegime::Neither);
    }

    #[test]
    fn external_cc_anti_correlates_with_tld_centralization() {
        let c = ctx();
        let corr = external_cc_vs_centralization(&c).unwrap();
        assert!(corr.rho < -0.3, "rho = {}", corr.rho);
    }

    #[test]
    fn share_helpers_bounded() {
        let c = ctx();
        for ci in [0usize, 75, 149] {
            let g = global_tld_share(&c, ci);
            let e = external_cc_share(&c, ci);
            assert!((0.0..=1.0).contains(&g));
            assert!((0.0..=1.0).contains(&e));
        }
    }
}
