//! Provider classification (§5.2, Tables 1–3, Figure 6): usage +
//! endemicity features, min-max scaling, affinity propagation, and class
//! labels.
//!
//! Exactly as in the paper, classes are *derived from the measured data*:
//! the generator's ground-truth tiers are never consulted. The clustering
//! runs on the providers with non-negligible usage; the deep one-country
//! tail is labelled XS-RP directly (clustering 12k near-identical points
//! adds nothing but O(n²) memory — the paper, too, leaves XS-RP out of its
//! Figure 6 visualization).

use crate::ctx::AnalysisCtx;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use webdep_core::regionalization::UsageCurve;
use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
use webdep_stats::scale::min_max_scale_columns;
use webdep_webgen::Layer;

/// The paper's provider classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderClass {
    /// Extra-large global.
    XlGp,
    /// Large global.
    LGp,
    /// Large global with regional concentration (OVH/Hetzner pattern).
    LGpR,
    /// Medium global.
    MGp,
    /// Small global.
    SGp,
    /// Large regional.
    LRp,
    /// Small regional.
    SRp,
    /// Extra-small regional.
    XsRp,
}

impl ProviderClass {
    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            ProviderClass::XlGp => "XL-GP",
            ProviderClass::LGp => "L-GP",
            ProviderClass::LGpR => "L-GP (R)",
            ProviderClass::MGp => "M-GP",
            ProviderClass::SGp => "S-GP",
            ProviderClass::LRp => "L-RP",
            ProviderClass::SRp => "S-RP",
            ProviderClass::XsRp => "XS-RP",
        }
    }

    /// Global classes (vs regional).
    pub fn is_global(self) -> bool {
        matches!(
            self,
            ProviderClass::XlGp
                | ProviderClass::LGp
                | ProviderClass::LGpR
                | ProviderClass::MGp
                | ProviderClass::SGp
        )
    }
}

/// Per-owner classification features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnerFeatures {
    /// Owner id.
    pub owner: u32,
    /// Usage `U` (sum of per-country usage percentages).
    pub usage: f64,
    /// Endemicity ratio `E_R` in `[0, 1]`.
    pub endemicity_ratio: f64,
    /// Peak usage percentage in any single country.
    pub peak: f64,
    /// Number of countries with non-zero usage.
    pub countries: usize,
}

/// The classification result for one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classification {
    /// Features per clustered owner (the Figure 6 scatter).
    pub features: Vec<OwnerFeatures>,
    /// Class per owner id (covers every observed owner, including the
    /// directly-labelled XS tail).
    pub class_of: HashMap<u32, ProviderClass>,
    /// Number of affinity-propagation clusters found.
    pub num_clusters: usize,
    /// Owners assigned per class.
    pub class_counts: HashMap<String, usize>,
}

/// Minimum usage (percentage-point-sum) for an owner to join clustering;
/// everything below is directly XS-RP (or S-RP if visibly multi-country).
const CLUSTER_USAGE_FLOOR: f64 = 1.0;

/// Classifies a layer's owners.
pub fn classify(ctx: &AnalysisCtx<'_>, layer: Layer) -> Classification {
    // `usage_rows` is ordered by owner id, so the feature list (and with
    // it the clustering input and every tie-broken sort below) is
    // deterministic across runs — HashMap iteration order was not.
    let usage = ctx.usage_rows(layer);
    let mut features: Vec<OwnerFeatures> = Vec::new();
    let mut tail: Vec<OwnerFeatures> = Vec::new();
    for (owner, per_country) in usage {
        let countries = per_country.iter().filter(|&&v| v > 0.0).count();
        let curve = UsageCurve::new(per_country);
        let f = OwnerFeatures {
            owner,
            usage: curve.usage(),
            endemicity_ratio: curve.endemicity_ratio(),
            peak: curve.peak(),
            countries,
        };
        if f.usage >= CLUSTER_USAGE_FLOOR {
            features.push(f);
        } else {
            tail.push(f);
        }
    }
    features.sort_by(|a, b| {
        b.usage
            .partial_cmp(&a.usage)
            .expect("finite")
            .then(a.owner.cmp(&b.owner))
    });

    // Min-max scale (usage, endemicity ratio) and cluster.
    let raw: Vec<Vec<f64>> = features
        .iter()
        .map(|f| vec![f.usage, f.endemicity_ratio])
        .collect();
    let scaled = min_max_scale_columns(&raw);
    // The legacy (tally-on-demand) context reproduces the pre-cube engine
    // end to end, so it also runs the baseline untiled sweeps; both modes
    // produce byte-identical clusterings.
    let clustering = affinity_propagation(
        &scaled,
        &AffinityConfig {
            baseline_sweeps: ctx.cube().is_none(),
            ..AffinityConfig::default()
        },
    );
    let num_clusters = clustering.as_ref().map(|c| c.num_clusters()).unwrap_or(0);

    // Label by features (the paper labels its clusters manually; these
    // thresholds encode the same judgement).
    let max_usage = features.first().map(|f| f.usage).unwrap_or(1.0).max(1.0);
    let mut class_of: HashMap<u32, ProviderClass> = HashMap::new();
    for f in &features {
        class_of.insert(f.owner, label_features(f, max_usage));
    }
    for f in &tail {
        let class = if f.countries > 2 && f.endemicity_ratio < 0.75 {
            ProviderClass::SGp
        } else if f.peak >= 0.3 {
            ProviderClass::SRp
        } else {
            ProviderClass::XsRp
        };
        class_of.insert(f.owner, class);
    }

    let mut class_counts: HashMap<String, usize> = HashMap::new();
    for class in class_of.values() {
        *class_counts.entry(class.label().to_string()).or_insert(0) += 1;
    }

    Classification {
        features,
        class_of,
        num_clusters,
        class_counts,
    }
}

/// Feature-space labelling rules.
fn label_features(f: &OwnerFeatures, max_usage: f64) -> ProviderClass {
    let rel = f.usage / max_usage;
    if f.endemicity_ratio < 0.60 {
        // Global reach.
        if rel >= 0.45 {
            ProviderClass::XlGp
        } else if rel >= 0.055 {
            ProviderClass::LGp
        } else if rel >= 0.012 {
            ProviderClass::MGp
        } else {
            ProviderClass::SGp
        }
    } else if f.endemicity_ratio < 0.85 && rel >= 0.012 {
        // Sizeable but regionally concentrated: the OVH/Hetzner pattern.
        ProviderClass::LGpR
    } else if f.peak >= 2.0 {
        ProviderClass::LRp
    } else if f.peak >= 0.3 {
        ProviderClass::SRp
    } else {
        ProviderClass::XsRp
    }
}

impl Classification {
    /// Class of an owner (`XS-RP` for owners never observed).
    pub fn class(&self, owner: u32) -> ProviderClass {
        self.class_of
            .get(&owner)
            .copied()
            .unwrap_or(ProviderClass::XsRp)
    }

    /// Owners in a class, sorted by descending usage where known.
    pub fn members(&self, class: ProviderClass) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .class_of
            .iter()
            .filter(|&(_, c)| *c == class)
            .map(|(&o, _)| o)
            .collect();
        let usage_of: HashMap<u32, f64> =
            self.features.iter().map(|f| (f.owner, f.usage)).collect();
        ids.sort_by(|a, b| {
            usage_of
                .get(b)
                .unwrap_or(&0.0)
                .partial_cmp(usage_of.get(a).unwrap_or(&0.0))
                .expect("finite")
                .then(a.cmp(b))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn hosting_classes_identify_the_hyperscalers() {
        let c = ctx();
        let cls = classify(&c, Layer::Hosting);
        let cf = c.world.universe.provider_by_name("Cloudflare").unwrap();
        let amazon = c.world.universe.provider_by_name("Amazon").unwrap();
        assert_eq!(cls.class(cf), ProviderClass::XlGp, "Cloudflare is XL");
        assert_eq!(cls.class(amazon), ProviderClass::XlGp, "Amazon is XL");
        // Exactly the two hyperscalers.
        assert_eq!(cls.members(ProviderClass::XlGp).len(), 2);
        // Google and Akamai are large global.
        let google = c.world.universe.provider_by_name("Google").unwrap();
        assert!(matches!(
            cls.class(google),
            ProviderClass::LGp | ProviderClass::XlGp
        ));
    }

    #[test]
    fn regional_providers_classified_regional() {
        let c = ctx();
        let cls = classify(&c, Layer::Hosting);
        let beget = c.world.universe.provider_by_name("Beget").unwrap();
        assert!(
            !cls.class(beget).is_global(),
            "Beget is regional, got {:?}",
            cls.class(beget)
        );
        let shb = c
            .world
            .universe
            .provider_by_name("SuperHosting.BG")
            .unwrap();
        assert!(!cls.class(shb).is_global());
    }

    #[test]
    fn ovh_hetzner_are_global_regional_or_global() {
        let c = ctx();
        let cls = classify(&c, Layer::Hosting);
        for name in ["OVH", "Hetzner"] {
            let id = c.world.universe.provider_by_name(name).unwrap();
            let class = cls.class(id);
            assert!(
                class.is_global(),
                "{name} should be a global class, got {:?}",
                class
            );
        }
    }

    #[test]
    fn clustering_found_structure() {
        let c = ctx();
        let cls = classify(&c, Layer::Hosting);
        assert!(
            cls.num_clusters >= 3,
            "expected several clusters, got {}",
            cls.num_clusters
        );
        assert!(!cls.features.is_empty());
        // Every observed hosting owner has a class.
        let usage = c.usage_matrix(Layer::Hosting);
        for owner in usage.keys() {
            assert!(cls.class_of.contains_key(owner));
        }
    }

    #[test]
    fn ca_classes_have_seven_large_globals() {
        let c = ctx();
        let cls = classify(&c, Layer::Ca);
        let globals: Vec<u32> = cls
            .class_of
            .iter()
            .filter(|&(_, cl)| cl.is_global())
            .map(|(&o, _)| o)
            .collect();
        // The big CAs must be recognized as global; exact tier split can
        // wobble at tiny scale.
        for name in ["Let's Encrypt", "DigiCert", "Sectigo"] {
            let id = c.world.universe.ca_by_name(name).unwrap();
            assert!(globals.contains(&id), "{name} should be global");
        }
        // Asseco shows regional concentration.
        let asseco = c.world.universe.ca_by_name("Asseco").unwrap();
        assert!(!cls.class(asseco).is_global());
    }

    #[test]
    fn dns_managed_providers_are_global() {
        let c = ctx();
        let cls = classify(&c, Layer::Dns);
        for name in ["NSONE", "Neustar UltraDNS"] {
            let id = c.world.universe.provider_by_name(name).unwrap();
            assert!(cls.class(id).is_global(), "{name}: {:?}", cls.class(id));
        }
    }
}
