//! Per-country centralization tables (Tables 5–8; Figures 5, 17–19) and
//! the §5.1 coverage observations.

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_core::centralization::centralization_score;
use webdep_stats::describe::{median_index, Summary};
use webdep_webgen::{Layer, COUNTRIES};

/// One row of a layer's centralization table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryScore {
    /// Rank, 1 = most centralized.
    pub rank: usize,
    /// Country code.
    pub code: &'static str,
    /// Continent code (AF/AS/EU/NA/OC/SA).
    pub continent: &'static str,
    /// UN subregion.
    pub subregion: &'static str,
    /// Measured centralization score.
    pub s: f64,
    /// The paper's reported score for the same country and layer.
    pub paper_s: f64,
    /// Distinct providers observed.
    pub num_providers: usize,
    /// Top provider's market share.
    pub top_share: f64,
    /// Providers needed to cover 90% of websites.
    pub providers_for_90pct: usize,
    /// Fraction of the country's toplist observed at this layer.
    pub coverage: f64,
}

/// A full layer table plus summary statistics.
///
/// Under fault injection whole layers can go dark: `rows` then shrinks to
/// the countries still observed, and `summary`/`median_country` are `None`
/// when nothing was. Coverage fields report how much of the toplists the
/// remaining scores actually rest on.
#[derive(Debug, Clone, Serialize)]
pub struct LayerTable {
    /// The layer measured.
    pub layer_name: &'static str,
    /// Rows sorted most-centralized first (observed countries only).
    pub rows: Vec<CountryScore>,
    /// Mean / variance / extremes of the measured scores (`None` when no
    /// country measured at all).
    pub summary: Option<Summary>,
    /// Country code at the median of the score distribution.
    pub median_country: Option<&'static str>,
    /// Centralization of the global top list (the Figure 12 marker).
    pub global_top_score: Option<f64>,
    /// Site-weighted coverage: observed toplist entries over expected,
    /// across all 150 countries (unmeasured countries drag this down).
    pub mean_coverage: f64,
}

/// Builds the layer's table from measured data.
pub fn layer_table(ctx: &AnalysisCtx<'_>, layer: Layer) -> LayerTable {
    // Countries are independent: fan the per-country scoring across cores.
    // `par_map_indices` returns results in country order, so the table is
    // identical to the sequential one.
    let mut rows: Vec<CountryScore> = webdep_stats::par_map_indices(
        COUNTRIES.len(),
        webdep_stats::par::default_threads(),
        |ci| {
            let country = &COUNTRIES[ci];
            let dist = ctx.country_dist(ci, layer)?;
            Some(CountryScore {
                rank: 0,
                code: country.code,
                continent: country.continent.code(),
                subregion: country.subregion,
                s: centralization_score(&dist),
                paper_s: country.paper_score(layer),
                num_providers: dist.num_providers(),
                top_share: dist.top_share(),
                providers_for_90pct: dist.providers_to_cover(0.90),
                coverage: ctx.country_coverage(ci, layer),
            })
        },
    )
    .into_iter()
    .flatten()
    .collect();
    rows.sort_by(|a, b| b.s.partial_cmp(&a.s).expect("scores are finite"));
    for (i, r) in rows.iter_mut().enumerate() {
        r.rank = i + 1;
    }
    let scores: Vec<f64> = rows.iter().map(|r| r.s).collect();
    let summary = Summary::of(&scores);
    let median_country = median_index(&scores).map(|i| rows[i].code);

    let global_top_score = global_top_score(ctx, layer);

    let (observed, expected) = (0..COUNTRIES.len()).fold((0u64, 0u64), |(o, e), ci| {
        (
            o + ctx.country_total(ci, layer),
            e + ctx.toplist_len(ci) as u64,
        )
    });
    let mean_coverage = if expected == 0 {
        0.0
    } else {
        observed as f64 / expected as f64
    };

    LayerTable {
        layer_name: layer.name(),
        rows,
        summary,
        median_country,
        global_top_score,
        mean_coverage,
    }
}

/// Centralization of the global top list at a layer (Figure 12's marker).
pub fn global_top_score(ctx: &AnalysisCtx<'_>, layer: Layer) -> Option<f64> {
    let dist = ctx.global_dist(layer)?;
    Some(centralization_score(&dist))
}

impl LayerTable {
    /// Row for a country code.
    pub fn row(&self, code: &str) -> Option<&CountryScore> {
        self.rows.iter().find(|r| r.code == code)
    }

    /// Pearson correlation between measured and paper-reported scores — the
    /// headline calibration check.
    pub fn paper_correlation(&self) -> Option<webdep_stats::Correlation> {
        let measured: Vec<f64> = self.rows.iter().map(|r| r.s).collect();
        let paper: Vec<f64> = self.rows.iter().map(|r| r.paper_s).collect();
        webdep_stats::pearson(&measured, &paper)
    }

    /// The maximum `providers_for_90pct` across countries (the paper: "90%
    /// of websites are hosted by fewer than 206 providers in every
    /// country").
    pub fn max_providers_for_90pct(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.providers_for_90pct)
            .max()
            .unwrap_or(0)
    }

    /// Mean measured score over a subregion.
    pub fn subregion_mean(&self, subregion: &str) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.subregion == subregion)
            .map(|r| r.s)
            .collect();
        webdep_stats::describe::mean(&vals)
    }

    /// Mean measured score over a continent code.
    pub fn continent_mean(&self, continent: &str) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.continent == continent)
            .map(|r| r.s)
            .collect();
        webdep_stats::describe::mean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn hosting_table_matches_paper_shape() {
        let c = ctx();
        let t = layer_table(&c, Layer::Hosting);
        assert_eq!(t.rows.len(), 150);
        // Calibration: measured strongly correlates with the paper column.
        let corr = t.paper_correlation().unwrap();
        assert!(corr.rho > 0.95, "rho = {}", corr.rho);
        // Most/least centralized anchors.
        let th = t.row("TH").unwrap();
        let ir = t.row("IR").unwrap();
        assert!(th.rank <= 10, "TH rank {}", th.rank);
        assert!(ir.rank >= 140, "IR rank {}", ir.rank);
        assert!(th.top_share > 0.45);
    }

    #[test]
    fn dns_and_ca_tables() {
        let c = ctx();
        let dns = layer_table(&c, Layer::Dns);
        assert!(dns.paper_correlation().unwrap().rho > 0.9);
        let ca = layer_table(&c, Layer::Ca);
        // CA scores cluster tightly (paper: var = 0.0007) — allow tiny-
        // scale slack but require the variance to be far below hosting's.
        let hosting = layer_table(&c, Layer::Hosting);
        assert!(ca.summary.as_ref().unwrap().var < hosting.summary.as_ref().unwrap().var * 2.0);
        // Every country uses at most 45 CAs.
        assert!(ca.rows.iter().all(|r| r.num_providers <= 45));
    }

    #[test]
    fn tld_is_most_centralized_layer() {
        let c = ctx();
        let tld = layer_table(&c, Layer::Tld);
        let hosting = layer_table(&c, Layer::Hosting);
        let (tld_mean, host_mean) = (
            tld.summary.as_ref().unwrap().mean,
            hosting.summary.as_ref().unwrap().mean,
        );
        assert!(
            tld_mean > host_mean,
            "tld {tld_mean} vs hosting {host_mean}"
        );
        let us = tld.row("US").unwrap();
        assert!(
            us.rank <= 6,
            "US should top the TLD table, rank {}",
            us.rank
        );
    }

    #[test]
    fn global_top_marker_near_hosting_mean() {
        let c = ctx();
        let t = layer_table(&c, Layer::Hosting);
        let marker = t.global_top_score.unwrap();
        let mean = t.summary.as_ref().unwrap().mean;
        assert!(
            (marker - mean).abs() < 0.08,
            "marker {marker} vs mean {mean}"
        );
        // ... but NOT representative for TLDs (paper, Figure 12).
        let tld = layer_table(&c, Layer::Tld);
        let tld_marker = tld.global_top_score.unwrap();
        let tld_mean = tld.summary.as_ref().unwrap().mean;
        assert!(
            (tld_marker - tld_mean).abs() > 0.05,
            "TLD marker {tld_marker} should sit away from mean {tld_mean}"
        );
    }

    #[test]
    fn coverage_bounded() {
        let c = ctx();
        let t = layer_table(&c, Layer::Hosting);
        // Paper: fewer than 206 providers cover 90% everywhere (10k sites).
        // Tiny worlds have fewer providers; the bound still holds.
        assert!(t.max_providers_for_90pct() < 206);
    }

    #[test]
    fn clean_measurement_has_full_coverage() {
        let c = ctx();
        for layer in webdep_webgen::Layer::ALL {
            let t = layer_table(&c, layer);
            assert!(
                t.mean_coverage > 0.99,
                "{}: coverage {}",
                layer.name(),
                t.mean_coverage
            );
            assert!(t.rows.iter().all(|r| r.coverage > 0.9), "{}", layer.name());
        }
    }

    #[test]
    fn subregion_and_continent_means() {
        let c = ctx();
        let t = layer_table(&c, Layer::Hosting);
        let se_asia = t.subregion_mean("South-eastern Asia").unwrap();
        let europe = t.continent_mean("EU").unwrap();
        assert!(
            se_asia > europe,
            "SE Asia ({se_asia}) must exceed Europe ({europe})"
        );
        assert!(t.subregion_mean("Atlantis").is_none());
    }
}
